"""Analytic reuse-profile engine tests.

Covers the histogram math against hand-computed loop nests, the
``S == 1`` equivalence with the stack-distance evaluator, payload
serialization, and the prediction round-trips through ``Session``,
the service ``predict`` op, and the CLI — plus the fallback and
confidence-degradation paths.
"""

import json
import math

import pytest

from repro.analytic import (CONFIDENCE_THRESHOLD, HIGH, LOW,
                            AnalyticProfile, predict_profile)
from repro.analytic.engine import _miss_probability
from repro.cache.config import CacheConfig
from repro.cache.stackdist import simulate_sweep
from repro.compiler.driver import compile_source
from repro.machine.simulator import run_program

# A 64-int array is 256 bytes = 8 blocks at the 32-byte block size all
# of these tests use, so one pass is 8 compulsory misses + 56 spatial
# reuses.
SINGLE_PASS = (
    "int a[64]; int main() { int i; int s; s = 0;"
    " for (i = 0; i < 64; i = i + 1) s = s + a[i];"
    " print_int(s); return 0; }")

# Four passes over 512 ints (64 blocks): the re-pass reuse distance is
# the whole footprint, so the capacity step rule decides each geometry.
REPEAT_PASS = (
    "int a[512]; int main() { int i; int r; int s; s = 0;"
    " for (r = 0; r < 4; r = r + 1)"
    " for (i = 0; i < 512; i = i + 1) s = s + a[i];"
    " print_int(s); return 0; }")

# Walk-dominated pointer chase: the analytic layers cannot see malloc'd
# node addresses, so nearly every access is a LOW-confidence estimate.
CHASE = """
struct node { int value; struct node *next; };
struct node *head;
int main() {
    struct node *n; struct node *p; int i; int s;
    head = NULL;
    for (i = 0; i < 30; i = i + 1) {
        n = (struct node*) malloc(sizeof(struct node));
        n->value = i; n->next = head; head = n;
    }
    s = 0;
    for (i = 0; i < 20; i = i + 1) {
        p = head;
        while (p != NULL) { s = s + p->value; p = p->next; }
    }
    print_int(s);
    return 0;
}
"""


def _measured(source, configs):
    program = compile_source(source)
    trace = run_program(program, engine="closures").trace
    return program, simulate_sweep(trace, configs)


def _array_pc(profile, compulsory):
    return next(pc for pc, pred in profile.loads.items()
                if pred.hist.compulsory == compulsory)


class TestMissProbability:
    def test_s_equals_one_is_the_suffix_threshold_rule(self):
        # At one set the Poisson model must degenerate to the exact
        # stack-distance rule the measured GroupProfile applies:
        # miss iff distance >= assoc.
        for assoc in (1, 2, 4, 8):
            for d in range(0, 3 * assoc):
                want = 1.0 if d >= assoc else 0.0
                assert _miss_probability(d, 1, assoc) == want

    def test_short_distances_are_guaranteed_hits(self):
        # Fewer than A distinct blocks can never fill a set, whatever
        # the mapping — a provable LRU bound, not an approximation.
        for num_sets in (1, 4, 64):
            for assoc in (1, 2, 8):
                for d in range(assoc):
                    assert _miss_probability(d, num_sets, assoc) == 0.0

    def test_monotone_in_distance_and_bounded(self):
        last = 0.0
        for d in range(0, 400, 7):
            p = _miss_probability(d, 16, 4)
            assert 0.0 <= p <= 1.0
            assert p >= last
            last = p

    def test_long_distance_normal_tail_approaches_one(self):
        assert _miss_probability(100_000, 16, 4) > 0.999


class TestHandComputedNests:
    def test_single_pass_histogram(self):
        profile = predict_profile(compile_source(SINGLE_PASS),
                                  block_size=32)
        pc = _array_pc(profile, 8.0)
        pred = profile.loads[pc]
        assert pred.accesses == 64.0
        assert pred.confidence == HIGH
        # 8 block-leading accesses are compulsory; the other 56 reuse
        # the block just touched (distance 1 in sliding blocks).
        assert pred.hist.bins == {1: 56.0}
        assert pred.hist.dense == {}
        total = (pred.hist.compulsory + sum(pred.hist.bins.values())
                 + sum(pred.hist.dense.values()))
        assert total == pred.accesses

    def test_single_pass_matches_measured_exactly(self):
        configs = [CacheConfig(1024, 2, 32), CacheConfig(4096, 8, 32)]
        program, stats = _measured(SINGLE_PASS, configs)
        profile = predict_profile(program, block_size=32)
        for config, measured in zip(configs, stats):
            predicted = profile.evaluate(config)
            assert dict(predicted.load_accesses) == \
                dict(measured.load_accesses)
            assert dict(predicted.load_misses) == \
                dict(measured.load_misses)

    def test_repeat_pass_histogram(self):
        profile = predict_profile(compile_source(REPEAT_PASS),
                                  block_size=32)
        pred = profile.loads[_array_pc(profile, 64.0)]
        assert pred.accesses == 2048.0
        # 64 compulsory + 3 re-passes x 64 blocks at the footprint
        # distance (64 array blocks + 1 stack block), dense because
        # the intervening footprint is a fixed contiguous region.
        assert pred.hist.dense == {65: 192.0}
        assert pred.hist.bins == {1: 1792.0}

    def test_capacity_step_decides_each_geometry(self):
        configs = [CacheConfig(4096, 8, 32),   # 128 blocks >= 65: hits
                   CacheConfig(1024, 4, 32),   # 32 blocks < 65: misses
                   CacheConfig(8192, 2, 32)]
        program, stats = _measured(REPEAT_PASS, configs)
        profile = predict_profile(program, block_size=32)
        pc = _array_pc(profile, 64.0)
        for config, measured in zip(configs, stats):
            predicted = profile.evaluate(config)
            assert predicted.load_misses.get(pc) == \
                measured.load_misses.get(pc)
        assert stats[0].load_misses[pc] == 64      # compulsory only
        assert stats[1].load_misses[pc] == 256     # every pass misses

    def test_fully_associative_matches_stackdist_evaluator(self):
        # num_sets == 1 is where the Poisson bridge is *exact*: the
        # predicted stats must equal the measured stack-distance sweep
        # bin for bin.
        config = CacheConfig(size=512, assoc=16, block_size=32)
        assert config.num_sets == 1
        program, stats = _measured(SINGLE_PASS, [config])
        predicted = predict_profile(program, block_size=32) \
            .evaluate(config)
        assert dict(predicted.load_misses) == \
            dict(stats[0].load_misses)
        assert dict(predicted.store_misses) == \
            dict(stats[0].store_misses)


class TestConfidence:
    def test_affine_program_is_confident(self):
        profile = predict_profile(compile_source(SINGLE_PASS),
                                  block_size=32)
        assert profile.coverage == 1.0
        assert profile.confident
        assert profile.low_confidence_pcs() == {}

    def test_pointer_chase_is_flagged(self):
        profile = predict_profile(compile_source(CHASE), block_size=32)
        assert profile.coverage < CONFIDENCE_THRESHOLD
        assert not profile.confident
        low = profile.low_confidence_pcs()
        assert low
        reasons = {r for rs in low.values() for r in rs}
        assert reasons & {"unknown-trip-count", "irregular-slot-update"}
        some_pc = next(iter(low))
        assert profile.confidence_of(some_pc) == LOW

    def test_every_prediction_conserves_accesses(self):
        profile = predict_profile(compile_source(CHASE), block_size=32)
        for group in (profile.loads, profile.stores):
            for pred in group.values():
                total = (pred.hist.compulsory
                         + sum(pred.hist.bins.values())
                         + sum(pred.hist.dense.values()))
                assert total == pytest.approx(pred.accesses)


class TestPayloadRoundTrip:
    def test_json_round_trip_preserves_evaluation(self):
        profile = predict_profile(compile_source(REPEAT_PASS),
                                  block_size=32)
        wire = json.loads(json.dumps(profile.to_payload()))
        back = AnalyticProfile.from_payload(wire)
        assert back.block_size == profile.block_size
        assert back.coverage == profile.coverage
        for config in (CacheConfig(1024, 4, 32),
                       CacheConfig(4096, 8, 32)):
            a, b = profile.evaluate(config), back.evaluate(config)
            assert dict(a.load_misses) == dict(b.load_misses)
            assert dict(a.load_accesses) == dict(b.load_accesses)

    def test_pitch_survives_the_round_trip(self):
        profile = predict_profile(compile_source(SINGLE_PASS),
                                  block_size=32)
        pc = _array_pc(profile, 8.0)
        profile.loads[pc].hist.pitch[7] = 4     # synthetic sparse orbit
        back = AnalyticProfile.from_payload(profile.to_payload())
        assert back.loads[pc].hist.pitch == {7: 4}

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError):
            AnalyticProfile.from_payload({"schema": 999})

    def test_block_size_mismatch_rejected(self):
        profile = predict_profile(compile_source(SINGLE_PASS),
                                  block_size=32)
        with pytest.raises(ValueError):
            profile.evaluate(CacheConfig(1024, 2, 64))


class TestSessionRoundTrip:
    @pytest.fixture()
    def session(self, tmp_path):
        from repro.pipeline.session import Session
        s = Session(cache_dir=tmp_path / "cache", use_disk_cache=True)
        s.add_source("affine", SINGLE_PASS)
        s.add_source("chase", CHASE)
        return s

    def test_analytic_answer_with_no_execution(self, session):
        configs = [CacheConfig(1024, 2, 32), CacheConfig(4096, 8, 32)]
        pred = session.predict_stats("affine", configs=configs)
        assert pred.analytic
        assert pred.coverage == 1.0
        assert not session._traces          # nothing ever ran
        _, measured = _measured(SINGLE_PASS, configs)
        for got, want in zip(pred.stats, measured):
            assert dict(got.load_misses) == dict(want.load_misses)

    def test_profile_cached_in_analytic_keyspace(self, session,
                                                 tmp_path):
        session.predict_stats("affine")
        disk = list((tmp_path / "cache" / "stackdist")
                    .glob("an-*.json"))
        assert disk, "analytic profile should hit the an- keyspace"
        # A fresh session over the same disk cache answers without
        # recomputing the profile (served from the an- entry).
        from repro.pipeline.session import Session
        again = Session(cache_dir=tmp_path / "cache",
                        use_disk_cache=True)
        again.add_source("affine", SINGLE_PASS)
        pred = again.predict_stats("affine")
        assert pred.analytic

    def test_low_coverage_falls_back_to_measurement(self, session):
        pred = session.predict_stats("chase")
        assert not pred.analytic            # served by the real sweep
        assert pred.coverage < CONFIDENCE_THRESHOLD
        assert pred.low_confidence_pcs

    def test_no_fallback_answers_anyway(self, session):
        pred = session.predict_stats("chase", fallback=False)
        assert pred.analytic
        assert pred.coverage < CONFIDENCE_THRESHOLD
        assert not session._traces

    def test_non_lru_policy_falls_back(self, session):
        fifo = CacheConfig(1024, 2, 32, replacement="fifo")
        pred = session.predict_stats("affine", configs=[fifo])
        assert not pred.analytic


class TestServiceRoundTrip:
    @pytest.fixture(scope="class")
    def client(self):
        from repro.service import (ServerConfig, ServiceClient,
                                   serve_in_thread)
        handle = serve_in_thread(ServerConfig(
            port=0, workers=0, use_disk_cache=False))
        with ServiceClient(handle.host, handle.port,
                           timeout=60.0) as c:
            yield c
        handle.stop()

    def test_predict_matches_in_process(self, client):
        from repro.pipeline.session import Session
        from repro.service.protocol import cache_config_to_dict
        configs = [CacheConfig(1024, 2, 32), CacheConfig(4096, 8, 32)]
        payload = client.predict(
            SINGLE_PASS, optimize=False,
            configs=[cache_config_to_dict(c) for c in configs],
            fallback=True)
        assert payload["analytic"] is True
        assert payload["steps"] == 0
        session = Session()
        session.add_source("wl", SINGLE_PASS)
        pred = session.predict_stats("wl", configs=configs)
        for row, stats in zip(payload["results"], pred.stats):
            assert row["total_load_misses"] == stats.total_load_misses
            assert row["load_misses"] == \
                {f"{pc:#x}": m for pc, m
                 in sorted(stats.load_misses.items())}

    def test_predict_fallback_reports_measured(self, client):
        from repro.service.protocol import cache_config_to_dict
        payload = client.predict(
            CHASE, optimize=False,
            configs=[cache_config_to_dict(CacheConfig(1024, 2, 32))],
            fallback=True)
        assert payload["analytic"] is False
        assert payload["coverage"] < CONFIDENCE_THRESHOLD
        assert payload["steps"] > 0         # the sweep really ran


class TestCLI:
    def _predict_json(self, tmp_path, capsys, source, *extra):
        from repro.__main__ import main
        path = tmp_path / "prog.c"
        path.write_text(source)
        code = main(["predict", str(path), "--json", *extra])
        assert code == 0
        return json.loads(capsys.readouterr().out)

    def test_predict_affine(self, tmp_path, capsys):
        payload = self._predict_json(
            tmp_path, capsys, SINGLE_PASS, "--config", "1024,2,32")
        assert payload["analytic"] is True
        assert payload["coverage"] == 1.0
        (row,) = payload["results"]
        assert row["total_load_misses"] >= 8
        assert row["total_load_accesses"] >= 64

    def test_predict_chase_no_fallback(self, tmp_path, capsys):
        payload = self._predict_json(
            tmp_path, capsys, CHASE, "--config", "1024,2,32",
            "--no-fallback")
        assert payload["analytic"] is True
        assert payload["coverage"] < CONFIDENCE_THRESHOLD
        assert payload["low_confidence_pcs"]

    def test_predict_sweep_grid(self, tmp_path, capsys):
        payload = self._predict_json(
            tmp_path, capsys, SINGLE_PASS, "--sweep")
        assert payload["analytic"] is True
        assert len(payload["results"]) > 1
