"""Tests for the confusion-matrix validation module and JSON export."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import analyze_program
from repro.export import (
    SCHEMA_VERSION, load_report_json, report_to_dict, report_to_json,
    write_report_json,
)
from repro.metrics.validation import (
    ConfusionMatrix, against_ideal, confusion, miss_weighted_recall,
)

SRC = r"""
int table[2048];
int main() {
    int i; int s;
    s = 0;
    for (i = 0; i < 2048; i = i + 1)
        table[(i * 37) & 2047] = i;
    for (i = 0; i < 4096; i = i + 1)
        s = s + table[(i * 53) & 2047];
    print_int(s);
    return 0;
}
"""


class TestConfusionMatrix:
    def test_basic_counts(self):
        cm = confusion(delta={1, 2, 3}, truth={2, 3, 4},
                       all_loads={1, 2, 3, 4, 5, 6})
        assert (cm.true_positive, cm.false_positive,
                cm.false_negative, cm.true_negative) == (2, 1, 1, 2)

    def test_scores(self):
        cm = ConfusionMatrix(true_positive=8, false_positive=2,
                             false_negative=2, true_negative=88)
        assert cm.precision == 0.8
        assert cm.recall == 0.8
        assert cm.f1 == pytest.approx(0.8)
        assert cm.accuracy == 0.96

    def test_degenerate_empty(self):
        cm = ConfusionMatrix(0, 0, 0, 0)
        assert cm.precision == cm.recall == cm.f1 == cm.accuracy == 0.0

    def test_out_of_universe_members_ignored(self):
        cm = confusion(delta={1, 99}, truth={1, 98}, all_loads={1, 2})
        assert cm.true_positive == 1
        assert cm.false_positive == 0
        assert cm.false_negative == 0

    def test_describe(self):
        cm = ConfusionMatrix(1, 2, 3, 4)
        text = cm.describe()
        assert "TP=1" in text and "f1=" in text

    def test_miss_weighted_recall_equals_rho(self):
        misses = {1: 70, 2: 20, 3: 10}
        assert miss_weighted_recall({1}, misses) == 0.7
        assert miss_weighted_recall(set(), {}) == 0.0


class TestAgainstIdeal:
    def test_perfect_predictor(self):
        misses = {1: 80, 2: 15, 3: 5}
        truth_delta = {1, 2}
        cm = against_ideal(truth_delta, misses, {1, 2, 3},
                           target_rho=0.95)
        assert cm.false_positive == 0
        assert cm.false_negative == 0
        assert cm.f1 == 1.0

    def test_on_real_analysis(self):
        report = analyze_program(SRC)
        cm = against_ideal(report.delinquent_loads,
                           report.cache_stats.load_misses,
                           set(report.program.load_addresses()))
        # the heavy table loads must be caught
        assert cm.recall > 0.8
        assert cm.total == report.program.num_loads()


# hypothesis: confusion matrix identities
_sets = st.sets(st.integers(min_value=0, max_value=30))


@given(_sets, _sets, _sets)
@settings(max_examples=80)
def test_confusion_partition(delta, truth, extra):
    universe = delta | truth | extra
    cm = confusion(delta, truth, universe)
    assert cm.total == len(universe)
    assert cm.true_positive + cm.false_negative == len(truth & universe)
    assert cm.true_positive + cm.false_positive == len(delta & universe)


class TestExport:
    @pytest.fixture(scope="class")
    def report(self):
        return analyze_program(SRC)

    def test_dict_structure(self, report):
        payload = report_to_dict(report)
        assert payload["schema_version"] == SCHEMA_VERSION
        summary = payload["summary"]
        assert summary["num_loads"] == report.program.num_loads()
        assert summary["num_delinquent"] == len(report.delinquent_loads)
        assert 0 <= summary["pi"] <= 1
        assert "rho" in summary
        assert len(payload["loads"]) == report.program.num_loads()

    def test_load_entries(self, report):
        payload = report_to_dict(report)
        entry = payload["loads"][0]
        for key in ("address", "function", "instruction", "phi",
                    "delinquent", "classes", "patterns", "misses",
                    "exec_count"):
            assert key in entry
        assert entry["address"].startswith("0x")

    def test_json_round_trip(self, report, tmp_path):
        path = tmp_path / "analysis.json"
        write_report_json(report, str(path))
        payload = load_report_json(str(path))
        assert payload["summary"]["num_loads"] \
            == report.program.num_loads()

    def test_json_is_valid(self, report):
        parsed = json.loads(report_to_json(report))
        assert parsed["schema_version"] == SCHEMA_VERSION

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema_version": 99}))
        with pytest.raises(ValueError):
            load_report_json(str(path))

    def test_malformed_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema_version": SCHEMA_VERSION}))
        with pytest.raises(ValueError):
            load_report_json(str(path))

    def test_static_only_export(self):
        report = analyze_program(SRC, execute=False)
        payload = report_to_dict(report)
        assert "rho" not in payload["summary"]
        assert "misses" not in payload["loads"][0]
