"""Statement-level differential fuzzing of the compiler.

Hypothesis generates small programs — assignments, nested ifs, bounded
for loops, prints — rendered twice: as MiniC for the real pipeline, and
as Python against a 32-bit-wrapping arithmetic model.  Both are executed
and their outputs compared, fuzzing the compiler's control-flow
lowering, not just expressions.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.driver import compile_source
from repro.machine.simulator import run_program

MASK = 0xFFFF_FFFF
VARS = ("v0", "v1", "v2", "v3")


def _signed(x):
    x &= MASK
    return x - ((x & 0x8000_0000) << 1)


# -- the Python-side 32-bit model ------------------------------------------

def _add(a, b):
    return _signed(a + b)


def _sub(a, b):
    return _signed(a - b)


def _mul(a, b):
    return _signed(a * b)


def _shl(a, b):
    return _signed(a << (b & 31))


def _shr(a, b):
    return _signed(_signed(a) >> (b & 31))


def _band(a, b):
    return _signed(a & b)


def _bxor(a, b):
    return _signed(a ^ b)


_MODEL_GLOBALS = {
    "add": _add, "sub": _sub, "mul": _mul, "shl": _shl, "shr": _shr,
    "band": _band, "bxor": _bxor,
}

_BINOPS = (
    ("+", "add"), ("-", "sub"), ("*", "mul"), ("<<", "shl"),
    (">>", "shr"), ("&", "band"), ("^", "bxor"),
)

_COMPARES = ("<", ">", "<=", ">=", "==", "!=")


# -- generators: each node renders (minic, python) --------------------------

@st.composite
def expr(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        if draw(st.booleans()):
            value = draw(st.integers(min_value=-200, max_value=200))
            return str(value), str(value)
        name = draw(st.sampled_from(VARS))
        return name, name
    c_op, py_fn = draw(st.sampled_from(_BINOPS))
    left_c, left_p = draw(expr(depth=depth + 1))
    right_c, right_p = draw(expr(depth=depth + 1))
    if c_op in ("<<", ">>"):
        amount = draw(st.integers(min_value=0, max_value=8))
        return (f"(({left_c}) {c_op} {amount})",
                f"{py_fn}({left_p}, {amount})")
    return (f"(({left_c}) {c_op} ({right_c}))",
            f"{py_fn}({left_p}, {right_p})")


@st.composite
def condition(draw):
    op = draw(st.sampled_from(_COMPARES))
    left_c, left_p = draw(expr(depth=2))
    right_c, right_p = draw(expr(depth=2))
    return (f"({left_c}) {op} ({right_c})",
            f"({left_p}) {op} ({right_p})")


@st.composite
def statement(draw, depth=0, indent=1):
    pad_c = "    " * indent
    pad_p = "    " * indent
    kind = draw(st.sampled_from(
        ("assign", "assign", "print", "if", "loop")
        if depth < 2 else ("assign", "print")))
    if kind == "assign":
        target = draw(st.sampled_from(VARS))
        value_c, value_p = draw(expr())
        return (f"{pad_c}{target} = {value_c};",
                f"{pad_p}{target} = {value_p}")
    if kind == "print":
        value_c, value_p = draw(expr(depth=2))
        return (f"{pad_c}print_int({value_c});",
                f"{pad_p}out.append({value_p})")
    if kind == "if":
        cond_c, cond_p = draw(condition())
        then_c, then_p = draw(statement(depth=depth + 1,
                                        indent=indent + 1))
        else_c, else_p = draw(statement(depth=depth + 1,
                                        indent=indent + 1))
        return (f"{pad_c}if ({cond_c}) {{\n{then_c}\n{pad_c}}} else "
                f"{{\n{else_c}\n{pad_c}}}",
                f"{pad_p}if {cond_p}:\n{then_p}\n{pad_p}else:"
                f"\n{else_p}")
    # bounded loop over a dedicated counter
    trips = draw(st.integers(min_value=0, max_value=6))
    body_c, body_p = draw(statement(depth=depth + 1, indent=indent + 1))
    counter = f"k{depth}"
    return (f"{pad_c}for ({counter} = 0; {counter} < {trips}; "
            f"{counter} = {counter} + 1) {{\n{body_c}\n{pad_c}}}",
            f"{pad_p}for {counter} in range({trips}):\n{body_p}")


@st.composite
def program_pair(draw):
    n_stmts = draw(st.integers(min_value=1, max_value=6))
    statements = [draw(statement()) for _ in range(n_stmts)]
    inits = {name: draw(st.integers(min_value=-50, max_value=50))
             for name in VARS}

    minic = ["int main() {"]
    minic.extend(f"    int {name};" for name in VARS)
    minic.extend(f"    int k{d};" for d in range(3))
    minic.extend(f"    {name} = {value};"
                 for name, value in inits.items())
    for c_text, _ in statements:
        minic.append(c_text)
    minic.extend(f"    print_int({name});" for name in VARS)
    minic.append("    return 0;")
    minic.append("}")

    python = ["def model(out):"]
    python.extend(f"    {name} = {value}"
                  for name, value in inits.items())
    for _, p_text in statements:
        python.append(p_text)
    python.extend(f"    out.append({name})" for name in VARS)

    return "\n".join(minic), "\n".join(python)


def run_model(python_source):
    scope = dict(_MODEL_GLOBALS)
    exec(python_source, scope)
    out = []
    scope["model"](out)
    return out


@given(program_pair())
@settings(max_examples=80, deadline=None)
def test_programs_match_model_unoptimized(pair):
    minic, python_source = pair
    expected = run_model(python_source)
    result = run_program(compile_source(minic), trace_memory=False,
                         max_steps=2_000_000)
    assert result.output == expected, minic


@given(program_pair())
@settings(max_examples=80, deadline=None)
def test_programs_match_model_optimized(pair):
    minic, python_source = pair
    expected = run_model(python_source)
    result = run_program(compile_source(minic, optimize=True),
                         trace_memory=False, max_steps=2_000_000)
    assert result.output == expected, minic
