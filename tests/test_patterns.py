"""Address-pattern tests: grammar nodes, features, builder on known
codegen idioms, recurrence detection (register-level and slot-level)."""

import pytest

from repro.compiler.driver import compile_source
from repro.patterns import ap
from repro.patterns.ap import (
    APFeatures, Base, BinOp, Const, Deref, Opaque, Rec, features_of,
    pattern_size,
)
from repro.patterns.builder import build_load_infos
from repro.patterns.recurrence import slot_of_pattern, slots_dereferenced


def sp():
    return Base(ap.BR_SP)


def gp():
    return Base(ap.BR_GP)


class TestAPNodes:
    def test_add_folds_constants(self):
        assert ap.add(Const(3), Const(4)) == Const(7)

    def test_add_drops_zero(self):
        assert ap.add(sp(), Const(0)) == sp()
        assert ap.add(Const(0), sp()) == sp()

    def test_add_keeps_constant_right(self):
        node = ap.add(Const(5), sp())
        assert isinstance(node, BinOp)
        assert node.right == Const(5)

    def test_deref_prints_mips_style(self):
        node = Deref(ap.add(sp(), Const(45)))
        assert str(node) == "45(sp)"

    def test_paper_example_rendering(self):
        # "45(sp)+30": deref of sp+45, plus 30
        node = ap.add(Deref(ap.add(sp(), Const(45))), Const(30))
        assert str(node) == "45(sp)+30"

    def test_nested_deref_printing(self):
        node = Deref(ap.add(Deref(ap.add(sp(), Const(8))), Const(4)))
        assert str(node) == "4(8(sp))"

    def test_pattern_size(self):
        node = ap.add(Deref(sp()), Const(4))
        assert pattern_size(node) == 4

    def test_nodes_hashable(self):
        a = ap.add(sp(), Const(4))
        b = ap.add(sp(), Const(4))
        assert a == b and hash(a) == hash(b)
        assert len({a, b}) == 1


class TestFeatures:
    def test_counts(self):
        node = ap.add(ap.add(sp(), Deref(ap.add(sp(), Const(8)))),
                      gp())
        feats = features_of(node)
        assert feats.sp_count == 2
        assert feats.gp_count == 1
        assert feats.deref_depth == 1
        assert feats.deref_count == 1

    def test_deref_depth_nested(self):
        node = Deref(ap.add(Deref(Deref(sp())), Const(4)))
        feats = features_of(node)
        assert feats.deref_depth == 3
        assert feats.deref_count == 3

    def test_mul_and_shift_flags(self):
        mul = BinOp("*", sp(), Const(12))
        shift = BinOp("<<", sp(), Const(2))
        assert features_of(mul).has_mul
        assert not features_of(mul).has_shift
        assert features_of(shift).has_shift

    def test_recurrence_flag(self):
        node = ap.add(Rec(), Const(4))
        assert features_of(node).has_recurrence

    def test_base_kinds(self):
        node = ap.add(Base(ap.BR_PARAM), Base(ap.BR_RET))
        feats = features_of(node)
        assert feats.param_count == 1
        assert feats.ret_count == 1
        assert feats.base_count == 2

    def test_opaque_counts_nothing(self):
        feats = features_of(Opaque())
        assert feats.base_count == 0


class TestSlotExtraction:
    def test_slot_of_pattern(self):
        assert slot_of_pattern(ap.add(sp(), Const(16))) == ("sp", 16)
        assert slot_of_pattern(ap.add(gp(), Const(-4))) == ("gp", -4)
        assert slot_of_pattern(sp()) == ("sp", 0)
        assert slot_of_pattern(Const(5)) is None

    def test_slots_dereferenced(self):
        node = ap.add(Deref(ap.add(sp(), Const(16))),
                      Deref(ap.add(gp(), Const(8))))
        assert slots_dereferenced(node) == {("sp", 16), ("gp", 8)}

    def test_nested_slots_found(self):
        node = Deref(ap.add(Deref(ap.add(sp(), Const(8))), Const(4)))
        assert ("sp", 8) in slots_dereferenced(node)


def infos_for(source, optimize=False):
    program = compile_source(source, optimize=optimize)
    infos = build_load_infos(program)
    by_function = {}
    for info in infos.values():
        by_function.setdefault(info.function, []).append(info)
    return program, infos, by_function


class TestBuilderIdioms:
    """Patterns produced for the canonical source constructs."""

    def test_scalar_local_has_plain_pattern(self):
        src = "int main() { int x; x = 1; return x + x; }"
        _, infos, by_fn = infos_for(src)
        mains = by_fn["main"]
        # every load of x: pattern "off+sp", no deref
        for info in mains:
            for feats in info.features:
                assert feats.deref_depth == 0
                assert feats.sp_count == 1

    def test_global_array_indexing(self):
        src = ("int a[64];\n"
               "int main() { int i; int s; s = 0;\n"
               "  for (i = 0; i < 64; i = i + 1) s = s + a[i];\n"
               "  return s; }")
        _, infos, by_fn = infos_for(src)
        indexed = [i for i in by_fn["main"]
                   if any(f.gp_count and f.has_shift
                          for f in i.features)]
        assert indexed, "no gp+shift pattern found for a[i]"
        feats = [f for i in indexed for f in i.features
                 if f.gp_count and f.has_shift]
        # unoptimized: index loaded from the stack -> one deref, sp used
        assert any(f.deref_depth == 1 for f in feats)

    def test_pointer_chase_has_deref_and_recurrence(self):
        src = ("struct n { int v; struct n *next; };\n"
               "struct n *head;\n"
               "int main() { struct n *p; int s; s = 0; p = head;\n"
               "  while (p != NULL) { s = s + p->v; p = p->next; }\n"
               "  return s; }")
        _, infos, by_fn = infos_for(src)
        rec = [i for i in by_fn["main"] if i.has_recurrence]
        assert rec, "pointer chase should produce recurrent patterns"
        assert any(f.deref_depth >= 1 for i in rec for f in i.features)

    def test_register_recurrence_optimized(self):
        src = ("struct n { int v; struct n *next; };\n"
               "struct n *head;\n"
               "int main() { struct n *p; int s; s = 0; p = head;\n"
               "  while (p != NULL) { s = s + p->v; p = p->next; }\n"
               "  return s; }")
        _, infos, by_fn = infos_for(src, optimize=True)
        rec_patterns = [
            p for i in by_fn["main"]
            for p, f in zip(i.patterns, i.features) if f.has_recurrence
        ]
        assert rec_patterns
        # in optimized code the cycle shows up as an explicit Rec node
        assert any("<rec>" in str(p) for p in rec_patterns)

    def test_induction_recurrence_through_stack_slot(self):
        src = ("int a[64];\n"
               "int main() { int i; int s; s = 0;\n"
               "  for (i = 0; i < 64; i = i + 1) s = s + a[i];\n"
               "  return s; }")
        _, infos, by_fn = infos_for(src, optimize=False)
        # the a[i] load must be recurrent even though i lives in memory
        rec = [i for i in by_fn["main"]
               if any(f.has_recurrence and f.gp_count
                      for f in i.features)]
        assert rec, "slot-level recurrence not detected"

    def test_malloc_result_is_reg_ret(self):
        src = ("int main() { int *p; p = (int*) malloc(40);\n"
               "  return p[3]; }")
        _, infos, by_fn = infos_for(src, optimize=True)
        ret_based = [i for i in by_fn["main"]
                     if any(f.ret_count for f in i.features)]
        assert ret_based, "malloc-derived address should use reg_ret"

    def test_param_base_in_leaf_function(self):
        src = ("int get(int *p, int i) { return p[i]; }\n"
               "int a[8];\n"
               "int main() { return get(a, 3); }")
        _, infos, by_fn = infos_for(src, optimize=True)
        param_based = [i for i in by_fn["get"]
                       if any(f.param_count for f in i.features)]
        assert param_based, "leaf param should stay a reg_param base"

    def test_two_level_deref(self):
        src = ("struct in_ { int v; };\n"
               "struct out_ { struct in_ *inner; };\n"
               "struct out_ *o;\n"
               "int main() { return o->inner->v; }")
        _, infos, by_fn = infos_for(src)
        depths = [f.deref_depth for i in by_fn["main"]
                  for f in i.features]
        assert max(depths) >= 2

    def test_multiple_patterns_on_merge(self):
        src = ("int a[8]; int b[8];\n"
               "int main(int c) { int *p;\n"
               "  if (c) p = a; else p = b;\n"
               "  return p[2]; }")
        _, infos, by_fn = infos_for(src, optimize=True)
        # p has two reaching definitions -> the load gets >= 2 patterns
        multi = [i for i in by_fn["main"] if len(i.patterns) >= 2]
        assert multi

    def test_every_load_has_a_pattern(self, sample_program):
        infos = build_load_infos(sample_program)
        assert set(infos) == set(sample_program.load_addresses())
        for info in infos.values():
            assert info.patterns
            assert len(info.patterns) == len(info.features)

    def test_pattern_cap_respected(self, sample_program):
        infos = build_load_infos(sample_program, max_patterns=4)
        for info in infos.values():
            assert len(info.patterns) <= 4
