"""Sharded-cluster tests: hash ring, router, lifecycle, failover.

The ring tests are pure (placement determinism across processes,
bounded K/N remapping on membership change).  The router tests run a
real cluster — one in-thread router fronting in-thread workers — and
check byte-equality with the in-process pipeline, warm-cache affinity,
drain/undrain, ejection + re-admission, failover with zero
client-visible errors, cluster-wide metrics aggregation, and the
client's opt-in retry/backoff.
"""

import json
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.api import analyze_program
from repro.cluster import (ClusterClient, HashRing, RouterConfig,
                           cluster_in_thread)
from repro.export import report_to_dict
from repro.service.client import ServiceClient, ServiceError
from repro.service.protocol import parse_request
from repro.service.server import ServerConfig, serve_in_thread
from tests.conftest import time_scaled

SMALL = ("int a[64]; int main() { int i; "
         "for (i = 0; i < 64; i = i + 1) a[i] = i; "
         "print_int(a[9]); return 0; }")


def _variant(tag: int) -> str:
    """A distinct-but-cheap source per test, for fresh cache keys."""
    return SMALL.replace("a[9]", f"a[{tag}]")


def _source_key(source: str) -> str:
    """The request key an analyze of ``source`` routes by."""
    line = json.dumps({"op": "analyze",
                       "params": {"source": source}}).encode() + b"\n"
    return parse_request(line).key


# -- hash ring ----------------------------------------------------------

class TestHashRing:
    NODES = [f"10.0.0.{i}:8642" for i in range(1, 5)]

    def test_placement_is_deterministic_across_processes(self):
        ring = HashRing(self.NODES)
        keys = [f"key-{i}" for i in range(8)]
        local = [ring.node_for(key) for key in keys]
        script = (
            "from repro.cluster import HashRing\n"
            f"ring = HashRing({self.NODES!r})\n"
            f"print('\\n'.join(ring.node_for(k) for k in {keys!r}))\n")
        src = Path(__file__).resolve().parents[1] / "src"
        out = subprocess.run(
            [sys.executable, "-c", script], capture_output=True,
            text=True, check=True,
            env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"})
        assert out.stdout.split("\n")[:len(keys)] == local

    def test_join_moves_only_bounded_fraction(self):
        before = HashRing(self.NODES)
        after = HashRing(self.NODES + ["10.0.0.5:8642"])
        keys = [f"key-{i}" for i in range(2000)]
        moved = [key for key in keys
                 if before.node_for(key) != after.node_for(key)]
        # every moved key must land on the new node, and roughly
        # K/N = 1/5 of keys move (virtual nodes keep the variance low)
        assert all(after.node_for(key) == "10.0.0.5:8642"
                   for key in moved)
        assert 0.05 <= len(moved) / len(keys) <= 0.40

    def test_leave_moves_only_owned_keys(self):
        before = HashRing(self.NODES)
        victim = self.NODES[2]
        after = HashRing([n for n in self.NODES if n != victim])
        for key in (f"key-{i}" for i in range(500)):
            owner = before.node_for(key)
            if owner != victim:
                assert after.node_for(key) == owner

    def test_successors_are_distinct_and_start_at_owner(self):
        ring = HashRing(self.NODES)
        for key in ("alpha", "beta", "gamma"):
            nodes = ring.nodes_for(key)
            assert nodes[0] == ring.node_for(key)
            assert sorted(nodes) == sorted(set(nodes))
            assert set(nodes) == set(self.NODES)

    def test_empty_ring(self):
        ring = HashRing()
        assert ring.node_for("anything") is None
        assert ring.nodes_for("anything") == []


class TestHashRingProperties:
    """Randomized join/leave sequences against the ring's contracts.

    Three properties hold for any membership history: placement
    depends only on the final node set (never on arrival order or
    intermediate churn), a join steals keys only for the new node,
    and a leave moves only the departed node's keys.  The seeded
    random walks below exercise them across many ring sizes.
    """

    KEYS = [f"key-{i}" for i in range(1500)]

    @staticmethod
    def _churn(rng, ring, pool, live):
        """One random membership step; returns the op performed."""
        if live and (len(live) >= len(pool) or rng.random() < 0.4):
            node = rng.choice(sorted(live))
            ring.remove(node)
            live.discard(node)
            return ("remove", node)
        node = rng.choice([n for n in pool if n not in live])
        ring.add(node)
        live.add(node)
        return ("add", node)

    def test_placement_depends_only_on_final_membership(self):
        import random
        rng = random.Random(0xC1C0)
        pool = [f"10.1.0.{i}:8642" for i in range(1, 13)]
        for _ in range(10):
            ring = HashRing()
            live: set = set()
            for _ in range(rng.randint(3, 25)):
                self._churn(rng, ring, pool, live)
            if not live:
                ring.add(pool[0])
                live.add(pool[0])
            fresh = HashRing(sorted(live))
            shuffled = sorted(live)
            rng.shuffle(shuffled)
            reordered = HashRing(shuffled)
            assert ring.nodes == fresh.nodes
            assert ring.vnodes == fresh.vnodes
            for key in self.KEYS[:300]:
                owner = ring.node_for(key)
                assert fresh.node_for(key) == owner
                assert reordered.node_for(key) == owner

    def test_join_remaps_exactly_the_stolen_keys(self):
        import random
        rng = random.Random(0xADD)
        pool = [f"10.2.0.{i}:8642" for i in range(1, 11)]
        for _ in range(8):
            size = rng.randint(2, 8)
            members = rng.sample(pool, size)
            ring = HashRing(members)
            before = {key: ring.node_for(key) for key in self.KEYS}
            joiner = rng.choice([n for n in pool if n not in members])
            ring.add(joiner)
            moved = 0
            for key in self.KEYS:
                owner = ring.node_for(key)
                if owner != before[key]:
                    # every remapped key belongs to the joiner now
                    assert owner == joiner
                    moved += 1
            # expect ~K/N = 1/(size+1); generous slack for variance
            expected = 1.0 / (size + 1)
            assert 0.2 * expected <= moved / len(self.KEYS) \
                <= 3.0 * expected

    def test_leave_remaps_only_the_departed_nodes_keys(self):
        import random
        rng = random.Random(0xDEAD)
        pool = [f"10.3.0.{i}:8642" for i in range(1, 11)]
        for _ in range(8):
            members = rng.sample(pool, rng.randint(3, 9))
            ring = HashRing(members)
            before = {key: ring.node_for(key) for key in self.KEYS}
            victim = rng.choice(members)
            ring.remove(victim)
            for key in self.KEYS:
                if before[key] != victim:
                    assert ring.node_for(key) == before[key]
                else:
                    assert ring.node_for(key) != victim

    def test_successor_lists_stay_consistent_under_churn(self):
        import random
        rng = random.Random(0x5EED)
        pool = [f"10.4.0.{i}:8642" for i in range(1, 9)]
        ring = HashRing()
        live: set = set()
        for _ in range(30):
            self._churn(rng, ring, pool, live)
            assert ring.nodes == sorted(live)
            assert ring.vnodes == len(live) * ring.replicas
            for key in ("alpha", "beta", "gamma"):
                owners = ring.nodes_for(key)
                if not live:
                    assert owners == []
                    continue
                assert owners[0] == ring.node_for(key)
                assert sorted(owners) == sorted(set(owners))
                assert set(owners) == live


# -- a live 3-worker cluster ---------------------------------------------

@pytest.fixture(scope="module")
def cluster():
    handle = cluster_in_thread(
        3, router_config=RouterConfig(port=0,
                                      probe_interval=time_scaled(0.3),
                                      fail_after=1))
    yield handle
    handle.stop()


@pytest.fixture()
def client(cluster):
    with ClusterClient(cluster.host, cluster.port, timeout=60.0) as c:
        yield c


class TestRouting:
    def test_analyze_byte_identical_to_in_process(self, client):
        source = _variant(11)
        served = client.analyze(source)
        local = report_to_dict(analyze_program(source))
        assert json.dumps(served) == json.dumps(local)

    def test_classify_byte_identical_to_in_process(self, client):
        source = _variant(12)
        served = client.classify(source)
        local = report_to_dict(analyze_program(source, execute=False))
        assert json.dumps(served) == json.dumps(local)

    def test_repeat_hits_the_warm_workers_memory_cache(self, client):
        source = _variant(13)
        first = client.request("analyze", {"source": source})
        assert first["cached"] is False
        second = client.request("analyze", {"source": source})
        assert second["cached"] == "memory"

    def test_sleep_routes_without_a_key(self, client):
        assert client.call("sleep", {"seconds": 0.01})["slept"] == 0.01

    def test_parse_errors_match_single_server_shape(self, client):
        raw = client.transact(b"this is not json\n")
        obj = json.loads(raw)
        assert obj["id"] is None and not obj["ok"]
        assert obj["error"]["code"] == "bad_request"

    def test_health_reports_router_role_and_ring(self, client):
        health = client.health()
        assert health["role"] == "router"
        assert health["workers"]["total"] == 3
        assert health["ring"]["vnodes"] == 3 * 64

    def test_metrics_aggregates_across_workers(self, cluster, client):
        client.analyze(_variant(14))
        metrics = client.metrics()
        assert metrics["cluster"]["workers"]["reporting"] == 3
        assert metrics["cluster"]["requests"]["total"] > 0
        assert len(metrics["workers"]) == 3
        addresses = {row["address"] for row in metrics["workers"]}
        assert addresses == {w.address for w in cluster.workers}
        assert "analyze" in metrics["cluster"]["latency"]

    def test_routed_latency_recorded(self, client):
        client.analyze(_variant(15))
        status = client.call("cluster", {"action": "status"})
        assert status["router"]["routed"]["by_op"]["analyze"] >= 1
        assert "analyze" in status["router"]["latency"]


class TestDraining:
    def test_drain_redirects_new_keys_and_undrain_restores(
            self, cluster, client):
        source = _variant(21)
        ring = HashRing([w.address for w in cluster.workers])
        owner = ring.node_for(_source_key(source))
        drained = client.call("cluster",
                              {"action": "drain", "worker": owner})
        assert drained["draining"] is True
        try:
            health = client.health()
            assert health["workers"]["draining"] == 1
            assert health["ring"]["nodes"] == sorted(
                w.address for w in cluster.workers if w.address != owner)
            # the key's owner is out of the ring: the request must
            # succeed on another worker
            assert client.analyze(source)["summary"]["num_loads"] >= 0
        finally:
            restored = client.call("cluster", {"action": "undrain",
                                               "worker": owner})
        assert restored["draining"] is False
        assert client.health()["workers"]["draining"] == 0

    def test_unknown_worker_is_a_bad_request(self, client):
        raw = client.transact(json.dumps(
            {"id": 5, "op": "cluster",
             "params": {"action": "drain",
                        "worker": "nowhere:1"}}).encode() + b"\n")
        obj = json.loads(raw)
        assert obj["id"] == 5 and not obj["ok"]
        assert obj["error"]["code"] == "bad_request"

    def test_unknown_action_is_a_bad_request(self, client):
        with pytest.raises(ServiceError) as info:
            client.call("cluster", {"action": "explode"})
        assert info.value.code == "bad_request"


class TestFailover:
    def test_killed_worker_is_invisible_to_clients(self):
        with cluster_in_thread(
                3, router_config=RouterConfig(
                    port=0, probe_interval=time_scaled(0.2),
                    fail_after=1)) as handle:
            with ClusterClient(handle.host, handle.port,
                               timeout=60.0) as client:
                client.analyze(_variant(31))
                handle.workers[0].stop()      # abrupt, mid-run
                for tag in range(32, 44):
                    client.analyze(_variant(tag))
                status = client.call("cluster", {"action": "status"})
                healthy = [w for w in status["workers"] if w["healthy"]]
                assert len(healthy) == 2
                assert status["router"]["ejections"] >= 1

    def test_no_workers_means_unavailable_not_hang(self):
        with cluster_in_thread(
                1, router_config=RouterConfig(
                    port=0, probe_interval=time_scaled(0.2),
                    fail_after=1)) as handle:
            with ClusterClient(handle.host, handle.port,
                               timeout=60.0) as client:
                handle.workers[0].stop()
                with pytest.raises(ServiceError) as info:
                    client.analyze(_variant(45))
                assert info.value.code == "unavailable"

    def test_ejected_worker_is_readmitted_when_it_returns(self):
        with cluster_in_thread(
                2, router_config=RouterConfig(
                    port=0, probe_interval=time_scaled(0.2),
                    fail_after=1)) as handle:
            with ClusterClient(handle.host, handle.port,
                               timeout=60.0) as client:
                victim = handle.workers[0]
                port = victim.port
                victim.stop()
                deadline = time.time() + time_scaled(20)
                while time.time() < deadline:
                    if client.health()["workers"]["healthy"] == 1:
                        break
                    time.sleep(0.05)
                assert client.health()["workers"]["healthy"] == 1

                # a replacement worker comes back on the same port
                replacement = _serve_on_port(port)
                try:
                    deadline = time.time() + time_scaled(20)
                    while time.time() < deadline:
                        if client.health()["workers"]["healthy"] == 2:
                            break
                        time.sleep(0.05)
                    health = client.health()
                    assert health["workers"]["healthy"] == 2
                    assert len(health["ring"]["nodes"]) == 2
                    status = client.call("cluster", {"action": "status"})
                    assert status["router"]["readmissions"] >= 1
                finally:
                    replacement.stop()


def _serve_on_port(port, attempts=40):
    """Start an in-thread worker on a specific (just-freed) port."""
    last = None
    for _ in range(attempts):
        try:
            return serve_in_thread(ServerConfig(
                port=port, workers=0, use_disk_cache=False))
        except OSError as exc:
            last = exc
            time.sleep(0.1)
    raise last


# -- client retry/backoff (satellite) ------------------------------------

class TestClientRetry:
    def test_service_error_carries_upstream_address(self):
        handle = serve_in_thread(ServerConfig(
            port=0, workers=0, use_disk_cache=False))
        address = handle.address
        with ClusterClient.connect(address, timeout=5.0) as client:
            with pytest.raises(ServiceError) as info:
                client.call("sleep", {"seconds": -1})
        handle.stop()
        assert info.value.address == address
        assert address in str(info.value)

    def test_reconnect_retry_survives_a_server_restart(self):
        handle = serve_in_thread(ServerConfig(
            port=0, workers=0, use_disk_cache=False))
        port = handle.port
        client = ServiceClient(handle.host, port, timeout=5.0,
                               retries=3, backoff=0.01)
        try:
            assert client.health()["status"] == "ok"
            handle.stop()
            replacement = _serve_on_port(port)
            try:
                # the pooled socket is dead; the retry reconnects
                assert client.health()["status"] == "ok"
            finally:
                replacement.stop()
        finally:
            client.close()

    def test_retries_off_by_default(self):
        handle = serve_in_thread(ServerConfig(
            port=0, workers=0, use_disk_cache=False))
        client = ServiceClient(handle.host, handle.port, timeout=5.0)
        assert client.health()["status"] == "ok"
        handle.stop()
        with pytest.raises((ServiceError, OSError, ValueError)):
            client.health()
        client.close()

    def test_connect_retry_exhaustion_raises(self):
        # nothing listens on this port (bind-and-close to reserve one)
        import socket
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(OSError):
            ServiceClient("127.0.0.1", port, timeout=0.2,
                          retries=1, backoff=0.01)


# -- in-flight gauge (satellite) ------------------------------------------

class TestInFlightGauge:
    def test_metrics_show_in_flight_requests(self):
        with serve_in_thread(ServerConfig(
                port=0, workers=0, use_disk_cache=False)) as handle:
            hold = time_scaled(1.5)
            done = threading.Event()

            def sleeper():
                with ClusterClient(handle.host, handle.port,
                                   timeout=60.0) as c:
                    c.call("sleep", {"seconds": hold})
                done.set()

            thread = threading.Thread(target=sleeper, daemon=True)
            thread.start()
            time.sleep(min(0.3, hold / 3))
            with ClusterClient(handle.host, handle.port,
                               timeout=60.0) as client:
                snapshot = client.metrics()
            assert snapshot["requests"]["in_flight"] >= 1
            done.wait(time_scaled(30))
            thread.join(time_scaled(30))
            with ClusterClient(handle.host, handle.port,
                               timeout=60.0) as client:
                snapshot = client.metrics()
            assert snapshot["requests"]["in_flight"] == 0


# -- CLI ------------------------------------------------------------------

class TestClusterCli:
    def test_parser_accepts_cluster_options(self):
        from repro.__main__ import build_parser
        args = build_parser().parse_args(
            ["cluster", "--workers", "4", "--spawn", "--port", "0",
             "--probe-interval", "0.5", "--no-disk-cache"])
        assert args.workers == "4" and args.spawn
        assert args.func.__name__ == "cmd_cluster"

    def test_address_list_without_colon_is_rejected(self, capsys):
        from repro.__main__ import cmd_cluster, build_parser
        args = build_parser().parse_args(
            ["cluster", "--workers", "not-an-address"])
        assert cmd_cluster(args) == 2
        assert "HOST:PORT" in capsys.readouterr().err
