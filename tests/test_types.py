"""MiniC type system tests: sizes, alignment, struct layout."""

from repro.lang.types import (
    CHAR, FLOAT, INT, ArrayType, PointerType, StructType,
    common_arithmetic, is_assignable,
)


class TestSizes:
    def test_scalar_sizes(self):
        assert INT.size == 4
        assert FLOAT.size == 4
        assert CHAR.size == 1
        assert PointerType(INT).size == 4

    def test_array_size(self):
        assert ArrayType(INT, 10).size == 40
        assert ArrayType(CHAR, 10).size == 10
        assert ArrayType(ArrayType(INT, 4), 3).size == 48

    def test_struct_layout_padding(self):
        s = StructType("s")
        s.set_fields([("c", CHAR), ("i", INT), ("c2", CHAR)])
        assert s.fields["c"].offset == 0
        assert s.fields["i"].offset == 4     # padded to word
        assert s.fields["c2"].offset == 8
        assert s.size == 12                  # rounded to word multiple

    def test_struct_char_packing(self):
        s = StructType("s")
        s.set_fields([("a", CHAR), ("b", CHAR)])
        assert s.fields["b"].offset == 1
        assert s.size == 4

    def test_nested_struct_field(self):
        inner = StructType("inner")
        inner.set_fields([("x", INT), ("y", INT)])
        outer = StructType("outer")
        outer.set_fields([("pre", CHAR), ("in_", inner)])
        assert outer.fields["in_"].offset == 4
        assert outer.size == 12


class TestPredicates:
    def test_scalar_predicate(self):
        assert INT.is_scalar and PointerType(INT).is_scalar
        assert not ArrayType(INT, 2).is_scalar

    def test_array_decay(self):
        decayed = ArrayType(FLOAT, 8).decayed()
        assert isinstance(decayed, PointerType)
        assert decayed.target == FLOAT

    def test_struct_equality_by_name(self):
        a, b = StructType("n"), StructType("n")
        a.set_fields([("x", INT)])
        b.set_fields([("x", INT), ("y", INT)])
        assert a == b
        assert hash(a) == hash(b)


class TestConversions:
    def test_assignability(self):
        assert is_assignable(INT, FLOAT)
        assert is_assignable(FLOAT, INT)
        assert is_assignable(PointerType(INT), PointerType(CHAR))
        assert is_assignable(PointerType(INT), INT)     # NULL etc.
        assert not is_assignable(INT, ArrayType(INT, 2))

    def test_common_arithmetic(self):
        assert common_arithmetic(INT, FLOAT) == FLOAT
        assert common_arithmetic(CHAR, INT) == INT
        assert common_arithmetic(CHAR, CHAR) == INT   # char promotes
