"""Replay the committed regression corpus through every oracle.

Each file under ``tests/corpus/`` is a minimized fuzz case that either
once reproduced a real divergence (kept failing forever after the fix
as a regression pin) or exercises a construct the generators rarely
combine.  Every case must pass every applicable oracle on a clean
tree; a failure here means a previously fixed (or deliberately pinned)
behaviour regressed.

To add a case: ``python -m repro fuzz --corpus-dir tests/corpus`` on a
failing build, or save a handmade spec with
:func:`repro.fuzz.corpus.save_case` — see docs/testing.md.
"""

from pathlib import Path

import pytest

from repro.fuzz import OracleContext, oracles_for
from repro.fuzz.corpus import load_corpus, spec_digest

CORPUS_DIR = Path(__file__).parent / "corpus"
CORPUS = load_corpus(CORPUS_DIR)


def test_corpus_is_seeded():
    """The committed corpus never shrinks below its seed population."""
    assert len(CORPUS) >= 5


def test_filenames_are_content_addressed():
    for path, case in CORPUS:
        assert path.name == f"{case.kind}-{spec_digest(case.spec)}.json"


@pytest.fixture(scope="module")
def ctx():
    with OracleContext() as context:
        yield context


@pytest.mark.parametrize(
    "path,case", CORPUS,
    ids=[path.stem for path, _ in CORPUS])
def test_corpus_case_passes_all_oracles(path, case, ctx):
    oracles = oracles_for(case.kind)
    assert oracles, f"{path.name}: no applicable oracle"
    for oracle in oracles:
        oracle.check(case, ctx)
