"""Differential fuzzing of the compiler.

Hypothesis generates random integer expressions over a fixed set of
variables; each expression is compiled (both modes) and executed on the
simulator, and the result is compared against a Python model of C's
32-bit wrapping semantics.  Any divergence is a code-generation or
simulator bug by construction.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.driver import compile_source
from repro.machine.simulator import run_program

MASK = 0xFFFF_FFFF
VAR_VALUES = {"va": 7, "vb": -13, "vc": 100003, "vd": -2, "ve": 0}


def _signed(x: int) -> int:
    x &= MASK
    return x - ((x & 0x8000_0000) << 1)


class Expr:
    """A generated expression: MiniC text plus a Python evaluator."""

    def __init__(self, text, value):
        self.text = text
        self.value = _signed(value)

    def __repr__(self):
        return f"Expr({self.text} == {self.value})"


def _leaf_int(value: int) -> Expr:
    return Expr(str(value), value)


def _leaf_var(name: str) -> Expr:
    return Expr(name, VAR_VALUES[name])


def _binary(op, a: Expr, b: Expr) -> Expr:
    va, vb = a.value, b.value
    if op == "+":
        value = va + vb
    elif op == "-":
        value = va - vb
    elif op == "*":
        value = va * vb
    elif op == "/":
        # guarded: denominator forced non-zero by construction
        value = int(va / vb) if vb else 0
    elif op == "%":
        value = va - int(va / vb) * vb if vb else 0
    elif op == "&":
        value = va & vb
    elif op == "|":
        value = va | vb
    elif op == "^":
        value = va ^ vb
    elif op == "<<":
        value = va << (vb & 31)
    elif op == ">>":
        value = _signed(va) >> (vb & 31)
    elif op == "<":
        value = int(va < vb)
    elif op == ">":
        value = int(va > vb)
    elif op == "==":
        value = int(va == vb)
    elif op == "!=":
        value = int(va != vb)
    else:
        raise AssertionError(op)
    return Expr(f"({a.text} {op} {b.text})", value)


def _unary(op, a: Expr) -> Expr:
    if op == "-":
        return Expr(f"(-{a.text})", -a.value)
    if op == "~":
        return Expr(f"(~{a.text})", ~a.value)
    return Expr(f"(!{a.text})", int(not a.value))


_SAFE_OPS = ("+", "-", "*", "&", "|", "^", "<", ">", "==", "!=")


@st.composite
def expressions(draw, depth=0):
    if depth >= 4 or draw(st.booleans()):
        if draw(st.booleans()):
            return _leaf_int(draw(st.integers(min_value=-1000,
                                              max_value=1000)))
        return _leaf_var(draw(st.sampled_from(sorted(VAR_VALUES))))
    kind = draw(st.sampled_from(("bin", "un", "div", "shift")))
    if kind == "un":
        return _unary(draw(st.sampled_from(("-", "~", "!"))),
                      draw(expressions(depth=depth + 1)))
    left = draw(expressions(depth=depth + 1))
    if kind == "div":
        # force a non-zero, positive-ish denominator
        d = draw(st.integers(min_value=1, max_value=97))
        denominator = Expr(f"(({left.text} & 15) + {d})",
                           (left.value & 15) + d)
        numerator = draw(expressions(depth=depth + 1))
        op = draw(st.sampled_from(("/", "%")))
        return _binary(op, numerator, denominator)
    if kind == "shift":
        amount = draw(st.integers(min_value=0, max_value=12))
        op = draw(st.sampled_from(("<<", ">>")))
        # keep << small to avoid Python-vs-C overflow ambiguity in
        # nested contexts (the model wraps, so any amount is fine)
        return _binary(op, left, _leaf_int(amount))
    op = draw(st.sampled_from(_SAFE_OPS))
    right = draw(expressions(depth=depth + 1))
    return _binary(op, left, right)


def _program_for(expr: Expr) -> str:
    decls = "\n    ".join(f"int {name};" for name in VAR_VALUES)
    inits = "\n    ".join(f"{name} = {value};"
                          for name, value in VAR_VALUES.items())
    return f"""
int main() {{
    {decls}
    {inits}
    print_int({expr.text});
    return 0;
}}
"""


@given(expressions())
@settings(max_examples=120, deadline=None)
def test_expression_semantics_unoptimized(expr):
    program = compile_source(_program_for(expr))
    result = run_program(program, trace_memory=False)
    assert result.output == [expr.value], expr.text


@given(expressions())
@settings(max_examples=120, deadline=None)
def test_expression_semantics_optimized(expr):
    program = compile_source(_program_for(expr), optimize=True)
    result = run_program(program, trace_memory=False)
    assert result.output == [expr.value], expr.text


@given(st.lists(expressions(), min_size=2, max_size=5))
@settings(max_examples=40, deadline=None)
def test_expression_sequences_match_across_modes(exprs):
    body = "\n    ".join(f"print_int({e.text});" for e in exprs)
    decls = "\n    ".join(f"int {name};" for name in VAR_VALUES)
    inits = "\n    ".join(f"{name} = {value};"
                          for name, value in VAR_VALUES.items())
    source = (f"int main() {{\n    {decls}\n    {inits}\n    {body}\n"
              f"    return 0; }}")
    plain = run_program(compile_source(source), trace_memory=False)
    opt = run_program(compile_source(source, optimize=True),
                      trace_memory=False)
    expected = [e.value for e in exprs]
    assert plain.output == expected
    assert opt.output == expected
