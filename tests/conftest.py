"""Shared fixtures: small compiled programs reused across test modules."""

from __future__ import annotations

import pytest

from repro.compiler.driver import compile_source
from repro.machine.simulator import run_program

#: A program exercising arrays, structs, pointers, loops and calls —
#: the common subject for integration-level assertions.
SAMPLE_SOURCE = r"""
struct node { int value; struct node *next; };
int table[64];
struct node *head;

int push(int v) {
    struct node *n;
    n = (struct node*) malloc(sizeof(struct node));
    n->value = v;
    n->next = head;
    head = n;
    return v;
}

int walk() {
    struct node *p;
    int sum;
    sum = 0;
    p = head;
    while (p != NULL) {
        sum = sum + p->value;
        p = p->next;
    }
    return sum;
}

int main() {
    int i;
    int sum;
    for (i = 0; i < 40; i = i + 1) {
        push(i * 3);
        table[i & 63] = i * i;
    }
    sum = walk();
    for (i = 0; i < 40; i = i + 1)
        sum = sum + table[i];
    print_int(sum);
    return 0;
}
"""

SAMPLE_EXPECTED = sum(i * 3 for i in range(40)) + sum(i * i
                                                      for i in range(40))


@pytest.fixture(scope="session")
def sample_program():
    return compile_source(SAMPLE_SOURCE)


@pytest.fixture(scope="session")
def sample_program_opt():
    return compile_source(SAMPLE_SOURCE, optimize=True)


@pytest.fixture(scope="session")
def sample_result(sample_program):
    return run_program(sample_program)


@pytest.fixture(scope="session")
def sample_result_opt(sample_program_opt):
    return run_program(sample_program_opt)


def compile_and_run(source: str, optimize: bool = False,
                    max_steps: int = 50_000_000, args=()):
    """Compile, run, and return (program, result)."""
    program = compile_source(source, optimize=optimize)
    result = run_program(program, max_steps=max_steps, args=args)
    return program, result
