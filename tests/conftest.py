"""Shared fixtures: small compiled programs reused across test modules."""

from __future__ import annotations

import os

import pytest

from repro.compiler.driver import compile_source
from repro.machine.simulator import run_program

#: Timing-sensitive tests (service backpressure, batching windows,
#: request timeouts) multiply every sleep and deadline bound by
#: ``$REPRO_TEST_TIMEOUT``.  On a loaded CI runner, exporting e.g.
#: ``REPRO_TEST_TIMEOUT=3`` stretches the schedule uniformly — the
#: relative ordering the tests assert is untouched, only the margins
#: grow.  Defaults to 1.0 (historical timings).
TIME_SCALE = float(os.environ.get("REPRO_TEST_TIMEOUT", "1") or "1")


def time_scaled(seconds: float) -> float:
    """``seconds`` stretched by the ``$REPRO_TEST_TIMEOUT`` factor."""
    return seconds * TIME_SCALE

#: A program exercising arrays, structs, pointers, loops and calls —
#: the common subject for integration-level assertions.
SAMPLE_SOURCE = r"""
struct node { int value; struct node *next; };
int table[64];
struct node *head;

int push(int v) {
    struct node *n;
    n = (struct node*) malloc(sizeof(struct node));
    n->value = v;
    n->next = head;
    head = n;
    return v;
}

int walk() {
    struct node *p;
    int sum;
    sum = 0;
    p = head;
    while (p != NULL) {
        sum = sum + p->value;
        p = p->next;
    }
    return sum;
}

int main() {
    int i;
    int sum;
    for (i = 0; i < 40; i = i + 1) {
        push(i * 3);
        table[i & 63] = i * i;
    }
    sum = walk();
    for (i = 0; i < 40; i = i + 1)
        sum = sum + table[i];
    print_int(sum);
    return 0;
}
"""

SAMPLE_EXPECTED = sum(i * 3 for i in range(40)) + sum(i * i
                                                      for i in range(40))


@pytest.fixture(scope="session")
def sample_program():
    return compile_source(SAMPLE_SOURCE)


@pytest.fixture(scope="session")
def sample_program_opt():
    return compile_source(SAMPLE_SOURCE, optimize=True)


@pytest.fixture(scope="session")
def sample_result(sample_program):
    return run_program(sample_program)


@pytest.fixture(scope="session")
def sample_result_opt(sample_program_opt):
    return run_program(sample_program_opt)


def compile_and_run(source: str, optimize: bool = False,
                    max_steps: int = 50_000_000, args=()):
    """Compile, run, and return (program, result)."""
    program = compile_source(source, optimize=optimize)
    result = run_program(program, max_steps=max_steps, args=args)
    return program, result
