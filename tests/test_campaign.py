"""Campaign engine: grid specs, manifest, resume, and the tripwire.

The crash-resume test is the load-bearing one: a campaign subprocess is
SIGKILLed mid-run, then resumed with every completed cell id listed in
the ``REPRO_CAMPAIGN_FORBID`` tripwire file — if the engine ever
*decides to compute* a completed cell, the run raises instead of
silently redoing work — and the final tables must be byte-identical to
an uninterrupted campaign in a separate cache directory.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cache.config import (BASELINE_CONFIG, TRAINING_CONFIG,
                                CacheConfig, associativity_sweep,
                                size_sweep)
from repro.campaign import Campaign, Manifest, campaign_dir, code_digest
from repro.cluster.metrics import aggregate_worker_metrics
from repro.experiments.grid import (CACHE_16K, GridCell, TableSpec,
                                    campaign_cells, merge_cells,
                                    sweep_configs, table_specs,
                                    warm_plan)
from repro.experiments.runner import run_tables
from repro.pipeline.session import Session, standard_warm_plan

REPO_ROOT = Path(__file__).resolve().parents[1]

SCALE = 0.02
TABLES = (6, 10)        # static-only + one simulated table: fast


def _session(tmp_path: Path) -> Session:
    return Session(scale=SCALE, cache_dir=tmp_path / "cache")


# ---------------------------------------------------------------------
# canonical grid
# ---------------------------------------------------------------------
class TestGrid:
    def test_warm_plan_is_the_historical_forty(self):
        plan = warm_plan()
        assert len(plan) == 40
        assert plan == standard_warm_plan()

    def test_cache_16k_dedups_into_sweep_union(self):
        assert CACHE_16K == size_sweep()[1]
        union = sweep_configs()
        assert len(union) == len(set(union))
        assert len(union) == (len(associativity_sweep())
                              + len(size_sweep()) - 1)
        assert CACHE_16K in union

    def test_every_table_declares_a_spec(self):
        specs = table_specs()
        assert sorted(specs) == list(range(1, 18))
        for number, spec in specs.items():
            assert isinstance(spec, TableSpec)
            assert spec.number == number

    def test_merge_unions_configs_and_ors_analytic(self):
        base = GridCell("129.compress")
        training = GridCell("129.compress",
                            configs=(TRAINING_CONFIG,), analytic=True)
        other = GridCell("181.mcf")
        merged = merge_cells([base, training, other])
        assert [cell.workload for cell in merged] \
            == ["129.compress", "181.mcf"]
        assert merged[0].configs == (BASELINE_CONFIG, TRAINING_CONFIG)
        assert merged[0].analytic is True
        assert merged[1].configs == (BASELINE_CONFIG,)

    def test_merge_dedups_equal_configs(self):
        again = CacheConfig(size=16 * 1024, assoc=4, block_size=32)
        merged = merge_cells([GridCell("099.go", configs=(CACHE_16K,)),
                              GridCell("099.go", configs=(again,))])
        assert len(merged) == 1
        assert merged[0].configs == (CACHE_16K,)

    def test_subset_expansion(self):
        cells = campaign_cells([10])
        assert len(cells) == 7           # the test set on input1
        assert all(cell.configs == (TRAINING_CONFIG,)
                   for cell in cells)
        assert campaign_cells([6]) == []  # static metadata only


# ---------------------------------------------------------------------
# manifest
# ---------------------------------------------------------------------
class TestManifest:
    def test_record_round_trips(self, tmp_path):
        manifest = Manifest(tmp_path)
        entry = manifest.record("run:a:input1:base", "run", "d1",
                                "c1", 1.25, "computed", "camp1",
                                scale=0.02)
        (loaded,) = list(manifest.entries())
        assert loaded == entry
        assert loaded["scale"] == 0.02

    def test_latest_is_last_wins(self, tmp_path):
        manifest = Manifest(tmp_path)
        manifest.record("cell", "run", "old", "c", 1.0, "computed", "x")
        manifest.record("cell", "run", "new", "c", 2.0, "disk", "y")
        view = manifest.latest()
        assert view["cell"]["digest"] == "new"
        assert view["cell"]["tier"] == "disk"

    def test_truncated_tail_is_tolerated(self, tmp_path):
        manifest = Manifest(tmp_path)
        manifest.record("cell", "run", "d", "c", 1.0, "computed", "x")
        with open(manifest.path, "a") as handle:
            handle.write('{"cell": "half", "digest": "tru')  # killed
        assert [e["cell"] for e in manifest.entries()] == ["cell"]

    def test_status_counts_stale_cells(self, tmp_path):
        manifest = Manifest(tmp_path)
        manifest.record("a", "run", "d", "old-code", 1.0,
                        "computed", "x")
        manifest.record("b", "table", "d", "new-code", 2.0,
                        "computed", "x")
        status = manifest.status(current_code="new-code")
        assert status["cells"] == 2
        assert status["stale_cells"] == 1
        assert status["by_kind"] == {"run": 1, "table": 1}
        assert status["recorded_wall_s"] == 3.0

    def test_missing_file_is_empty(self, tmp_path):
        assert Manifest(tmp_path / "nope").latest() == {}

    def test_campaign_dir_layout(self, tmp_path):
        assert campaign_dir(tmp_path) == tmp_path / "campaign"


def test_code_digest_is_stable():
    first = code_digest()
    assert len(first) == 40
    assert first == code_digest()


# ---------------------------------------------------------------------
# end-to-end campaign (inline jobs=1; small tables, tiny scale)
# ---------------------------------------------------------------------
class TestCampaign:
    def test_matches_serial_runner_byte_for_byte(self, tmp_path):
        session = _session(tmp_path)
        result = Campaign(session, numbers=TABLES).run(jobs=1)
        serial = Session(scale=SCALE, cache_dir=tmp_path / "serial")
        expected = {n: t.render() for n, t in
                    run_tables(serial, list(TABLES),
                               echo=False).items()}
        assert result.tables == expected
        assert sorted(result.tables) == list(TABLES)
        assert result.computed > 0

    def test_resume_recomputes_nothing(self, tmp_path):
        session = _session(tmp_path)
        campaign = Campaign(session, numbers=TABLES)
        first = campaign.run(jobs=1)
        resumed = Campaign(_session(tmp_path), numbers=TABLES)
        second = resumed.run(resume=True)
        assert second.computed == 0
        assert second.cached == 0
        assert second.skipped == len(resumed.plan())
        assert second.tables == first.tables

    def test_resume_survives_tripwire_on_completed_cells(
            self, tmp_path, monkeypatch):
        session = _session(tmp_path)
        Campaign(session, numbers=TABLES).run(jobs=1)
        resumed = Campaign(_session(tmp_path), numbers=TABLES)
        forbid = tmp_path / "forbid.txt"
        forbid.write_text("\n".join(p.id for p in resumed.plan()) + "\n")
        monkeypatch.setenv("REPRO_CAMPAIGN_FORBID", str(forbid))
        result = resumed.run(resume=True)  # must not trip
        assert result.computed == 0

    def test_code_change_invalidates_the_ledger(self, tmp_path,
                                                monkeypatch):
        session = _session(tmp_path)
        Campaign(session, numbers=TABLES).run(jobs=1)
        stale = Campaign(_session(tmp_path), numbers=TABLES)
        stale.code = "0" * 40       # as if src/repro changed
        forbid = tmp_path / "forbid.txt"
        forbid.write_text("\n".join(p.id for p in stale.plan()) + "\n")
        monkeypatch.setenv("REPRO_CAMPAIGN_FORBID", str(forbid))
        with pytest.raises(RuntimeError, match="tripwire"):
            stale.run(resume=True)

    def test_without_resume_cells_recompute_from_disk_tier(
            self, tmp_path):
        session = _session(tmp_path)
        Campaign(session, numbers=TABLES).run(jobs=1)
        fresh = Campaign(_session(tmp_path), numbers=TABLES)
        result = fresh.run(jobs=1)   # no resume: replans every cell
        assert result.skipped == 0
        assert result.cached > 0     # but the disk caches are warm

    def test_unknown_table_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown"):
            Campaign(_session(tmp_path), numbers=[99])

    def test_profile_store_counters_surface(self, tmp_path):
        session = _session(tmp_path)
        result = Campaign(session, numbers=(10,)).run(jobs=1)
        store = result.profile_store
        assert store.get("sweep_misses", 0) \
            + store.get("sweep_memory_hits", 0) \
            + store.get("sweep_disk_hits", 0) > 0
        stats = session._profile_store.stats()
        assert 0.0 <= stats["hit_rate"] <= 1.0


# ---------------------------------------------------------------------
# crash-resume: SIGKILL mid-campaign, resume with the tripwire armed
# ---------------------------------------------------------------------
_CHILD = """
import sys
from pathlib import Path
from repro.campaign import Campaign
from repro.pipeline.session import Session

cache_dir = Path(sys.argv[1])
session = Session(scale={scale}, cache_dir=cache_dir)
Campaign(session, numbers=(10,)).run(jobs=1)
"""


class TestCrashResume:
    def test_sigkill_then_resume_recomputes_zero_completed_cells(
            self, tmp_path, monkeypatch):
        cache = tmp_path / "killed"
        env = dict(os.environ,
                   PYTHONPATH=str(REPO_ROOT / "src"))
        child = subprocess.Popen(
            [sys.executable, "-c", _CHILD.format(scale=SCALE),
             str(cache)],
            env=env, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL)
        manifest = Manifest(campaign_dir(cache))
        try:
            # wait until at least one cell has landed, then kill hard
            deadline = time.time() + 120
            while time.time() < deadline:
                if child.poll() is not None:
                    break               # finished before we could kill
                if len(manifest.latest()) >= 1:
                    child.send_signal(signal.SIGKILL)
                    break
                time.sleep(0.05)
            child.wait(timeout=60)
        finally:
            if child.poll() is None:
                child.kill()
                child.wait()

        completed = manifest.latest()
        assert completed, "child was killed before any cell landed"

        # arm the tripwire with every completed cell: resuming must
        # never decide to compute one of them
        forbid = tmp_path / "forbid.txt"
        forbid.write_text("\n".join(sorted(completed)) + "\n")
        monkeypatch.setenv("REPRO_CAMPAIGN_FORBID", str(forbid))
        session = Session(scale=SCALE, cache_dir=cache)
        result = Campaign(session, numbers=(10,)).run(resume=True,
                                                      jobs=1)
        assert result.skipped >= len([
            cell for cell, entry in completed.items()
            if entry.get("code") == code_digest()])
        assert sorted(result.tables) == [10]

        # byte-identical to a never-interrupted campaign
        monkeypatch.delenv("REPRO_CAMPAIGN_FORBID")
        clean = Session(scale=SCALE, cache_dir=tmp_path / "clean")
        uninterrupted = Campaign(clean, numbers=(10,)).run(jobs=1)
        assert result.tables == uninterrupted.tables


# ---------------------------------------------------------------------
# metrics plumbing: service snapshot + cluster aggregation + simulate
# ---------------------------------------------------------------------
class TestMetricsPlumbing:
    def test_cluster_aggregation_sums_profile_store(self):
        def row(sweep_hits: int, misses: int) -> dict:
            return {"address": "w", "healthy": True,
                    "draining": False, "metrics": {
                "profile_store": {
                    "sweep_memory_hits": sweep_hits,
                    "sweep_disk_hits": 0,
                    "sweep_misses": misses,
                    "sweep_puts": misses,
                    "analytic_memory_hits": 0,
                    "analytic_disk_hits": 0,
                    "analytic_misses": 0,
                    "analytic_puts": 0,
                    "hit_rate": 0.5,
                },
            }}
        totals = aggregate_worker_metrics([row(3, 1), row(1, 3)])
        store = totals["profile_store"]
        assert store["sweep_memory_hits"] == 4
        assert store["sweep_misses"] == 4
        assert store["sweep_puts"] == 4
        assert store["hit_rate"] == 0.5

    def test_simulate_response_carries_full_columns(self):
        from repro.service.ops import run_simulate

        source = ("int a[64]; int main() { int i; "
                  "for (i = 0; i < 64; i = i + 1) a[i] = a[i] + 1; "
                  "print_int(a[5]); return 0; }")
        response = run_simulate({
            "source": source, "optimize": False,
            "max_steps": 200000,
            "configs": [{"size": 1024, "assoc": 2, "block_size": 32}],
        })
        entry = response["results"][0]
        for column in ("store_misses", "store_accesses",
                       "prefetch_ops", "prefetch_fills"):
            assert column in entry
        assert sum(int(v) for v in entry["store_accesses"].values()) > 0
        assert response["block_counts"], \
            "trace-store block profile missing from response"
        assert all(int(k) >= 0 for k in response["block_counts"])
