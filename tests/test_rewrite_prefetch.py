"""Binary rewriter and prefetch-pass tests."""

import pytest

from repro.asm.assembler import assemble
from repro.compiler.driver import compile_source
from repro.heuristic.classifier import DelinquencyClassifier
from repro.isa.instructions import Instruction
from repro.machine.simulator import run_program
from repro.patterns.builder import build_load_infos
from repro.prefetch.evaluate import compare_policies, measure_policy
from repro.prefetch.pass_ import apply_prefetching, plan_prefetches
from repro.rewrite.inserter import (
    RewriteError, RewriteResult, insert_instructions,
)
from tests.conftest import SAMPLE_EXPECTED, SAMPLE_SOURCE

STRIDED_SRC = r"""
float *data;
int main() {
    int i; int it;
    float acc;
    data = (float*) malloc(65536);
    for (i = 0; i < 16384; i = i + 1)
        data[i] = (float)(i & 255);
    acc = 0.0;
    for (it = 0; it < 3; it = it + 1)
        for (i = 0; i < 16384; i = i + 1)
            acc = acc + data[i];
    print_int((int) acc);
    return 0;
}
"""


def nop():
    return Instruction("sll", rd=0, rt=0, shamt=0)


class TestRewriter:
    def test_insert_preserves_semantics(self, sample_program):
        # sprinkle nops before every 5th instruction
        insertions = {
            sample_program.address_of(i): [nop()]
            for i in range(0, len(sample_program.instructions), 5)
        }
        result = insert_instructions(sample_program, insertions)
        out = run_program(result.program)
        assert out.output == [SAMPLE_EXPECTED]

    def test_lengths_and_map(self, sample_program):
        target = sample_program.address_of(3)
        result = insert_instructions(sample_program,
                                     {target: [nop(), nop()]})
        assert len(result.program.instructions) \
            == len(sample_program.instructions) + 2
        # everything before the insertion keeps its address
        assert result.address_map[sample_program.address_of(0)] \
            == sample_program.address_of(0)
        # the target itself shifted by 8 bytes
        assert result.address_map[target] == target + 8

    def test_branch_targets_remapped(self):
        src = (".text\n.ent main\nmain:\nli $t0, 0\nli $t1, 5\n"
               "loop: addiu $t0, $t0, 1\nblt $t0, $t1, loop\n"
               "move $v0, $t0\njr $ra\n.end main\n"
               ".ent __start\n__start:\njal main\nmove $a0, $v0\n"
               "li $v0, 10\nsyscall\n.end __start\n")
        program = assemble(src)
        loop = program.symbols["loop"]
        result = insert_instructions(program, {loop: [nop(), nop()]})
        out = run_program(result.program)
        assert out.exit_code == 5

    def test_symbols_and_debug_remapped(self, sample_program):
        walk = sample_program.symbols["walk"]
        result = insert_instructions(sample_program, {walk: [nop()]})
        rewritten = result.program
        assert rewritten.symbols["walk"] == result.address_map[walk]
        info = rewritten.symtab.functions["walk"]
        assert info.start == rewritten.symbols["walk"]
        assert info.end > info.start

    def test_entry_remapped(self, sample_program):
        result = insert_instructions(
            sample_program, {sample_program.entry: [nop()]})
        assert result.program.entry == sample_program.entry + 4
        out = run_program(result.program)
        assert out.output == [SAMPLE_EXPECTED]

    def test_original_untouched(self, sample_program):
        before = len(sample_program.instructions)
        insert_instructions(sample_program,
                            {sample_program.entry: [nop()]})
        assert len(sample_program.instructions) == before

    def test_invalid_address_rejected(self, sample_program):
        with pytest.raises(ValueError):
            insert_instructions(sample_program, {0x123: [nop()]})

    def test_text_pointer_in_data_rejected(self):
        src = (".data\nfp: .word main\n.text\n.ent main\n"
               "main: jr $ra\n.end main\n")
        program = assemble(src)
        with pytest.raises(RewriteError):
            insert_instructions(program, {program.entry: [nop()]})

    def test_check_can_be_disabled(self):
        src = (".data\nfp: .word main\n.text\n.ent main\n"
               "main: jr $ra\n.end main\n")
        program = assemble(src)
        result = insert_instructions(program, {}, check=False)
        assert isinstance(result, RewriteResult)


class TestPrefetchPlan:
    @pytest.fixture(scope="class")
    def setup(self):
        program = compile_source(STRIDED_SRC)
        infos = build_load_infos(program)
        delta = DelinquencyClassifier(use_frequency=False).classify(
            infos).delinquent_set
        return program, infos, delta

    def test_plan_selects_delta_loads(self, setup):
        program, infos, delta = setup
        plan = plan_prefetches(program, delta, infos)
        assert set(plan.lookaheads) <= delta
        assert len(plan) > 0

    def test_strided_lookahead_larger_than_pointer(self, setup):
        program, infos, delta = setup
        plan = plan_prefetches(program, delta, infos, block_size=32,
                               stride_blocks=4)
        assert max(plan.lookaheads.values()) == 128

    def test_non_load_addresses_ignored(self, setup):
        program, infos, delta = setup
        plan = plan_prefetches(program, {program.entry}, infos)
        assert len(plan) == 0

    def test_offset_overflow_skipped(self):
        src = (".text\n.ent main\nmain:\n"
               "lw $t0, 32760($sp)\njr $ra\n.end main\n")
        program = assemble(src)
        load = program.entry
        plan = plan_prefetches(program, {load},
                               build_load_infos(program))
        assert load in plan.skipped


class TestPrefetchEndToEnd:
    @pytest.fixture(scope="class")
    def comparison(self):
        program = compile_source(STRIDED_SRC)
        infos = build_load_infos(program)
        delta = DelinquencyClassifier(use_frequency=False).classify(
            infos).delinquent_set
        return compare_policies(program, delta)

    def test_semantics_preserved(self):
        program = compile_source(STRIDED_SRC)
        base = run_program(program)
        infos = build_load_infos(program)
        delta = DelinquencyClassifier(use_frequency=False).classify(
            infos).delinquent_set
        rewritten = apply_prefetching(program, delta).program
        assert run_program(rewritten).output == base.output

    def test_delta_policy_removes_misses(self, comparison):
        assert comparison.delta.load_misses \
            < 0.2 * comparison.none.load_misses

    def test_delta_policy_speeds_up(self, comparison):
        assert comparison.speedup(comparison.delta) > 1.0

    def test_all_loads_overhead_dominates(self, comparison):
        assert comparison.all_loads.prefetch_ops \
            > 3 * comparison.delta.prefetch_ops
        assert comparison.speedup(comparison.all_loads) \
            < comparison.speedup(comparison.delta)

    def test_render(self, comparison):
        text = comparison.render()
        assert "delta-guided" in text and "speedup" in text

    def test_miss_reduction_metric(self, comparison):
        assert comparison.miss_reduction(comparison.delta) > 0.8
        assert comparison.miss_reduction(comparison.none) == 0.0
