"""Tests for the paper-suggested extensions: static frequency estimation
(Section 5.2) and per-benchmark delta tuning (Section 8.6)."""

import pytest

from repro.compiler.driver import compile_source
from repro.heuristic.classifier import DelinquencyClassifier
from repro.heuristic.delta_tuning import (
    DEFAULT_CANDIDATES, TunedDelta, sweep, tune_delta,
)
from repro.heuristic.static_frequency import (
    StaticFrequencyEstimator, static_exec_counts,
)

SRC = r"""
int a[256];
int *shared;

int cold_helper(int x) {
    return *shared + x;         /* called once, outside loops */
}

int hot_helper(int x) {
    return *shared + a[x & 255]; /* called from a loop */
}

int main() {
    int i; int s;
    shared = (int*) malloc(4);
    *shared = 5;
    s = cold_helper(3);
    for (i = 0; i < 100; i = i + 1)
        s = s + hot_helper(i);
    print_int(s);
    return 0;
}
"""


@pytest.fixture(scope="module")
def program():
    return compile_source(SRC)


@pytest.fixture(scope="module")
def estimator(program):
    return StaticFrequencyEstimator(program)


class TestStaticFrequency:
    def test_entry_function_count_one(self, program, estimator):
        entry = program.function_containing(program.entry)
        assert estimator.function_count(entry) == 1

    def test_main_called_once(self, estimator):
        assert estimator.function_count("main") == 1

    def test_hot_helper_estimated_hotter(self, estimator):
        cold = estimator.function_count("cold_helper")
        hot = estimator.function_count("hot_helper")
        assert hot > cold >= 1

    def test_loop_blocks_scaled(self, program, estimator):
        # a block inside main's loop gets the loop factor
        counts = estimator.load_pseudo_counts()
        in_main = {a: c for a, c in counts.items()
                   if program.function_containing(a) == "main"}
        assert max(in_main.values()) >= 1000 * min(in_main.values())

    def test_every_load_estimated(self, program, estimator):
        counts = estimator.load_pseudo_counts()
        assert set(counts) == set(program.load_addresses())

    def test_counts_capped(self, estimator):
        assert all(c <= 10 ** 12
                   for c in estimator.load_pseudo_counts().values())

    def test_recursion_saturates(self):
        src = r"""
        int f(int n) {
            if (n <= 0) return 0;
            return 1 + f(n - 1);
        }
        int main() { print_int(f(5)); return 0; }
        """
        program = compile_source(src)
        estimator = StaticFrequencyEstimator(program)
        assert estimator.function_count("f") >= 1   # terminates, capped

    def test_plugs_into_classifier(self, program):
        from repro.patterns.builder import build_load_infos
        infos = build_load_infos(program)
        pseudo = static_exec_counts(program)
        result = DelinquencyClassifier().classify(infos,
                                                  exec_counts=pseudo)
        # cold_helper's array load is pruned by AG9, hot_helper's is kept
        cold_loads = [a for a, i in infos.items()
                      if i.function == "cold_helper"]
        hot_loads = [a for a, i in infos.items()
                     if i.function == "hot_helper"]
        assert not any(result.loads[a].is_delinquent
                       for a in cold_loads)
        assert any(result.loads[a].is_delinquent for a in hot_loads)

    def test_static_vs_profiled_agree_on_hot(self, program):
        from repro.machine.simulator import run_program
        from repro.profiling.profile import BlockProfile
        result = run_program(program)
        profile = BlockProfile.from_execution(program, result)
        measured = profile.load_exec_counts()
        pseudo = static_exec_counts(program)
        # loads measured as frequent must not be statically rare
        for address, count in measured.items():
            if count >= 100:
                assert pseudo[address] >= 100, hex(address)


class TestDeltaTuning:
    SCORES = {1: 0.9, 2: 0.3, 3: 0.12, 4: 0.0}
    MISSES = {1: 900, 2: 80, 3: 20, 4: 0}

    def test_sweep_shapes(self):
        results = sweep(self.SCORES, self.MISSES, 10)
        assert len(results) == len(DEFAULT_CANDIDATES)
        pis = [r.pi for r in results]
        rhos = [r.rho for r in results]
        assert pis == sorted(pis, reverse=True)
        assert rhos == sorted(rhos, reverse=True)

    def test_tuned_is_argmax(self):
        best = tune_delta(self.SCORES, self.MISSES, 10)
        results = sweep(self.SCORES, self.MISSES, 10)
        assert best.utility == max(r.utility for r in results)

    def test_lambda_steers_sharpness(self):
        lenient = tune_delta(self.SCORES, self.MISSES, 10, lam=0.05)
        strict = tune_delta(self.SCORES, self.MISSES, 10, lam=10.0)
        assert strict.delta >= lenient.delta
        assert strict.pi <= lenient.pi

    def test_tie_breaks_high(self):
        scores = {1: 0.9}
        misses = {1: 10}
        best = tune_delta(scores, misses, 1,
                          candidates=(0.1, 0.2, 0.3))
        # any delta < 0.9 gives identical pi/rho; prefer the sharpest
        assert best.delta == 0.3

    def test_custom_candidates(self):
        best = tune_delta(self.SCORES, self.MISSES, 10,
                          candidates=(0.25,))
        assert best.delta == 0.25
