"""Codegen stress tests: the paths most likely to harbour bugs —
temporaries surviving calls (spill/reload), deep expressions, nested
calls as arguments, recursion depth, mixed-type expressions."""

import pytest

from repro.compiler.codegen import CodegenError
from repro.compiler.driver import compile_source
from tests.conftest import compile_and_run

MODES = [False, True]


@pytest.mark.parametrize("optimize", MODES)
class TestCallsInExpressions:
    def test_nested_calls_as_arguments(self, optimize):
        src = r"""
        int add(int a, int b) { return a + b; }
        int double_(int x) { return x * 2; }
        int main() {
            print_int(add(double_(3), double_(4)));
            print_int(add(add(1, 2), add(3, add(4, 5))));
            return 0;
        }
        """
        _, result = compile_and_run(src, optimize=optimize)
        assert result.output == [14, 15]

    def test_live_temp_across_call(self, optimize):
        # a*b must survive the call to f() in a caller-saved world
        src = r"""
        int f() { return 100; }
        int main() {
            int a; int b;
            a = 6; b = 7;
            print_int(a * b + f());
            print_int(f() + a * b);
            return 0;
        }
        """
        _, result = compile_and_run(src, optimize=optimize)
        assert result.output == [142, 142]

    def test_many_live_temps_across_call(self, optimize):
        src = r"""
        int f() { return 1; }
        int main() {
            int a;
            a = 2;
            print_int(a + a * 2 + a * 3 + a * 4 + f());
            return 0;
        }
        """
        _, result = compile_and_run(src, optimize=optimize)
        assert result.output == [2 + 4 + 6 + 8 + 1]

    def test_call_in_condition(self, optimize):
        src = r"""
        int positive(int x) { return x > 0; }
        int main() {
            int n;
            n = 0;
            while (positive(10 - n))
                n = n + 1;
            print_int(n);
            if (positive(-1)) print_int(111); else print_int(222);
            return 0;
        }
        """
        _, result = compile_and_run(src, optimize=optimize)
        assert result.output == [10, 222]

    def test_call_result_indexes_array(self, optimize):
        src = r"""
        int a[16];
        int pick(int i) { return (i * 5) % 16; }
        int main() {
            int i;
            for (i = 0; i < 16; i = i + 1) a[i] = i * i;
            print_int(a[pick(3)]);
            return 0;
        }
        """
        _, result = compile_and_run(src, optimize=optimize)
        assert result.output == [((3 * 5) % 16) ** 2]

    def test_recursive_calls_in_expression(self, optimize):
        src = r"""
        int tri(int n) {
            if (n <= 0) return 0;
            return n + tri(n - 1);
        }
        int main() {
            print_int(tri(5) * tri(4) + tri(3));
            return 0;
        }
        """
        _, result = compile_and_run(src, optimize=optimize)
        assert result.output == [15 * 10 + 6]


@pytest.mark.parametrize("optimize", MODES)
class TestDeepExpressions:
    def test_long_sum_chain(self, optimize):
        terms = " + ".join(f"x{i}" for i in range(8))
        decls = "\n".join(f"int x{i};" for i in range(8))
        inits = "\n".join(f"x{i} = {i + 1};" for i in range(8))
        src = (f"int main() {{ {decls} {inits} "
               f"print_int({terms}); return 0; }}")
        _, result = compile_and_run(src, optimize=optimize)
        assert result.output == [sum(range(1, 9))]

    def test_parenthesised_depth(self, optimize):
        src = r"""
        int main() {
            int a;
            a = 3;
            print_int(((((a + 1) * 2) - 3) * ((a - 1) * (a + 2))) % 97);
            return 0;
        }
        """
        a = 3
        expected = (((((a + 1) * 2) - 3) * ((a - 1) * (a + 2))) % 97)
        _, result = compile_and_run(src, optimize=optimize)
        assert result.output == [expected]

    def test_expression_too_deep_raises(self, optimize):
        # a right-leaning tree holds one live temp per nesting level and
        # must exhaust the pool with a clear error, not miscompile
        expr = "x"
        for i in range(2, 16):
            expr = f"((x + {i}) * {expr})"
        src = f"int main() {{ int x; x = 1; return {expr}; }}"
        with pytest.raises(CodegenError):
            compile_source(src, optimize=optimize)

    def test_deeply_nested_indexing(self, optimize):
        src = r"""
        int idx[8];
        int data[8];
        int main() {
            int i;
            for (i = 0; i < 8; i = i + 1) { idx[i] = 7 - i; data[i] = i * 3; }
            print_int(data[idx[data[idx[1]] % 8]]);
            return 0;
        }
        """
        idx = [7 - i for i in range(8)]
        data = [i * 3 for i in range(8)]
        expected = data[idx[data[idx[1]] % 8]]
        _, result = compile_and_run(src, optimize=optimize)
        assert result.output == [expected]


@pytest.mark.parametrize("optimize", MODES)
class TestMixedTypes:
    def test_int_float_int_chain(self, optimize):
        src = r"""
        int main() {
            int n;
            float f;
            n = 7;
            f = (float) n / 2.0;
            n = (int) (f * 4.0);
            print_int(n);
            return 0;
        }
        """
        _, result = compile_and_run(src, optimize=optimize)
        assert result.output == [14]

    def test_char_int_promotion(self, optimize):
        src = r"""
        int main() {
            char c;
            int i;
            c = 'A';
            i = c + 1;
            print_int(i);
            c = c + 2;
            print_int(c);
            return 0;
        }
        """
        _, result = compile_and_run(src, optimize=optimize)
        assert result.output == [66, 67]

    def test_float_array_accumulate(self, optimize):
        src = r"""
        float xs[10];
        int main() {
            int i;
            float acc;
            for (i = 0; i < 10; i = i + 1)
                xs[i] = (float) i * 0.5;
            acc = 0.0;
            for (i = 0; i < 10; i = i + 1)
                acc = acc + xs[i];
            print_int((int)(acc * 10.0));
            return 0;
        }
        """
        _, result = compile_and_run(src, optimize=optimize)
        assert result.output == [int(sum(i * 0.5 for i in range(10)) * 10)]


@pytest.mark.parametrize("optimize", MODES)
class TestAggregates:
    def test_struct_array_on_stack(self, optimize):
        src = r"""
        struct pair { int a; int b; };
        int main() {
            struct pair ps[4];
            int i; int s;
            for (i = 0; i < 4; i = i + 1) {
                ps[i].a = i;
                ps[i].b = i * 10;
            }
            s = 0;
            for (i = 0; i < 4; i = i + 1)
                s = s + ps[i].a + ps[i].b;
            print_int(s);
            return 0;
        }
        """
        _, result = compile_and_run(src, optimize=optimize)
        assert result.output == [sum(i + i * 10 for i in range(4))]

    def test_nested_struct_member(self, optimize):
        src = r"""
        struct inner { int x; int y; };
        struct outer { int tag; struct inner in_; };
        struct outer g;
        int main() {
            g.tag = 1;
            g.in_.x = 20;
            g.in_.y = 22;
            print_int(g.in_.x + g.in_.y + g.tag);
            return 0;
        }
        """
        _, result = compile_and_run(src, optimize=optimize)
        assert result.output == [43]

    def test_pointer_to_struct_array_element(self, optimize):
        src = r"""
        struct cell { int v; int pad; };
        struct cell grid[8];
        int main() {
            struct cell *p;
            int i;
            for (i = 0; i < 8; i = i + 1) grid[i].v = i * i;
            p = &grid[5];
            print_int(p->v);
            p = p + 1;
            print_int(p->v);
            return 0;
        }
        """
        _, result = compile_and_run(src, optimize=optimize)
        assert result.output == [25, 36]

    def test_array_of_pointers(self, optimize):
        src = r"""
        int a; int b; int c;
        int *table[3];
        int main() {
            int i; int s;
            a = 10; b = 20; c = 30;
            table[0] = &a;
            table[1] = &b;
            table[2] = &c;
            s = 0;
            for (i = 0; i < 3; i = i + 1)
                s = s + *table[i];
            print_int(s);
            return 0;
        }
        """
        _, result = compile_and_run(src, optimize=optimize)
        assert result.output == [60]


@pytest.mark.parametrize("optimize", MODES)
class TestControlEdges:
    def test_empty_blocks_and_bodies(self, optimize):
        src = r"""
        int main() {
            int i;
            for (i = 0; i < 5; i = i + 1) { }
            while (i > 5) { }
            if (i == 5) { } else { print_int(999); }
            print_int(i);
            return 0;
        }
        """
        _, result = compile_and_run(src, optimize=optimize)
        assert result.output == [5]

    def test_return_from_loop(self, optimize):
        src = r"""
        int find(int target) {
            int i;
            for (i = 0; i < 100; i = i + 1)
                if (i * i >= target)
                    return i;
            return -1;
        }
        int main() {
            print_int(find(50));
            print_int(find(10001));
            return 0;
        }
        """
        _, result = compile_and_run(src, optimize=optimize)
        assert result.output == [8, -1]

    def test_deep_recursion(self, optimize):
        src = r"""
        int depth(int n) {
            if (n == 0) return 0;
            return 1 + depth(n - 1);
        }
        int main() {
            print_int(depth(500));
            return 0;
        }
        """
        _, result = compile_and_run(src, optimize=optimize)
        assert result.output == [500]

    def test_mutual_recursion(self, optimize):
        src = r"""
        int is_odd(int n);
        int is_even(int n) {
            if (n == 0) return 1;
            return is_odd(n - 1);
        }
        int is_odd(int n) {
            if (n == 0) return 0;
            return is_even(n - 1);
        }
        int main() {
            print_int(is_even(10));
            print_int(is_odd(7));
            print_int(is_even(3));
            return 0;
        }
        """
        _, result = compile_and_run(src, optimize=optimize)
        assert result.output == [1, 1, 0]
