"""Assembler tests: directives, pseudo-instructions, relocation, errors."""

import pytest

from repro.asm.assembler import AssemblerError, assemble
from repro.asm.program import DATA_BASE, GP_OFFSET, TEXT_BASE
from repro.isa.registers import AT, GP, ZERO


def asm(body: str):
    return assemble(body)


class TestDirectives:
    def test_word_data(self):
        p = asm(".data\nvals: .word 1, -2, 0x10\n.text\nmain: jr $ra\n")
        assert p.data[0:4] == (1).to_bytes(4, "little")
        assert p.data[4:8] == (-2).to_bytes(4, "little", signed=True)
        assert p.data[8:12] == (16).to_bytes(4, "little")

    def test_space(self):
        p = asm(".data\nbuf: .space 40\n.text\nmain: jr $ra\n")
        assert len(p.data) == 40
        assert p.symbols["buf"] == DATA_BASE

    def test_byte_and_align(self):
        p = asm(".data\nb: .byte 1, 2, 3\n.align 2\nw: .word 9\n"
                ".text\nmain: jr $ra\n")
        assert p.symbols["w"] == DATA_BASE + 4

    def test_asciiz(self):
        p = asm('.data\ns: .asciiz "hi"\n.text\nmain: jr $ra\n')
        assert bytes(p.data[:3]) == b"hi\0"

    def test_float_directive(self):
        import struct
        p = asm(".data\nf: .float 1.5\n.text\nmain: jr $ra\n")
        assert struct.unpack("<f", p.data[:4])[0] == 1.5

    def test_half(self):
        p = asm(".data\nh: .half -1, 2\n.text\nmain: jr $ra\n")
        assert p.data[0:2] == b"\xff\xff"

    def test_word_with_symbol_reference(self):
        p = asm(".data\nx: .word 7\nptr: .word x\n.text\nmain: jr $ra\n")
        stored = int.from_bytes(p.data[4:8], "little")
        assert stored == p.symbols["x"]

    def test_unknown_directive_raises(self):
        with pytest.raises(AssemblerError):
            asm(".bogus 1\n")

    def test_ent_end_records_function(self):
        p = asm(".text\n.ent f\nf: jr $ra\n.end f\n")
        info = p.symtab.functions["f"]
        assert info.start == TEXT_BASE
        assert info.end == TEXT_BASE + 4

    def test_unmatched_end_raises(self):
        with pytest.raises(AssemblerError):
            asm(".text\n.ent f\nf: jr $ra\n.end g\n")

    def test_unterminated_ent_raises(self):
        with pytest.raises(AssemblerError):
            asm(".text\n.ent f\nf: jr $ra\n")


class TestLabels:
    def test_duplicate_label_raises(self):
        with pytest.raises(AssemblerError):
            asm(".text\na: jr $ra\na: jr $ra\n")

    def test_undefined_symbol_raises(self):
        with pytest.raises(AssemblerError):
            asm(".text\nmain: j nowhere\n")

    def test_forward_reference(self):
        p = asm(".text\nmain: j done\nnop\ndone: jr $ra\n")
        assert p.instructions[0].imm == p.symbols["done"]

    def test_label_on_own_line(self):
        p = asm(".text\nmain:\n  jr $ra\n")
        assert p.symbols["main"] == TEXT_BASE

    def test_multiple_labels_same_address(self):
        p = asm(".text\na: b: jr $ra\n")
        assert p.symbols["a"] == p.symbols["b"]


class TestPseudos:
    def test_nop(self):
        p = asm(".text\nmain: nop\njr $ra\n")
        i = p.instructions[0]
        assert i.mnemonic == "sll" and i.rd == ZERO

    def test_move(self):
        p = asm(".text\nmain: move $t0, $t1\njr $ra\n")
        i = p.instructions[0]
        assert (i.mnemonic, i.rt) == ("addu", ZERO)

    def test_li_small(self):
        p = asm(".text\nmain: li $t0, 42\njr $ra\n")
        assert p.instructions[0].mnemonic == "addiu"
        assert p.instructions[0].imm == 42

    def test_li_negative(self):
        p = asm(".text\nmain: li $t0, -5\njr $ra\n")
        assert p.instructions[0].imm == -5

    def test_li_unsigned16(self):
        p = asm(".text\nmain: li $t0, 40000\njr $ra\n")
        assert p.instructions[0].mnemonic == "ori"

    def test_li_large_expands_to_two(self):
        p = asm(".text\nmain: li $t0, 0x12345678\njr $ra\n")
        assert [i.mnemonic for i in p.instructions[:2]] == ["lui", "ori"]

    def test_li_large_round_value_single_lui(self):
        p = asm(".text\nmain: li $t0, 0x10000\njr $ra\n")
        assert p.instructions[0].mnemonic == "lui"
        assert p.instructions[1].mnemonic == "jr"

    def test_la_is_gp_relative(self):
        p = asm(".data\nv: .word 0\n.text\nmain: la $t0, v\njr $ra\n")
        i = p.instructions[0]
        assert i.mnemonic == "addiu" and i.rs == GP
        assert i.imm == p.symbols["v"] - p.gp_value

    def test_lta_is_absolute(self):
        p = asm(".text\nmain: lta $t0, main\njr $ra\n")
        assert [i.mnemonic for i in p.instructions[:2]] == ["lui", "ori"]

    def test_direct_global_load(self):
        p = asm(".data\ncounter: .word 0\n.text\n"
                "main: lw $t0, counter\njr $ra\n")
        i = p.instructions[0]
        assert i.rs == GP
        assert i.imm == p.symbols["counter"] - p.gp_value

    def test_compare_branches_use_at(self):
        p = asm(".text\nmain: blt $t0, $t1, main\njr $ra\n")
        assert p.instructions[0].mnemonic == "slt"
        assert p.instructions[0].rd == AT
        assert p.instructions[1].mnemonic == "bne"

    def test_bge_uses_beq(self):
        p = asm(".text\nmain: bge $t0, $t1, main\njr $ra\n")
        assert p.instructions[1].mnemonic == "beq"

    def test_bgt_swaps_operands(self):
        p = asm(".text\nmain: bgt $t0, $t1, main\njr $ra\n")
        slt = p.instructions[0]
        assert (slt.rs, slt.rt) == (9, 8)  # $t1, $t0 swapped

    def test_beqz_bnez(self):
        p = asm(".text\nmain: beqz $t0, main\nbnez $t0, main\njr $ra\n")
        assert p.instructions[0].mnemonic == "beq"
        assert p.instructions[1].mnemonic == "bne"

    def test_neg_not(self):
        p = asm(".text\nmain: neg $t0, $t1\nnot $t2, $t3\njr $ra\n")
        assert p.instructions[0].mnemonic == "subu"
        assert p.instructions[1].mnemonic == "nor"


class TestProgramStructure:
    def test_entry_prefers_start(self):
        p = asm(".text\nmain: jr $ra\n__start: jr $ra\n")
        assert p.entry == p.symbols["__start"]

    def test_entry_falls_back_to_main(self):
        p = asm(".text\nmain: jr $ra\n")
        assert p.entry == p.symbols["main"]

    def test_comments_ignored(self):
        p = asm(".text\n# full line\nmain: jr $ra  # trailing\n")
        assert len(p.instructions) == 1

    def test_gp_value(self):
        p = asm(".text\nmain: jr $ra\n")
        assert p.gp_value == DATA_BASE + GP_OFFSET

    def test_heap_base_above_data(self):
        p = asm(".data\nbuf: .space 100\n.text\nmain: jr $ra\n")
        assert p.heap_base >= p.data_end
        assert p.heap_base % 0x1000 == 0

    def test_num_loads(self):
        p = asm(".text\nmain: lw $t0, 0($sp)\nlb $t1, 1($sp)\n"
                "sw $t0, 4($sp)\njr $ra\n")
        assert p.num_loads() == 2

    def test_instruction_outside_text_raises(self):
        with pytest.raises(AssemblerError):
            asm(".data\naddu $t0, $t1, $t2\n")

    def test_bad_operand_raises(self):
        with pytest.raises(AssemblerError):
            asm(".text\nmain: addu $t0, $t1\n")

    def test_unknown_mnemonic_raises(self):
        with pytest.raises(AssemblerError):
            asm(".text\nmain: frobnicate $t0\n")
