"""Dedicated tests for the address-flow analysis (load -> later address
def-use edges) that powers the baselines' chain inclusion and the BDH
pointer inference."""

import pytest

from repro.asm.assembler import assemble
from repro.compiler.driver import compile_source
from repro.dataflow.addrflow import AddressFlow


def flow_of(asm_source):
    program = assemble(asm_source)
    return program, AddressFlow(program)


class TestDirectEdges:
    def test_load_feeding_load_base(self):
        src = (".text\n.ent f\nf:\n"
               "lw $t0, 0($sp)\n"        # A: loads a pointer
               "lw $t1, 4($t0)\n"        # B: uses it as a base
               "jr $ra\n.end f\n")
        program, flow = flow_of(src)
        a, b = program.address_of(0), program.address_of(1)
        assert a in flow.address_source_loads
        assert b in flow.feeds[a]

    def test_load_feeding_store_address(self):
        src = (".text\n.ent f\nf:\n"
               "lw $t0, 0($sp)\n"
               "sw $t1, 8($t0)\n"
               "jr $ra\n.end f\n")
        program, flow = flow_of(src)
        assert program.address_of(0) in flow.address_source_loads

    def test_value_only_load_excluded(self):
        src = (".text\n.ent f\nf:\n"
               "lw $t0, 0($sp)\n"        # loaded value only added, then
               "addu $t1, $t0, $t0\n"    # never used as an address
               "sw $t1, 4($sp)\n"        # stored as *data*, not address
               "jr $ra\n.end f\n")
        program, flow = flow_of(src)
        assert program.address_of(0) not in flow.address_source_loads


class TestTransitiveEdges:
    def test_through_arithmetic(self):
        src = (".text\n.ent f\nf:\n"
               "lw $t0, 0($sp)\n"        # index
               "sll $t1, $t0, 2\n"
               "addiu $t2, $gp, -32768\n"
               "addu $t2, $t2, $t1\n"
               "lw $t3, 0($t2)\n"        # consumer
               "jr $ra\n.end f\n")
        program, flow = flow_of(src)
        index_load = program.address_of(0)
        consumer = program.address_of(4)
        assert consumer in flow.feeds[index_load]

    def test_chain_of_loads(self):
        src = (".text\n.ent f\nf:\n"
               "lw $t0, 0($sp)\n"        # p
               "lw $t0, 8($t0)\n"        # p->next
               "lw $t1, 0($t0)\n"        # p->next->v
               "jr $ra\n.end f\n")
        program, flow = flow_of(src)
        assert program.address_of(0) in flow.address_source_loads
        assert program.address_of(1) in flow.address_source_loads
        assert program.address_of(2) not in flow.address_source_loads

    def test_chain_members_filter(self):
        src = (".text\n.ent f\nf:\n"
               "lw $t0, 0($sp)\n"
               "lw $t1, 4($t0)\n"
               "lw $t2, 8($sp)\n"        # unrelated scalar
               "jr $ra\n.end f\n")
        program, flow = flow_of(src)
        consumer = program.address_of(1)
        members = flow.chain_members({consumer})
        assert members == {program.address_of(0)}
        assert flow.chain_members(set()) == set()


class TestScopeAndLimits:
    def test_sp_gp_bases_not_traced(self):
        src = (".text\n.ent f\nf:\n"
               "lw $t0, 0($sp)\n"
               "lw $t1, 0($gp)\n"
               "jr $ra\n.end f\n")
            # neither load's base depends on another load
        program, flow = flow_of(src)
        assert flow.address_source_loads == set()

    def test_calls_cut_tracing(self):
        src = (".text\n.ent f\nf:\n"
               "lw $t0, 0($sp)\n"
               "jal g\n"                 # clobbers $t0
               "lw $t1, 0($t0)\n"        # base comes from the call, not A
               "jr $ra\n.end f\n"
               ".ent g\ng: jr $ra\n.end g\n")
        program, flow = flow_of(src)
        assert program.address_of(0) not in flow.address_source_loads

    def test_loop_cycles_terminate(self):
        src = (".text\n.ent f\nf:\n"
               "loop:\n"
               "lw $t0, 0($t0)\n"        # self-dependent pointer chase
               "bnez $t0, loop\n"
               "jr $ra\n.end f\n")
        program, flow = flow_of(src)
        # the chasing load feeds itself across iterations
        chase = program.address_of(0)
        assert chase in flow.address_source_loads

    def test_on_compiled_program(self, sample_program):
        flow = AddressFlow(sample_program)
        loads = set(sample_program.load_addresses())
        assert flow.address_source_loads <= loads
        # unoptimized pointer code must exhibit chains
        assert flow.address_source_loads
