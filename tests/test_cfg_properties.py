"""Property-based CFG tests: dominator and natural-loop invariants over
randomly generated control-flow graphs.

Graphs are generated as assembly functions — a chain of blocks where
each block may branch to a random earlier/later block — so the
invariants are checked through the same reconstruction path production
code uses.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm.assembler import assemble
from repro.cfg.graph import build_function_cfgs


@st.composite
def random_function(draw):
    """Assembly for one function with n blocks and random branches."""
    n_blocks = draw(st.integers(min_value=2, max_value=10))
    lines = [".text", ".ent f", "f:"]
    for block in range(n_blocks):
        lines.append(f"B{block}:")
        lines.append(f"addiu $t0, $t0, {block + 1}")
        # optional conditional branch to a random block
        if draw(st.booleans()):
            target = draw(st.integers(min_value=0,
                                      max_value=n_blocks - 1))
            lines.append(f"beqz $t1, B{target}")
        # occasional unconditional jump (creates unreachable tails)
        if block < n_blocks - 1 and draw(st.integers(0, 3)) == 0:
            target = draw(st.integers(min_value=0,
                                      max_value=n_blocks - 1))
            lines.append(f"b B{target}")
    lines.append("jr $ra")
    lines.append(".end f")
    return "\n".join(lines)


def cfg_of(source):
    return build_function_cfgs(assemble(source))["f"]


@given(random_function())
@settings(max_examples=120, deadline=None)
def test_entry_dominates_every_reachable_block(source):
    cfg = cfg_of(source)
    dom = cfg.dominators()
    reachable = _reachable(cfg)
    for leader in reachable:
        assert cfg.entry in dom[leader]
        assert leader in dom[leader]


@given(random_function())
@settings(max_examples=120, deadline=None)
def test_dominators_are_consistent(source):
    """d dom n implies every path property surrogate: d's dominators are
    a subset of n's dominators (dominance is transitive and tree-like
    on reachable nodes)."""
    cfg = cfg_of(source)
    dom = cfg.dominators()
    reachable = _reachable(cfg)
    for node in reachable:
        for dominator in dom[node]:
            if dominator in reachable:
                assert dom[dominator] <= dom[node] | {node}


@given(random_function())
@settings(max_examples=120, deadline=None)
def test_natural_loop_invariants(source):
    cfg = cfg_of(source)
    dom = cfg.dominators()
    for loop in cfg.natural_loops():
        # back edge: the latch is dominated by the header
        assert loop.header in dom[loop.latch]
        # header and latch belong to the body
        assert loop.header in loop.body
        assert loop.latch in loop.body
        # body closed under predecessors, except through the header
        for node in loop.body:
            if node == loop.header:
                continue
            for pred in cfg.predecessors(node):
                assert pred in loop.body, (
                    f"{pred:#x} -> {node:#x} enters the loop "
                    f"bypassing header {loop.header:#x}")


@given(random_function())
@settings(max_examples=100, deadline=None)
def test_block_partition_total(source):
    cfg = cfg_of(source)
    sizes = sum(block.size for block in cfg)
    program = assemble(source)
    assert sizes == len(program.instructions)
    # successors stay within the function
    for block in cfg:
        for succ in cfg.successors(block.start):
            assert succ in cfg.blocks


def _reachable(cfg) -> set[int]:
    seen = {cfg.entry}
    stack = [cfg.entry]
    while stack:
        node = stack.pop()
        for succ in cfg.successors(node):
            if succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return seen
