"""Unit tests for instruction metadata (defs/uses, classification, text)."""

import pytest

from repro.isa.instructions import (
    SPECS, Format, Instruction, branch_target, mnemonics,
)
from repro.isa.registers import RA, T0, T1, T2, ZERO


def instr(mnemonic, **kw):
    return Instruction(mnemonic, **kw)


class TestSpecs:
    def test_all_loads_marked(self):
        loads = set(mnemonics(lambda s: s.is_load))
        assert loads == {"lb", "lbu", "lh", "lhu", "lw"}

    def test_all_stores_marked(self):
        stores = set(mnemonics(lambda s: s.is_store))
        assert stores == {"sb", "sh", "sw"}

    def test_branches(self):
        branches = set(mnemonics(lambda s: s.is_branch))
        assert branches == {"beq", "bne", "blez", "bgtz", "bltz", "bgez"}

    def test_calls(self):
        calls = set(mnemonics(lambda s: s.is_call))
        assert calls == {"jal", "jalr"}

    def test_widths(self):
        assert SPECS["lb"].width == 1
        assert SPECS["lh"].width == 2
        assert SPECS["lw"].width == 4
        assert SPECS["lbu"].signed is False
        assert SPECS["lb"].signed is True

    def test_unique_encodings(self):
        seen = set()
        for spec in SPECS.values():
            key = (spec.opcode, spec.funct, spec.rt_code)
            assert key not in seen, f"duplicate encoding for {spec}"
            seen.add(key)


class TestDefsUses:
    def test_r3_defs_uses(self):
        i = instr("addu", rd=T0, rs=T1, rt=T2)
        assert i.defs() == {T0}
        assert i.uses() == {T1, T2}

    def test_zero_never_defined(self):
        i = instr("addu", rd=ZERO, rs=T1, rt=T2)
        assert i.defs() == frozenset()

    def test_zero_never_used(self):
        i = instr("addu", rd=T0, rs=ZERO, rt=ZERO)
        assert i.uses() == frozenset()

    def test_load_defs_rt_uses_rs(self):
        i = instr("lw", rt=T0, rs=T1, imm=8)
        assert i.defs() == {T0}
        assert i.uses() == {T1}

    def test_store_defines_nothing(self):
        i = instr("sw", rt=T0, rs=T1, imm=8)
        assert i.defs() == frozenset()
        assert i.uses() == {T0, T1}

    def test_shift_uses_rt_only(self):
        i = instr("sll", rd=T0, rt=T1, shamt=2)
        assert i.defs() == {T0}
        assert i.uses() == {T1}

    def test_jal_defines_ra(self):
        i = instr("jal", imm=0x400000)
        assert RA in i.defs()

    def test_jalr_defines_rd_and_ra(self):
        i = instr("jalr", rd=RA, rs=T0)
        assert i.defs() == {RA}
        assert i.uses() == {T0}

    def test_branch_uses_both(self):
        i = instr("beq", rs=T0, rt=T1, imm=0x400000)
        assert i.defs() == frozenset()
        assert i.uses() == {T0, T1}

    def test_lui_defs_rt(self):
        i = instr("lui", rt=T0, imm=5)
        assert i.defs() == {T0}
        assert i.uses() == frozenset()


class TestClassification:
    def test_is_control(self):
        assert instr("j", imm=0x400000).is_control()
        assert instr("jr", rs=RA).is_control()
        assert instr("beq", rs=T0, rt=T1, imm=0x400000).is_control()
        assert not instr("addu", rd=T0, rs=T1, rt=T2).is_control()

    def test_branch_target(self):
        assert branch_target(instr("beq", rs=T0, rt=T1,
                                   imm=0x400010)) == 0x400010
        assert branch_target(instr("j", imm=0x400020)) == 0x400020
        assert branch_target(instr("jr", rs=RA)) is None
        assert branch_target(instr("addu", rd=T0, rs=T1, rt=T2)) is None


class TestText:
    def test_r3(self):
        assert instr("addu", rd=T0, rs=T1, rt=T2).text() \
            == "addu $t0, $t1, $t2"

    def test_mem(self):
        assert instr("lw", rt=T0, rs=29, imm=16).text() \
            == "lw $t0, 16($sp)"
        assert instr("sw", rt=T0, rs=28, imm=-4).text() \
            == "sw $t0, -4($gp)"

    def test_shift(self):
        assert instr("sll", rd=T0, rt=T1, shamt=2).text() \
            == "sll $t0, $t1, 2"

    def test_branch_with_label(self):
        text = instr("bne", rs=T0, rt=0, imm=0x400010,
                     label="loop").text()
        assert text == "bne $t0, $zero, loop"

    def test_branch_without_label(self):
        text = instr("bne", rs=T0, rt=0, imm=0x400010).text()
        assert "0x00400010" in text

    def test_bare(self):
        assert instr("syscall").text() == "syscall"
