"""Heuristic tests: aggregate class membership, phi computation, the
delinquency threshold, and frequency handling."""

import pytest

from repro.heuristic.classes import (
    AGGREGATE_CLASSES, CLASSES_BY_NAME, DEFAULT_DELTA, FREQ_FAIR,
    FREQ_HOTSPOT, FREQ_RARE, FREQ_SELDOM, PAPER_WEIGHTS, Weights,
    frequency_category,
)
from repro.heuristic.classifier import DelinquencyClassifier
from repro.heuristic import criteria
from repro.patterns.ap import APFeatures
from repro.patterns.builder import LoadInfo
from repro.isa.instructions import Instruction


def feats(**kw) -> APFeatures:
    return APFeatures(**kw)


def load_info(address, *features) -> LoadInfo:
    return LoadInfo(
        address=address, function="f",
        instruction=Instruction("lw", rt=8, rs=29, imm=0),
        patterns=[None] * len(features),
        features=list(features),
    )


class TestClassMembership:
    def member(self, name, f):
        return CLASSES_BY_NAME[name].matches_pattern(f)

    def test_ag1_needs_both_sp_and_gp(self):
        assert self.member("AG1", feats(sp_count=1, gp_count=1))
        assert not self.member("AG1", feats(sp_count=2))
        assert not self.member("AG1", feats(gp_count=1))

    def test_ag2_only_sp_twice(self):
        assert self.member("AG2", feats(sp_count=2))
        assert self.member("AG2", feats(sp_count=3))
        assert not self.member("AG2", feats(sp_count=1))
        assert not self.member("AG2", feats(sp_count=2, gp_count=1))
        assert not self.member("AG2", feats(sp_count=2, ret_count=1))

    def test_ag3_mul_or_shift(self):
        assert self.member("AG3", feats(has_mul=True))
        assert self.member("AG3", feats(has_shift=True))
        assert not self.member("AG3", feats())

    def test_deref_classes_exclusive(self):
        one = feats(deref_depth=1)
        two = feats(deref_depth=2)
        three = feats(deref_depth=3)
        four = feats(deref_depth=4)
        assert self.member("AG4", one) and not self.member("AG5", one)
        assert self.member("AG5", two) and not self.member("AG4", two)
        assert self.member("AG6", three)
        assert self.member("AG6", four)     # "three or more"

    def test_ag7_recurrence(self):
        assert self.member("AG7", feats(has_recurrence=True))
        assert not self.member("AG7", feats())

    def test_frequency_classes(self):
        ag8 = CLASSES_BY_NAME["AG8"]
        ag9 = CLASSES_BY_NAME["AG9"]
        assert ag9.matches_frequency(FREQ_RARE)
        assert not ag9.matches_frequency(FREQ_SELDOM)
        assert ag8.matches_frequency(FREQ_SELDOM)
        assert not ag8.matches_frequency(FREQ_FAIR)


class TestFrequencyCategory:
    def test_boundaries(self):
        assert frequency_category(0) == FREQ_RARE
        assert frequency_category(99) == FREQ_RARE
        assert frequency_category(100) == FREQ_SELDOM
        assert frequency_category(999) == FREQ_SELDOM
        assert frequency_category(1000) == FREQ_FAIR

    def test_hotspot(self):
        assert frequency_category(10_000, in_hotspot=True) \
            == FREQ_HOTSPOT
        assert frequency_category(10, in_hotspot=True) == FREQ_RARE


class TestWeights:
    def test_paper_values(self):
        assert PAPER_WEIGHTS["AG6"] == 1.72
        assert PAPER_WEIGHTS["AG9"] == -0.40

    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError):
            Weights.from_dict({"AG99": 1.0})

    def test_missing_class_scores_zero(self):
        weights = Weights.from_dict({"AG4": 0.5})
        assert weights["AG1"] == 0.0


class TestPhi:
    def classify(self, info, freq=FREQ_FAIR, **kw):
        clf = DelinquencyClassifier(**kw)
        return clf.score_load(info, freq)

    def test_sum_over_classes(self):
        info = load_info(
            0x400000,
            feats(sp_count=1, gp_count=1, deref_depth=1, has_shift=True))
        score, classes = self.classify(info)
        assert classes == {"AG1", "AG3", "AG4"}
        assert score == pytest.approx(0.28 + 0.47 + 0.16)

    def test_max_over_patterns(self):
        weak = feats(sp_count=1)
        strong = feats(deref_depth=3)
        info = load_info(0x400000, weak, strong)
        score, classes = self.classify(info)
        assert score == pytest.approx(1.72)
        assert "AG6" in classes

    def test_plain_scalar_scores_zero(self):
        info = load_info(0x400000, feats(sp_count=1))
        score, _ = self.classify(info)
        assert score == 0.0

    def test_frequency_penalty_applied(self):
        info = load_info(0x400000, feats(deref_depth=1))
        fair_score, _ = self.classify(info, FREQ_FAIR)
        rare_score, rare_classes = self.classify(info, FREQ_RARE)
        assert fair_score == pytest.approx(0.16)
        assert rare_score == pytest.approx(0.16 - 0.40)
        assert "AG9" in rare_classes

    def test_frequency_ignored_when_disabled(self):
        info = load_info(0x400000, feats(deref_depth=1))
        score, classes = self.classify(info, FREQ_RARE,
                                       use_frequency=False)
        assert score == pytest.approx(0.16)
        assert "AG9" not in classes

    def test_recurrence_alone_not_above_default_delta(self):
        # AG7 = +0.10 == delta: strictly-greater means not delinquent
        info = load_info(0x400000, feats(has_recurrence=True))
        clf = DelinquencyClassifier()
        result = clf.classify({0x400000: info})
        assert not result.loads[0x400000].is_delinquent


class TestClassify:
    def test_threshold_strictness(self):
        info = load_info(0x400000, feats(deref_depth=1))  # phi = 0.16
        result = DelinquencyClassifier(delta=0.16).classify(
            {0x400000: info})
        assert not result.loads[0x400000].is_delinquent
        result = DelinquencyClassifier(delta=0.15).classify(
            {0x400000: info})
        assert result.loads[0x400000].is_delinquent

    def test_exec_counts_drive_frequency(self):
        info = load_info(0x400000, feats(deref_depth=1))
        clf = DelinquencyClassifier()
        hot = clf.classify({0x400000: info},
                           exec_counts={0x400000: 50_000})
        cold = clf.classify({0x400000: info},
                            exec_counts={0x400000: 3})
        assert hot.loads[0x400000].is_delinquent
        assert not cold.loads[0x400000].is_delinquent

    def test_delinquent_set_and_members(self):
        infos = {
            1: load_info(1, feats(deref_depth=2)),
            2: load_info(2, feats(sp_count=1)),
        }
        result = DelinquencyClassifier().classify(infos)
        assert result.delinquent_set == {1}
        assert result.members_of("AG5") == {1}
        assert result.scores()[2] == 0.0

    def test_empty_patterns_harmless(self):
        info = LoadInfo(address=1, function="f",
                        instruction=Instruction("lw", rt=8, rs=29,
                                                imm=0))
        result = DelinquencyClassifier().classify({1: info})
        assert not result.loads[1].is_delinquent


class TestCriteria:
    def test_h1_names(self):
        assert criteria.h1_class(feats(sp_count=1, gp_count=1)) \
            == "H1:sp=1,gp=1"
        assert criteria.h1_class(feats(sp_count=2)) == "H1:sp=2"
        assert criteria.h1_class(feats(gp_count=3)) == "H1:gp=3"
        assert criteria.h1_class(feats()) == "H1:none"
        assert criteria.h1_class(feats(ret_count=1)) == "H1:others"

    def test_h1_clamps_counts(self):
        assert criteria.h1_class(feats(sp_count=9)) == "H1:sp=6"

    def test_h2_h3_h4(self):
        assert criteria.h2_class(feats(has_mul=True)) == "H2:mulshift"
        assert criteria.h2_class(feats()) == "H2:plain"
        assert criteria.h3_class(feats(deref_depth=2)) == "H3:deref2"
        assert criteria.h3_class(feats(deref_depth=9)) == "H3:deref4"
        assert criteria.h4_class(feats(has_recurrence=True)) \
            == "H4:recurrent"

    def test_h5(self):
        assert criteria.h5_class(5) == "H5:rare"
        assert criteria.h5_class(500) == "H5:seldom"
        assert criteria.h5_class(5000, in_hotspot=True) == "H5:hotspot"

    def test_load_classes_union_over_patterns(self):
        info = load_info(1, feats(deref_depth=1),
                         feats(has_recurrence=True))
        classes = criteria.load_classes(info, exec_count=50)
        assert "H3:deref1" in classes
        assert "H4:recurrent" in classes
        assert "H5:rare" in classes

    def test_class_membership_inversion(self):
        infos = {
            1: load_info(1, feats(deref_depth=1)),
            2: load_info(2, feats(deref_depth=2)),
        }
        members = criteria.class_membership(infos)
        assert members["H3:deref1"] == {1}
        assert members["H3:deref2"] == {2}
