"""Parallel experiment-engine tests.

Covers the single-pass multi-configuration replay
(:func:`simulate_trace_multi`, :func:`simulate_trace_hierarchy_multi`),
the :meth:`Session.warm` fan-out, and the disk-cache hardening against
concurrent or corrupt writers.
"""

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.config import (BASELINE_CONFIG, TRAINING_CONFIG,
                                CacheConfig, associativity_sweep,
                                size_sweep)
from repro.cache.hierarchy import (DEFAULT_HIERARCHY, HierarchyConfig,
                                   simulate_trace_hierarchy,
                                   simulate_trace_hierarchy_multi)
from repro.cache.model import simulate_trace, simulate_trace_multi
from repro.machine.trace import LOAD, PREFETCH, STORE, MemoryTrace
from repro.pipeline.session import (RunKey, Session, WarmReport,
                                    _resolve_jobs, standard_warm_plan)

WL = "129.compress"
SCALE = 0.03

#: Same geometry under every replacement policy, plus a different
#: geometry — the shapes the sweeps exercise.
POLICY_CONFIGS = [
    CacheConfig(1024, 2, 32, replacement="lru"),
    CacheConfig(1024, 2, 32, replacement="fifo"),
    CacheConfig(1024, 2, 32, replacement="random"),
    CacheConfig(4096, 4, 64, replacement="lru"),
]


def trace_of(accesses):
    """accesses: iterable of (pc, addr, kind)."""
    trace = MemoryTrace()
    for pc, addr, kind in accesses:
        trace.append(pc, addr, kind)
    return trace


def stats_key(stats):
    """Every observable field of a CacheStats, for bit-exact compares."""
    return (stats.config, stats.load_accesses, stats.load_misses,
            stats.store_accesses, stats.store_misses,
            stats.prefetch_ops, stats.prefetch_fills)


def hier_key(stats):
    return (stats.config, stats.load_accesses, stats.l1_load_misses,
            stats.l2_load_misses, stats.store_accesses,
            stats.l1_store_misses, stats.l2_store_misses)


@pytest.fixture(scope="module")
def workload_trace():
    """A real (execution-produced) memory trace, once per module."""
    session = Session(scale=SCALE, use_disk_cache=False)
    key = RunKey(WL, "input1", False)
    session._execute(key)
    return session._traces[key]


# -- simulate_trace_multi ---------------------------------------------

class TestMultiEquivalence:
    def test_empty_config_list(self):
        assert simulate_trace_multi(trace_of([]), []) == []

    def test_empty_trace(self):
        results = simulate_trace_multi(trace_of([]), POLICY_CONFIGS)
        for config, stats in zip(POLICY_CONFIGS, results):
            assert stats_key(stats) == stats_key(
                simulate_trace(trace_of([]), config))

    def test_mixed_kinds_bit_identical(self):
        trace = trace_of([
            (4, 0, LOAD), (8, 64, STORE), (4, 0, LOAD),
            (12, 4096, PREFETCH), (16, 4096, LOAD), (8, 128, STORE),
            (20, 8192, LOAD), (12, 12288, PREFETCH), (4, 32, LOAD),
        ])
        results = simulate_trace_multi(trace, POLICY_CONFIGS)
        for config, stats in zip(POLICY_CONFIGS, results):
            assert stats_key(stats) == stats_key(
                simulate_trace(trace, config))

    def test_duplicate_configs_have_independent_state(self):
        config = CacheConfig(1024, 2, 32, replacement="random")
        trace = trace_of([(4, a * 32, LOAD) for a in range(200)]
                         + [(4, a * 32, LOAD) for a in range(200)])
        one, two = simulate_trace_multi(trace, [config, config])
        assert stats_key(one) == stats_key(two)
        assert stats_key(one) == stats_key(simulate_trace(trace, config))

    @settings(max_examples=25, deadline=None)
    @given(st.lists(
        st.tuples(st.sampled_from([4, 8, 12, 16]),
                  st.integers(min_value=0, max_value=1 << 14),
                  st.just(0)),
        max_size=200))
    def test_random_traces_bit_identical(self, accesses):
        # one kind per PC (the machine invariant): derive it from the PC
        accesses = [(pc, addr, (LOAD, STORE, PREFETCH)[pc % 3])
                    for pc, addr, _ in accesses]
        trace = trace_of(accesses)
        results = simulate_trace_multi(trace, POLICY_CONFIGS)
        for config, stats in zip(POLICY_CONFIGS, results):
            assert stats_key(stats) == stats_key(
                simulate_trace(trace, config))

    def test_workload_trace_bit_identical(self, workload_trace):
        configs = [BASELINE_CONFIG, TRAINING_CONFIG,
                   CacheConfig(8192, 4, 32, replacement="fifo"),
                   CacheConfig(8192, 4, 32, replacement="random")]
        results = simulate_trace_multi(workload_trace, configs)
        for config, stats in zip(configs, results):
            assert stats_key(stats) == stats_key(
                simulate_trace(workload_trace, config))

    def test_sweep_configs_bit_identical(self, workload_trace):
        configs = list(dict.fromkeys(associativity_sweep()
                                     + size_sweep()))
        results = simulate_trace_multi(workload_trace, configs)
        for config, stats in zip(configs, results):
            assert stats_key(stats) == stats_key(
                simulate_trace(workload_trace, config))


class TestHierarchyMultiEquivalence:
    CONFIGS = [
        DEFAULT_HIERARCHY,
        HierarchyConfig(
            l1=CacheConfig(1024, 2, 32, replacement="fifo"),
            l2=CacheConfig(16 * 1024, 4, 64, replacement="random")),
        HierarchyConfig(
            l1=CacheConfig(2048, 2, 32),
            l2=CacheConfig(32 * 1024, 8, 64)),
    ]

    def test_empty_config_list(self):
        assert simulate_trace_hierarchy_multi(trace_of([]), []) == []

    def test_synthetic_bit_identical(self):
        trace = trace_of(
            [(4, a * 32, LOAD) for a in range(600)]
            + [(8, a * 64, STORE) for a in range(300)]
            + [(4, a * 32, LOAD) for a in range(600)])
        results = simulate_trace_hierarchy_multi(trace, self.CONFIGS)
        for config, stats in zip(self.CONFIGS, results):
            assert hier_key(stats) == hier_key(
                simulate_trace_hierarchy(trace, config))

    def test_workload_trace_bit_identical(self, workload_trace):
        results = simulate_trace_hierarchy_multi(workload_trace,
                                                 self.CONFIGS)
        for config, stats in zip(self.CONFIGS, results):
            assert hier_key(stats) == hier_key(
                simulate_trace_hierarchy(workload_trace, config))


# -- Session.warm ------------------------------------------------------

PLAN = [
    (WL, "input1", False, (BASELINE_CONFIG, TRAINING_CONFIG)),
    ("181.mcf", "input1", False, (BASELINE_CONFIG,)),
]


def _measurements(session):
    return [
        (m.load_misses, m.load_exec, m.steps)
        for workload, input_name, optimize, configs in PLAN
        for m in [session.measurement(workload, input_name, optimize,
                                      configs[0])]
    ]


class TestWarm:
    def test_parallel_matches_serial(self, tmp_path):
        serial = Session(scale=SCALE, cache_dir=tmp_path / "a")
        report = serial.warm(PLAN, jobs=1)
        assert (report.runs, report.simulated, report.jobs) == (2, 2, 1)

        fanned = Session(scale=SCALE, cache_dir=tmp_path / "b")
        report = fanned.warm(PLAN, jobs=4)
        assert report.simulated == 2
        assert report.jobs == 2      # clamped to the pending run count

        assert _measurements(serial) == _measurements(fanned)

    def test_warm_fills_memory_without_disk(self, tmp_path):
        session = Session(scale=SCALE, cache_dir=tmp_path / "c",
                          use_disk_cache=False)
        session.warm(PLAN, jobs=4)
        # everything needed is already in memory: no trace executions
        assert not session._traces
        baseline = _measurements(session)
        assert not session._traces
        assert not (tmp_path / "c").exists()

        direct = Session(scale=SCALE, cache_dir=tmp_path / "d",
                         use_disk_cache=False)
        assert _measurements(direct) == baseline

    def test_rewarm_is_all_cache_hits(self, tmp_path):
        session = Session(scale=SCALE, cache_dir=tmp_path / "e")
        session.warm(PLAN, jobs=1)
        report = session.warm(PLAN, jobs=4)
        assert isinstance(report, WarmReport)
        assert (report.simulated, report.cached) == (0, 2)
        assert "already cached" in report.describe()

    def test_fresh_session_reads_warmed_disk(self, tmp_path):
        cache_dir = tmp_path / "f"
        Session(scale=SCALE, cache_dir=cache_dir).warm(PLAN, jobs=4)
        fresh = Session(scale=SCALE, cache_dir=cache_dir)
        _measurements(fresh)
        assert not fresh._traces  # served from disk, never executed

    def test_run_key_and_triple_forms(self, tmp_path):
        session = Session(scale=SCALE, cache_dir=tmp_path / "g")
        report = session.warm(
            [RunKey(WL, "input1", False), (WL, "input1", False)],
            configs=(BASELINE_CONFIG,), jobs=1)
        assert report.runs == 2

    def test_resolve_jobs(self, monkeypatch):
        assert _resolve_jobs(3) == 3
        assert _resolve_jobs(0) == 1
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert _resolve_jobs(None) == 5
        monkeypatch.delenv("REPRO_JOBS")
        assert _resolve_jobs(None) >= 1

    def test_standard_plan_shape(self):
        plan = standard_warm_plan()
        assert len(plan) == 40
        for workload, input_name, optimize, configs in plan:
            assert isinstance(workload, str)
            assert input_name in ("input1", "input2")
            assert isinstance(optimize, bool)
            assert configs  # never an empty config tuple


# -- disk-cache hardening ---------------------------------------------

class TestDiskCacheHardening:
    def _seed_cache(self, cache_dir):
        session = Session(scale=SCALE, cache_dir=cache_dir)
        stats = session.stats(WL)
        path = session._disk_path(RunKey(WL, "input1", False),
                                  BASELINE_CONFIG)
        assert path.exists()
        return stats, path

    def test_no_temp_files_left_behind(self, tmp_path):
        _, path = self._seed_cache(tmp_path / "c")
        assert not list(path.parent.glob("*.tmp"))
        assert f".{os.getpid()}." not in path.name

    def test_corrupt_entry_resimulated(self, tmp_path):
        stats, path = self._seed_cache(tmp_path / "c")
        path.write_text("{not json")
        again = Session(scale=SCALE, cache_dir=tmp_path / "c").stats(WL)
        assert again.load_misses == stats.load_misses

    def test_partial_entry_resimulated(self, tmp_path):
        stats, path = self._seed_cache(tmp_path / "c")
        path.write_text(json.dumps({"version": 3, "steps": 1}))
        again = Session(scale=SCALE, cache_dir=tmp_path / "c").stats(WL)
        assert again.load_misses == stats.load_misses

    def test_wrong_types_resimulated(self, tmp_path):
        stats, path = self._seed_cache(tmp_path / "c")
        payload = json.loads(path.read_text())
        payload["load_misses"] = {"not-an-int": "nope"}
        path.write_text(json.dumps(payload))
        again = Session(scale=SCALE, cache_dir=tmp_path / "c").stats(WL)
        assert again.load_misses == stats.load_misses

    def test_old_schema_version_resimulated(self, tmp_path):
        stats, path = self._seed_cache(tmp_path / "c")
        payload = json.loads(path.read_text())
        payload["version"] = 1
        path.write_text(json.dumps(payload))
        again = Session(scale=SCALE, cache_dir=tmp_path / "c").stats(WL)
        assert again.load_misses == stats.load_misses
