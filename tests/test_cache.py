"""Cache model tests: geometry, LRU/FIFO/random policies, per-PC stats,
and hypothesis invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.config import (
    BASELINE_CONFIG, TRAINING_CONFIG, CacheConfig, associativity_sweep,
    size_sweep,
)
from repro.cache.model import Cache, CacheStats, simulate_trace
from repro.machine.trace import LOAD, STORE, MemoryTrace


def trace_of(accesses):
    """accesses: iterable of (pc, addr, kind)."""
    trace = MemoryTrace()
    for pc, addr, kind in accesses:
        trace.append(pc, addr, kind)
    return trace


class TestConfig:
    def test_num_sets(self):
        assert CacheConfig(8192, 4, 32).num_sets == 64
        assert TRAINING_CONFIG.num_sets == 256

    def test_paper_training_config_is_256_sets_4way_32B(self):
        assert TRAINING_CONFIG.assoc == 4
        assert TRAINING_CONFIG.block_size == 32
        assert TRAINING_CONFIG.size == 256 * 4 * 32

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(8192, 3, 32)
        with pytest.raises(ValueError):
            CacheConfig(size=96 * 5, assoc=1, block_size=32)

    def test_invalid_replacement_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(8192, 4, 32, replacement="plru")

    def test_sweeps(self):
        assert [c.assoc for c in associativity_sweep()] == [2, 4, 8]
        assert [c.size for c in size_sweep()] == [8192, 16384, 32768,
                                                  65536]

    def test_describe(self):
        assert "8KB" in BASELINE_CONFIG.describe()
        assert "LRU" in BASELINE_CONFIG.describe()


class TestCacheBehaviour:
    def test_cold_miss_then_hit(self):
        cache = Cache(CacheConfig(1024, 2, 32))
        assert cache.access(0) is False
        assert cache.access(0) is True
        assert cache.access(31) is True     # same block
        assert cache.access(32) is False    # next block

    def test_lru_eviction_order(self):
        # 2-way set: A, B fill; touching A makes B the LRU victim.
        config = CacheConfig(size=2 * 32, assoc=2, block_size=32)
        cache = Cache(config)
        a, b, c = 0, 32, 64          # all map to the single set
        cache.access(a)
        cache.access(b)
        cache.access(a)              # A most recent
        cache.access(c)              # evicts B
        assert cache.contains(a)
        assert not cache.contains(b)
        assert cache.contains(c)

    def test_fifo_ignores_recency(self):
        config = CacheConfig(size=2 * 32, assoc=2, block_size=32,
                             replacement="fifo")
        cache = Cache(config)
        a, b, c = 0, 32, 64
        cache.access(a)
        cache.access(b)
        cache.access(a)              # does not refresh under FIFO
        cache.access(c)              # evicts A (oldest inserted)
        assert not cache.contains(a)
        assert cache.contains(b)

    def test_random_policy_deterministic(self):
        config = CacheConfig(size=2 * 32, assoc=2, block_size=32,
                             replacement="random")
        def run():
            cache = Cache(config)
            results = []
            for addr in (0, 32, 64, 0, 96, 32, 128):
                results.append(cache.access(addr))
            return results
        assert run() == run()

    def test_reset(self):
        cache = Cache(BASELINE_CONFIG)
        cache.access(0)
        cache.reset()
        assert not cache.contains(0)

    def test_set_isolation(self):
        # addresses in different sets never evict each other
        config = CacheConfig(size=4 * 32, assoc=1, block_size=32)
        cache = Cache(config)
        cache.access(0)      # set 0
        cache.access(32)     # set 1
        cache.access(64)     # set 2
        assert cache.contains(0) and cache.contains(32)


class TestTraceSimulation:
    def test_per_pc_attribution(self):
        trace = trace_of([(100, 0, LOAD), (100, 0, LOAD),
                          (200, 4096, LOAD)])
        stats = simulate_trace(trace, BASELINE_CONFIG)
        assert stats.load_accesses == {100: 2, 200: 1}
        assert stats.load_misses == {100: 1, 200: 1}

    def test_store_allocation_serves_later_load(self):
        trace = trace_of([(1, 64, STORE), (2, 64, LOAD)])
        stats = simulate_trace(trace, BASELINE_CONFIG)
        assert stats.load_misses.get(2, 0) == 0
        assert stats.store_misses == {1: 1}

    def test_totals(self):
        trace = trace_of([(1, i * 64, LOAD) for i in range(10)])
        stats = simulate_trace(trace, BASELINE_CONFIG)
        assert stats.total_load_accesses == 10
        assert stats.total_load_misses == 10
        assert stats.miss_rate() == 1.0

    def test_loads_by_misses_sorted(self):
        trace = trace_of(
            [(1, i * 4096, LOAD) for i in range(4)]
            + [(2, 0x100000, LOAD)])
        stats = simulate_trace(trace, BASELINE_CONFIG)
        ranked = stats.loads_by_misses()
        assert ranked[0][0] == 1
        misses = [m for _, m in ranked]
        assert misses == sorted(misses, reverse=True)

    def test_misses_of_set(self):
        trace = trace_of([(1, 0, LOAD), (2, 4096, LOAD)])
        stats = simulate_trace(trace, BASELINE_CONFIG)
        assert stats.misses_of({1}) == 1
        assert stats.misses_of({1, 2}) == 2
        assert stats.misses_of(set()) == 0

    def test_capacity_effect(self):
        # Working set of 16KB misses in an 8KB cache but fits in 32KB.
        addrs = [i * 32 for i in range(512)]    # 16KB of blocks
        accesses = [(1, a, LOAD) for a in addrs] * 3
        small = simulate_trace(trace_of(accesses),
                               CacheConfig(8 * 1024, 4, 32))
        large = simulate_trace(trace_of(accesses),
                               CacheConfig(32 * 1024, 4, 32))
        assert small.total_load_misses > large.total_load_misses
        assert large.total_load_misses == 512   # cold misses only

    def test_associativity_resolves_conflicts(self):
        # Two blocks 8KB apart conflict direct-mapped, coexist 2-way.
        direct = CacheConfig(8 * 1024, 1, 32)
        twoway = CacheConfig(8 * 1024, 2, 32)
        accesses = [(1, 0, LOAD), (1, 8 * 1024, LOAD)] * 50
        conflicted = simulate_trace(trace_of(accesses), direct)
        resolved = simulate_trace(trace_of(accesses), twoway)
        assert conflicted.total_load_misses == 100
        assert resolved.total_load_misses == 2


# -- hypothesis invariants --------------------------------------------------

_addresses = st.lists(
    st.integers(min_value=0, max_value=1 << 20), min_size=1,
    max_size=300)


@given(_addresses)
@settings(max_examples=50, deadline=None)
def test_misses_bounded_by_accesses(addresses):
    trace = trace_of([(1, a, LOAD) for a in addresses])
    stats = simulate_trace(trace, CacheConfig(1024, 2, 32))
    assert 0 <= stats.total_load_misses <= len(addresses)
    blocks = {a // 32 for a in addresses}
    assert stats.total_load_misses >= min(len(blocks), 1)


@given(_addresses)
@settings(max_examples=50, deadline=None)
def test_misses_at_least_distinct_blocks_cold(addresses):
    """Cold misses: first touch of every block must miss."""
    trace = trace_of([(1, a, LOAD) for a in addresses])
    stats = simulate_trace(trace, CacheConfig(64 * 1024, 8, 32))
    blocks = {a // 32 for a in addresses}
    # A large cache never evicts within this footprint:
    assert stats.total_load_misses == len(blocks)


@given(_addresses)
@settings(max_examples=30, deadline=None)
def test_larger_cache_never_misses_more_lru(addresses):
    """LRU inclusion property along the size axis (same assoc scaling)."""
    trace = trace_of([(1, a, LOAD) for a in addresses])
    small = simulate_trace(trace, CacheConfig(1024, 32, 32))
    large = simulate_trace(trace, CacheConfig(2048, 64, 32))
    # Fully-associative LRU caches are inclusive: bigger never misses
    # more.
    assert large.total_load_misses <= small.total_load_misses


@given(_addresses)
@settings(max_examples=30, deadline=None)
def test_policies_agree_on_cold_start_misses(addresses):
    trace = trace_of([(1, a, LOAD) for a in addresses])
    distinct = len({a // 32 for a in addresses})
    for policy in ("lru", "fifo", "random"):
        stats = simulate_trace(
            trace, CacheConfig(1024, 2, 32, replacement=policy))
        # every distinct block cold-misses at least once, any policy
        assert stats.total_load_misses >= distinct
