"""Semantic analysis tests: typing rules, scoping, error reporting."""

import pytest

from repro.lang import astnodes as ast
from repro.lang.parser import parse
from repro.lang.sema import SemanticError, analyze, const_value
from repro.lang.types import FLOAT, INT, PointerType


def check(source):
    return analyze(parse(source))


def expr_of(source):
    """Type of the returned expression in `int main() { return E; }`."""
    unit = check(source)
    return unit.functions[-1].body.statements[-1].value.ty


class TestTyping:
    def test_int_arithmetic(self):
        assert expr_of("int main() { return 1 + 2; }") == INT

    def test_float_promotion_inserts_cast(self):
        unit = check("float f; int main() { f = f + 1; return 0; }")
        assign = unit.functions[0].body.statements[0]
        add = assign.value
        assert add.ty == FLOAT
        assert isinstance(add.right, ast.Cast)

    def test_assign_float_to_int_casts(self):
        unit = check("float f; int main() { int i; i = f; return i; }")
        assign = unit.functions[0].body.statements[1]
        assert isinstance(assign.value, ast.Cast)
        assert assign.value.target == INT

    def test_pointer_plus_int(self):
        ty = expr_of("int main(int a) { int *p; p = NULL; "
                     "return *(p + 1); }")
        assert ty == INT

    def test_pointer_difference_is_int(self):
        unit = check("int main() { int *p; int *q; p = NULL; q = NULL;"
                     " return p - q; }")

    def test_array_index_type(self):
        assert expr_of("int a[4]; int main() { return a[0]; }") == INT

    def test_member_types(self):
        src = ("struct p { int x; float y; };\n"
               "struct p g;\n"
               "int main() { return g.x; }")
        assert expr_of(src) == INT

    def test_arrow_through_pointer(self):
        src = ("struct n { int v; struct n *next; };\n"
               "struct n *h;\n"
               "int main() { return h->next->v; }")
        assert expr_of(src) == INT

    def test_call_result_type(self):
        src = "float f() { return 1.0; } int main() { return (int) f(); }"
        check(src)

    def test_comparison_yields_int(self):
        assert expr_of("int main() { return 1.5 < 2.5; }") == INT

    def test_address_of(self):
        src = "int main() { int x; return *(&x); }"
        check(src)

    def test_sizeof_value(self):
        src = ("struct n { int v; struct n *next; };\n"
               "int main() { return sizeof(struct n); }")
        unit = check(src)
        ret = unit.functions[0].body.statements[0]
        assert const_value(ret.value) == 8


class TestErrors:
    def err(self, source):
        with pytest.raises(SemanticError):
            check(source)

    def test_undefined_variable(self):
        self.err("int main() { return nope; }")

    def test_undefined_function(self):
        self.err("int main() { return nope(); }")

    def test_redeclared_local(self):
        self.err("int main() { int x; int x; return 0; }")

    def test_shadowing_rejected(self):
        self.err("int main() { int x; { int x; } return 0; }")

    def test_wrong_arity(self):
        self.err("int f(int a) { return a; } int main() { return f(); }")

    def test_deref_non_pointer(self):
        self.err("int main() { int x; return *x; }")

    def test_index_non_array(self):
        self.err("int main() { int x; return x[0]; }")

    def test_member_of_non_struct(self):
        self.err("int main() { int x; return x.f; }")

    def test_unknown_member(self):
        self.err("struct p { int x; }; struct p g; "
                 "int main() { return g.y; }")

    def test_arrow_on_value(self):
        self.err("struct p { int x; }; struct p g; "
                 "int main() { return g->x; }")

    def test_assign_to_rvalue(self):
        self.err("int main() { 1 = 2; return 0; }")

    def test_assign_to_array(self):
        self.err("int a[4]; int b[4]; int main() { a = b; return 0; }")

    def test_break_outside_loop(self):
        self.err("int main() { break; return 0; }")

    def test_return_value_from_void(self):
        self.err("void f() { return 1; } int main() { return 0; }")

    def test_missing_return_value(self):
        self.err("int main() { return; }")

    def test_void_variable(self):
        self.err("int main() { void v; return 0; }")

    def test_global_nonconst_initializer(self):
        self.err("int f(); int x = f();")

    def test_builtin_shadowing_rejected(self):
        self.err("int malloc(int n) { return n; }")

    def test_local_brace_initializer_rejected(self):
        self.err("int main() { int a[2] = {1, 2}; return 0; }")

    def test_modulo_on_float(self):
        self.err("int main() { return 1.5 % 2; }")

    def test_bitnot_on_float(self):
        self.err("int main() { return ~1.5; }")

    def test_global_redefined(self):
        self.err("int x; int x;")


class TestConstValue:
    def test_arithmetic(self):
        unit = parse("int x = 2 * 3 + 4;")
        assert const_value(unit.globals[0].init) == 10

    def test_shifts_and_masks(self):
        unit = parse("int x = (1 << 4) | 3;")
        assert const_value(unit.globals[0].init) == 19

    def test_unary(self):
        unit = parse("int x = -5;")
        assert const_value(unit.globals[0].init) == -5

    def test_division_truncates(self):
        unit = parse("int x = -7 / 2;")
        assert const_value(unit.globals[0].init) == -3

    def test_non_constant_is_none(self):
        unit = parse("int main() { return x; }")
        ret = unit.functions[0].body.statements[0]
        assert const_value(ret.value) is None
