"""Tests for the profiling extensions: sampled profiles, stall-aware
hotspots, and the two-level cache hierarchy."""

import pytest

from repro.cache.config import BASELINE_CONFIG, CacheConfig
from repro.cache.hierarchy import (
    DEFAULT_HIERARCHY, HierarchyConfig, simulate_trace_hierarchy,
)
from repro.cache.model import simulate_trace
from repro.machine.trace import LOAD, STORE, MemoryTrace
from repro.profiling.profile import BlockProfile
from repro.profiling.sampling import sampled_profile


@pytest.fixture(scope="module")
def profile(sample_program, sample_result):
    return BlockProfile.from_execution(sample_program, sample_result)


@pytest.fixture(scope="module")
def stats(sample_result):
    return simulate_trace(sample_result.trace, BASELINE_CONFIG)


class TestSampling:
    def test_rate_one_is_identity(self, profile):
        assert sampled_profile(profile, 1.0) is profile

    def test_invalid_rates_rejected(self, profile):
        for rate in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                sampled_profile(profile, rate)

    def test_deterministic(self, profile):
        first = sampled_profile(profile, 0.1, seed=3)
        second = sampled_profile(profile, 0.1, seed=3)
        assert first.block_counts == second.block_counts

    def test_counts_rescaled_to_same_magnitude(self, profile):
        thinned = sampled_profile(profile, 0.25)
        total = sum(profile.block_counts.values())
        thinned_total = sum(thinned.block_counts.values())
        assert thinned_total == pytest.approx(total, rel=0.35)

    def test_hot_blocks_survive_sampling(self, profile):
        thinned = sampled_profile(profile, 0.2)
        hot_full = profile.hotspot_blocks()
        hot_thin = thinned.hotspot_blocks()
        # the dominant blocks are sampled reliably
        top = sorted(profile.block_cycles.items(),
                     key=lambda kv: -kv[1])[:3]
        for leader, _ in top:
            assert leader in hot_full
            assert leader in hot_thin

    def test_zero_count_blocks_stay_zero(self, profile):
        thinned = sampled_profile(profile, 0.5)
        for leader, count in profile.block_counts.items():
            if count == 0:
                assert thinned.block_counts[leader] == 0


class TestStallAwareHotspots:
    def test_cycles_increase_with_misses(self, profile, stats):
        plain = profile.block_cycles
        stall = profile.stall_aware_cycles(stats.load_misses,
                                           penalty=20)
        assert sum(stall.values()) == sum(plain.values()) \
            + 20 * stats.total_load_misses

    def test_zero_penalty_matches_plain(self, profile, stats):
        stall = profile.stall_aware_cycles(stats.load_misses, penalty=0)
        assert stall == profile.block_cycles

    def test_miss_heavy_block_promoted(self, profile, stats):
        heavy_pc = max(stats.load_misses, key=stats.load_misses.get)
        hot = profile.hotspot_loads_stall_aware(stats.load_misses,
                                                penalty=100)
        assert heavy_pc in hot

    def test_stall_aware_coverage_at_least_plain(self, profile, stats):
        from repro.metrics.measures import coverage
        plain = coverage(profile.hotspot_loads(), stats.load_misses)
        aware = coverage(
            profile.hotspot_loads_stall_aware(stats.load_misses,
                                              penalty=200),
            stats.load_misses)
        assert aware >= plain - 0.05


class TestHierarchy:
    def make_trace(self):
        trace = MemoryTrace()
        # stream 64KB: misses L1 (8KB) on re-walk but fits L2 (128KB)
        for repeat in range(3):
            for block in range(2048):
                trace.append(1, block * 32, LOAD)
        return trace

    def test_l2_filters_capacity_misses(self):
        stats = simulate_trace_hierarchy(self.make_trace())
        assert stats.total_l1_load_misses > stats.total_l2_load_misses
        # second and third sweeps hit in L2: only cold L2 misses remain
        assert stats.total_l2_load_misses == 1024   # 64KB / 64B blocks

    def test_l2_misses_subset_of_l1(self):
        stats = simulate_trace_hierarchy(self.make_trace())
        for pc, misses in stats.l2_load_misses.items():
            assert misses <= stats.l1_load_misses.get(pc, 0)

    def test_l1_matches_single_level_model(self, sample_result):
        single = simulate_trace(sample_result.trace, BASELINE_CONFIG)
        hierarchy = simulate_trace_hierarchy(
            sample_result.trace,
            HierarchyConfig(l1=BASELINE_CONFIG,
                            l2=CacheConfig(256 * 1024, 8, 32)))
        assert hierarchy.l1_load_misses == single.load_misses

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            HierarchyConfig(l1=CacheConfig(64 * 1024, 4, 32),
                            l2=CacheConfig(8 * 1024, 4, 32))
        with pytest.raises(ValueError):
            HierarchyConfig(l1=CacheConfig(8 * 1024, 4, 64),
                            l2=CacheConfig(128 * 1024, 8, 32))

    def test_l2_coverage_metric(self):
        stats = simulate_trace_hierarchy(self.make_trace())
        assert stats.l2_miss_coverage({1}) == 1.0
        assert stats.l2_miss_coverage(set()) == 0.0

    def test_stores_counted(self):
        trace = MemoryTrace()
        trace.append(5, 0, STORE)
        trace.append(6, 0, LOAD)
        stats = simulate_trace_hierarchy(trace)
        assert stats.store_accesses == 1
        assert stats.l1_store_misses == 1
        assert stats.l1_load_misses.get(6, 0) == 0  # filled by store

    def test_describe(self):
        assert "L1[" in DEFAULT_HIERARCHY.describe()
        assert "L2[" in DEFAULT_HIERARCHY.describe()
