"""Basic-block profiling and combined-scheme tests."""

import pytest

from repro.heuristic.classifier import DelinquencyClassifier
from repro.metrics.measures import coverage
from repro.patterns.builder import build_load_infos
from repro.profiling.combined import combined_delta, \
    random_hotspot_coverage
from repro.profiling.profile import BlockProfile


@pytest.fixture(scope="module")
def profile(sample_program, sample_result):
    return BlockProfile.from_execution(sample_program, sample_result)


class TestBlockProfile:
    def test_total_cycles_match_steps(self, profile, sample_result):
        assert profile.total_cycles == sample_result.steps

    def test_hotspots_cover_cycle_share(self, profile):
        hot = profile.hotspot_blocks(0.9)
        cycles = profile.block_cycles
        covered = sum(cycles[leader] for leader in hot)
        assert covered >= 0.9 * profile.total_cycles

    def test_hotspots_are_minimal_greedy(self, profile):
        hot = profile.hotspot_blocks(0.9)
        cycles = profile.block_cycles
        # dropping the smallest chosen block must fall below the target
        smallest = min(hot, key=lambda leader: cycles[leader])
        covered = sum(cycles[leader] for leader in hot
                      if leader != smallest)
        assert covered < 0.9 * profile.total_cycles

    def test_hotspot_loads_subset_of_loads(self, profile,
                                           sample_program):
        loads = set(sample_program.load_addresses())
        assert profile.hotspot_loads() <= loads

    def test_share_one_selects_everything_executed(self, profile):
        everything = profile.hotspot_blocks(1.0)
        executed = {leader for leader, count
                    in profile.block_counts.items() if count}
        assert everything == executed

    def test_load_exec_counts_complete(self, profile, sample_program):
        counts = profile.load_exec_counts()
        assert set(counts) == set(sample_program.load_addresses())
        assert all(count >= 0 for count in counts.values())

    def test_loop_loads_execute_often(self, profile, sample_program):
        counts = profile.load_exec_counts()
        assert max(counts.values()) >= 40   # the 40-iteration loops


class TestCombined:
    @pytest.fixture()
    def setup(self, sample_program, sample_result, profile):
        infos = build_load_infos(sample_program)
        heuristic = DelinquencyClassifier().classify(
            infos, profile.load_exec_counts(), profile.hotspot_loads())
        return profile.hotspot_loads(), heuristic

    def test_eps_zero_is_intersection(self, setup):
        delta_p, heuristic = setup
        combined = combined_delta(delta_p, heuristic, 0.0)
        assert combined == delta_p & heuristic.delinquent_set

    def test_eps_monotone(self, setup):
        delta_p, heuristic = setup
        previous = None
        for eps in (0.0, 0.25, 0.5, 1.0):
            combined = combined_delta(delta_p, heuristic, eps)
            if previous is not None:
                assert previous <= combined
            previous = combined

    def test_eps_one_is_full_heuristic_union(self, setup):
        delta_p, heuristic = setup
        combined = combined_delta(delta_p, heuristic, 1.0)
        assert combined == (delta_p & heuristic.delinquent_set) \
            | (heuristic.delinquent_set
               - (delta_p & heuristic.delinquent_set))

    def test_eps_adds_highest_scoring_first(self, setup):
        delta_p, heuristic = setup
        leftovers = heuristic.delinquent_set \
            - (delta_p & heuristic.delinquent_set)
        if len(leftovers) < 2:
            pytest.skip("not enough leftover loads in sample")
        combined = combined_delta(delta_p, heuristic, 0.5)
        added = combined - (delta_p & heuristic.delinquent_set)
        scores = heuristic.scores()
        if added and (leftovers - added):
            assert min(scores[a] for a in added) >= \
                max(scores[a] for a in (leftovers - added)) - 1e-9


class TestRandomBaseline:
    MISSES = {1: 100, 2: 0, 3: 0, 4: 0}

    def test_deterministic_with_seed(self):
        pool = {1, 2, 3, 4}
        first = random_hotspot_coverage(pool, 2, self.MISSES, seed=1)
        second = random_hotspot_coverage(pool, 2, self.MISSES, seed=1)
        assert first == second

    def test_full_sample_covers_everything(self):
        pool = {1, 2, 3, 4}
        assert random_hotspot_coverage(pool, 4, self.MISSES) == 1.0

    def test_empty_pool(self):
        assert random_hotspot_coverage(set(), 3, self.MISSES) == 0.0

    def test_size_clamped_to_pool(self):
        pool = {1, 2}
        value = random_hotspot_coverage(pool, 99, self.MISSES)
        assert value == coverage(pool, self.MISSES)


class TestObservedLoadExecCounts:
    def test_matches_result_load_exec_counts(self, sample_program):
        from repro.machine.simulator import Machine
        from repro.profiling.profile import observed_load_exec_counts
        machine = Machine(sample_program, trace_memory=True)
        result = machine.run()
        observed = observed_load_exec_counts(machine.trace)
        expected = {pc: count for pc, count in
                    result.load_exec_counts(sample_program).items()
                    if count}
        assert observed == expected

    def test_empty_trace(self):
        from repro.machine.trace import MemoryTrace
        from repro.profiling.profile import observed_load_exec_counts
        assert observed_load_exec_counts(MemoryTrace()) == {}
