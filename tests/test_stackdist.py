"""Stack-distance sweep-engine tests.

:func:`simulate_sweep` must be observably indistinguishable from
per-config :func:`simulate_trace` — same dict contents, same prefetch
fills — whichever route (histogram or replay fallback) serves a config.
These tests pin that contract over randomized traces, every registry
workload, and the profile store's disk/extension/corruption behavior,
plus the shared :class:`BoundedCache` and a randomized hierarchy
multi-replay equivalence check.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.cache.stackdist as stackdist
from repro.cache.config import BASELINE_CONFIG, CacheConfig
from repro.cache.hierarchy import (HierarchyConfig,
                                   simulate_trace_hierarchy,
                                   simulate_trace_hierarchy_multi)
from repro.cache.lru import BoundedCache
from repro.cache.model import (_REPLAY_CACHE, simulate_trace,
                               simulate_trace_multi)
from repro.cache.stackdist import (DEFAULT_CAPACITY, ProfileStore,
                                   simulate_sweep, trace_digest)
from repro.compiler.driver import compile_source
from repro.machine.simulator import Machine
from repro.machine.trace import LOAD, PREFETCH, STORE, MemoryTrace
from repro.pipeline.session import Session
from repro.store import TraceStore, trace_key
from repro.workloads.registry import get, names

EQUIVALENCE_SCALE = 0.01

#: A size x associativity grid (including non-power-of-two way counts
#: and a second block size) plus both non-LRU policies: every route
#: through the dispatcher.
SWEEP_CONFIGS = (
    [CacheConfig(size=s * a * 32, assoc=a, block_size=32)
     for s in (8, 32, 128) for a in (1, 2, 3, 4, 6, 8)]
    + [CacheConfig(size=s * a * 64, assoc=a, block_size=64)
       for s in (16, 64) for a in (2, 4)]
    + [CacheConfig(1024, 2, 32, replacement="fifo"),
       CacheConfig(1024, 2, 32, replacement="random")]
)


def trace_of(accesses):
    trace = MemoryTrace()
    for pc, addr, kind in accesses:
        trace.append(pc, addr, kind)
    return trace


def stats_key(stats):
    """Every observable field of a CacheStats, for bit-exact compares."""
    return (stats.config, stats.load_accesses, stats.load_misses,
            stats.store_accesses, stats.store_misses,
            stats.prefetch_ops, stats.prefetch_fills)


def assert_sweep_matches(trace, configs, store=None):
    results = simulate_sweep(trace, configs, store=store)
    assert len(results) == len(configs)
    for config, stats in zip(configs, results):
        assert stats_key(stats) == stats_key(
            simulate_trace(trace, config)), config


@pytest.fixture(scope="module")
def workload_trace():
    source = get("129.compress").generate("input1", scale=0.03)
    return Machine(compile_source(source)).run().trace


# -- equivalence -------------------------------------------------------

class TestSweepEquivalence:
    def test_empty_config_list(self):
        assert simulate_sweep(trace_of([]), []) == []

    def test_empty_trace(self):
        assert_sweep_matches(trace_of([]), SWEEP_CONFIGS,
                             store=ProfileStore())

    def test_mixed_kinds_bit_identical(self):
        trace = trace_of([
            (4, 0, LOAD), (8, 64, STORE), (4, 0, LOAD),
            (12, 4096, PREFETCH), (16, 4096, LOAD), (8, 128, STORE),
            (20, 8192, LOAD), (12, 12288, PREFETCH), (4, 32, LOAD),
        ])
        assert_sweep_matches(trace, SWEEP_CONFIGS, store=ProfileStore())

    def test_duplicate_configs(self):
        config = CacheConfig(2048, 4, 32)
        trace = trace_of([(4, a * 32, LOAD) for a in range(400)] * 2)
        one, two, _ = simulate_sweep(
            trace, [config, config, CacheConfig(4096, 8, 32)],
            store=ProfileStore())
        assert stats_key(one) == stats_key(two)
        assert stats_key(one) == stats_key(simulate_trace(trace, config))

    @settings(max_examples=25, deadline=None)
    @given(st.lists(
        st.tuples(st.sampled_from([4, 8, 12, 16]),
                  st.integers(min_value=0, max_value=1 << 14),
                  st.just(0)),
        max_size=200))
    def test_random_traces_bit_identical(self, accesses):
        # one kind per PC (the machine invariant): derive it from the PC
        accesses = [(pc, addr, (LOAD, STORE, PREFETCH)[pc % 3])
                    for pc, addr, _ in accesses]
        assert_sweep_matches(trace_of(accesses), SWEEP_CONFIGS,
                             store=ProfileStore())

    @pytest.mark.parametrize("name", names())
    def test_workload_bit_identical(self, name):
        """The full 18-workload suite agrees bit for bit."""
        source = get(name).generate("input1", scale=EQUIVALENCE_SCALE)
        trace = Machine(compile_source(source)).run().trace
        configs = [CacheConfig(size=s * a * 32, assoc=a, block_size=32)
                   for s in (64, 256) for a in (2, 4, 12)] \
            + [CacheConfig(8192, 4, 32, replacement="fifo"),
               CacheConfig(8192, 4, 32, replacement="random")]
        assert_sweep_matches(trace, configs, store=ProfileStore())


# -- routing and profile reuse ----------------------------------------

class TestRouting:
    def _count_passes(self, monkeypatch):
        calls = []
        original = stackdist.compute_groups

        def counting(trace, specs):
            calls.append(tuple(specs))
            return original(trace, specs)

        monkeypatch.setattr(stackdist, "compute_groups", counting)
        return calls

    def test_lone_config_uses_replay(self, workload_trace, monkeypatch):
        calls = self._count_passes(monkeypatch)
        store = ProfileStore()
        assert_sweep_matches(workload_trace, [BASELINE_CONFIG],
                             store=store)
        assert not calls            # no profile built for one geometry
        assert not store._memory._entries

    def test_resweep_skips_the_trace(self, workload_trace, monkeypatch):
        calls = self._count_passes(monkeypatch)
        store = ProfileStore()
        grid = [CacheConfig(size=64 * a * 32, assoc=a, block_size=32)
                for a in (2, 4, 8)]
        assert_sweep_matches(workload_trace, grid, store=store)
        assert len(calls) == 1
        # new associativities, same set mapping: histograms only
        refine = [CacheConfig(size=64 * a * 32, assoc=a, block_size=32)
                  for a in (1, 3, 6, 12, 16)]
        assert_sweep_matches(workload_trace, refine, store=store)
        assert len(calls) == 1
        # a lone config covered by the cached profile also skips it
        assert_sweep_matches(workload_trace, [grid[0]], store=store)
        assert len(calls) == 1

    def test_extension_adds_only_missing_mappings(self, workload_trace,
                                                  monkeypatch):
        calls = self._count_passes(monkeypatch)
        store = ProfileStore()
        assert_sweep_matches(
            workload_trace,
            [CacheConfig(size=64 * a * 32, assoc=a, block_size=32)
             for a in (2, 4)], store=store)
        # 128-set geometries are new; the 64-set ones are cached
        assert_sweep_matches(
            workload_trace,
            [CacheConfig(size=s * a * 32, assoc=a, block_size=32)
             for s in (64, 128) for a in (2, 8)], store=store)
        assert [specs[0][1] for specs in calls] == [64, 128]

    def test_capacity_bump_recomputes_exactly(self, workload_trace):
        store = ProfileStore()
        shallow = [CacheConfig(size=64 * a * 32, assoc=a, block_size=32)
                   for a in (2, 4)]
        assert_sweep_matches(workload_trace, shallow, store=store)
        deep = [CacheConfig(size=64 * a * 32, assoc=a, block_size=32)
                for a in (24, 32)]
        assert_sweep_matches(workload_trace, deep, store=store)
        profile = store.get(trace_digest(workload_trace), 32)
        assert profile.capacity >= 32

    def test_wide_assoc_falls_back(self, monkeypatch):
        calls = self._count_passes(monkeypatch)
        trace = trace_of([(4, a * 32, LOAD) for a in range(100)])
        wide = CacheConfig(size=2 * 2048 * 32, assoc=2048, block_size=32)
        assert_sweep_matches(trace, [wide, wide], store=ProfileStore())
        assert not calls


# -- the profile store -------------------------------------------------

class TestProfileStore:
    GRID = [CacheConfig(size=64 * a * 32, assoc=a, block_size=32)
            for a in (2, 4, 8)]

    def test_disk_round_trip(self, workload_trace, tmp_path,
                             monkeypatch):
        writer = ProfileStore(disk_dir=tmp_path)
        assert_sweep_matches(workload_trace, self.GRID, store=writer)
        assert list(tmp_path.glob("sd-*-bs32.json"))

        calls = []
        original = stackdist.compute_groups
        monkeypatch.setattr(
            stackdist, "compute_groups",
            lambda trace, specs: (calls.append(1),
                                  original(trace, specs))[1])
        reader = ProfileStore(disk_dir=tmp_path)   # cold memory tier
        assert_sweep_matches(workload_trace, self.GRID, store=reader)
        assert not calls            # served entirely from disk

    def test_corrupt_entry_recomputed(self, workload_trace, tmp_path):
        store = ProfileStore(disk_dir=tmp_path)
        assert_sweep_matches(workload_trace, self.GRID, store=store)
        [path] = tmp_path.glob("sd-*-bs32.json")
        path.write_text("{not json")
        fresh = ProfileStore(disk_dir=tmp_path)
        assert_sweep_matches(workload_trace, self.GRID, store=fresh)

    def test_wrong_schema_version_recomputed(self, workload_trace,
                                             tmp_path):
        store = ProfileStore(disk_dir=tmp_path)
        assert_sweep_matches(workload_trace, self.GRID, store=store)
        [path] = tmp_path.glob("sd-*-bs32.json")
        payload = json.loads(path.read_text())
        payload["version"] = 99
        path.write_text(json.dumps(payload))
        fresh = ProfileStore(disk_dir=tmp_path)
        assert fresh.get(trace_digest(workload_trace), 32) is None

    def test_memory_only_store_writes_nothing(self, workload_trace,
                                              tmp_path):
        store = ProfileStore(disk_dir=None)
        assert_sweep_matches(workload_trace, self.GRID, store=store)
        assert not list(tmp_path.iterdir())

    def test_default_capacity_floor(self, workload_trace):
        store = ProfileStore()
        assert_sweep_matches(workload_trace, self.GRID, store=store)
        profile = store.get(trace_digest(workload_trace), 32)
        assert profile.capacity == DEFAULT_CAPACITY


class TestTraceDigest:
    def test_memoized_and_length_guarded(self):
        trace = trace_of([(4, 0, LOAD)])
        first = trace_digest(trace)
        assert trace_digest(trace) == first
        trace.append(4, 32, LOAD)
        assert trace_digest(trace) != first

    def test_content_addressed(self):
        one = trace_of([(4, 0, LOAD), (8, 64, STORE)])
        two = trace_of([(4, 0, LOAD), (8, 64, STORE)])
        assert trace_digest(one) == trace_digest(two)
        assert trace_digest(one) != trace_digest(
            trace_of([(4, 0, LOAD), (8, 96, STORE)]))


# -- the shared bounded cache -----------------------------------------

class TestBoundedCache:
    def test_evicts_oldest_only(self):
        cache = BoundedCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert "a" not in cache
        assert cache.get("b") == 2 and cache.get("c") == 3
        assert (len(cache), cache.evictions) == (2, 1)

    def test_get_refreshes_recency(self):
        cache = BoundedCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        cache.put("c", 3)
        assert "a" in cache and "b" not in cache

    def test_get_default(self):
        assert BoundedCache(1).get("missing", 42) == 42

    def test_replay_cache_is_bounded(self):
        """The codegen cache evicts one entry at a time, not wholesale."""
        trace = trace_of([(4, 0, LOAD)])
        _REPLAY_CACHE.clear()
        for assoc in range(1, 70):
            simulate_trace_multi(trace, [
                CacheConfig(assoc * 1024, assoc, 32),
                CacheConfig(assoc * 2048, assoc, 64),
            ])
        assert len(_REPLAY_CACHE) == _REPLAY_CACHE.capacity
        assert _REPLAY_CACHE.evictions >= 5


# -- hierarchy multi-replay (randomized equivalence) -------------------

class TestHierarchyRandomized:
    CONFIGS = [
        HierarchyConfig(l1=CacheConfig(1024, 2, 32),
                        l2=CacheConfig(16 * 1024, 4, 64)),
        HierarchyConfig(
            l1=CacheConfig(1024, 2, 32, replacement="fifo"),
            l2=CacheConfig(32 * 1024, 8, 64, replacement="random")),
    ]

    @settings(max_examples=20, deadline=None)
    @given(st.lists(
        st.tuples(st.sampled_from([4, 8, 12]),
                  st.integers(min_value=0, max_value=1 << 14)),
        max_size=150))
    def test_random_traces_bit_identical(self, accesses):
        trace = trace_of([(pc, addr, LOAD if pc % 2 else STORE)
                          for pc, addr in accesses])
        results = simulate_trace_hierarchy_multi(trace, self.CONFIGS)
        for config, multi in zip(self.CONFIGS, results):
            single = simulate_trace_hierarchy(trace, config)
            assert (multi.load_accesses, multi.l1_load_misses,
                    multi.l2_load_misses, multi.store_accesses,
                    multi.l1_store_misses, multi.l2_store_misses) == \
                   (single.load_accesses, single.l1_load_misses,
                    single.l2_load_misses, single.store_accesses,
                    single.l1_store_misses, single.l2_store_misses)


# -- pipeline integration ---------------------------------------------

class TestSessionIntegration:
    GRID = tuple(CacheConfig(size=64 * a * 32, assoc=a, block_size=32)
                 for a in (2, 4, 8))

    def test_stats_multi_sweep_matches_reference(self, tmp_path):
        session = Session(scale=0.03, cache_dir=tmp_path)
        sweep = session.stats_multi("129.compress", configs=self.GRID)
        # the single executed run streamed into the trace store
        store = TraceStore(tmp_path / "traces")
        trace = store.open(trace_key(session.source("129.compress"),
                                     False, session.max_steps))
        assert trace is not None
        for config, stats in zip(self.GRID, sweep):
            assert stats_key(stats) == stats_key(
                simulate_trace(trace, config))
        # the profile landed next to the session's disk cache
        assert list((tmp_path / "stackdist").glob("sd-*.json"))

    def test_no_disk_cache_writes_no_profiles(self, tmp_path):
        session = Session(scale=0.03, cache_dir=tmp_path,
                          use_disk_cache=False)
        session.stats_multi("129.compress", configs=self.GRID)
        assert not any(tmp_path.iterdir())
