"""Machine simulator tests: arithmetic semantics, memory, control,
syscalls, floats, block counting — including hypothesis checks against
Python reference semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm.assembler import assemble
from repro.machine.errors import MachineError, StepLimitExceeded
from repro.machine.simulator import (
    Machine, bits_to_float, float_to_bits, run_program,
)

WORD = 0xFFFF_FFFF


def run_asm(body: str, **kwargs):
    """Assemble a main-only program whose exit code is $v0 of main."""
    source = (".text\n.ent __start\n__start:\njal main\nmove $a0, $v0\n"
              "li $v0, 10\nsyscall\n.end __start\n"
              ".ent main\nmain:\n" + body + "\njr $ra\n.end main\n")
    return run_program(assemble(source), **kwargs)


def exit_of(body: str, **kwargs) -> int:
    return run_asm(body, **kwargs).exit_code


class TestIntegerArithmetic:
    def test_addu_wraps(self):
        assert exit_of("li $t0, 0x7fffffff\naddiu $t0, $t0, 1\n"
                       "move $v0, $t0") == -0x80000000

    def test_subu(self):
        assert exit_of("li $t0, 5\nli $t1, 9\nsubu $v0, $t0, $t1") == -4

    def test_mul_signed(self):
        assert exit_of("li $t0, -3\nli $t1, 7\nmul $v0, $t0, $t1") == -21

    def test_div_truncates_toward_zero(self):
        assert exit_of("li $t0, -7\nli $t1, 2\ndiv $v0, $t0, $t1") == -3
        assert exit_of("li $t0, 7\nli $t1, -2\ndiv $v0, $t0, $t1") == -3

    def test_div_by_zero_is_zero(self):
        assert exit_of("li $t0, 7\nli $t1, 0\ndiv $v0, $t0, $t1") == 0

    def test_rem_sign_follows_numerator(self):
        assert exit_of("li $t0, -7\nli $t1, 2\nrem $v0, $t0, $t1") == -1
        assert exit_of("li $t0, 7\nli $t1, -2\nrem $v0, $t0, $t1") == 1

    def test_logic_ops(self):
        assert exit_of("li $t0, 12\nli $t1, 10\nand $v0, $t0, $t1") == 8
        assert exit_of("li $t0, 12\nli $t1, 10\nor $v0, $t0, $t1") == 14
        assert exit_of("li $t0, 12\nli $t1, 10\nxor $v0, $t0, $t1") == 6

    def test_nor(self):
        assert exit_of("li $t0, 0\nli $t1, 0\nnor $v0, $t0, $t1") == -1

    def test_slt_signed_vs_sltu(self):
        assert exit_of("li $t0, -1\nli $t1, 1\nslt $v0, $t0, $t1") == 1
        assert exit_of("li $t0, -1\nli $t1, 1\nsltu $v0, $t0, $t1") == 0

    def test_shifts(self):
        assert exit_of("li $t0, 1\nsll $v0, $t0, 5") == 32
        assert exit_of("li $t0, -32\nsra $v0, $t0, 2") == -8
        assert exit_of("li $t0, -32\nsrl $v0, $t0, 28") == 15

    def test_variable_shifts(self):
        assert exit_of("li $t0, 3\nli $t1, 2\nsllv $v0, $t1, $t0") == 12
        assert exit_of("li $t0, 2\nli $t1, -32\nsrav $v0, $t0, $t1") == -8

    def test_zero_register_immutable(self):
        assert exit_of("li $t0, 7\naddu $zero, $t0, $t0\n"
                       "move $v0, $zero") == 0

    def test_lui(self):
        assert exit_of("lui $v0, 2") == 0x20000


class TestMemory:
    def test_word_store_load(self):
        assert exit_of("li $t0, 1234\nsw $t0, -8($sp)\n"
                       "lw $v0, -8($sp)") == 1234

    def test_byte_store_load_signed(self):
        assert exit_of("li $t0, 0xFF\nsb $t0, -4($sp)\n"
                       "lb $v0, -4($sp)") == -1

    def test_byte_load_unsigned(self):
        assert exit_of("li $t0, 0xFF\nsb $t0, -4($sp)\n"
                       "lbu $v0, -4($sp)") == 255

    def test_half_store_load(self):
        assert exit_of("li $t0, -2\nsh $t0, -4($sp)\n"
                       "lh $v0, -4($sp)") == -2
        assert exit_of("li $t0, -2\nsh $t0, -4($sp)\n"
                       "lhu $v0, -4($sp)") == 0xFFFE

    def test_byte_within_word_little_endian(self):
        body = ("li $t0, 0x04030201\nsw $t0, -8($sp)\n"
                "lbu $v0, -7($sp)")
        assert exit_of(body) == 2

    def test_byte_store_preserves_neighbours(self):
        body = ("li $t0, 0x04030201\nsw $t0, -8($sp)\n"
                "li $t1, 0xAA\nsb $t1, -7($sp)\n"
                "lw $v0, -8($sp)")
        assert exit_of(body) == 0x0403AA01

    def test_uninitialized_memory_reads_zero(self):
        assert exit_of("lw $v0, -100($sp)") == 0

    def test_data_segment_initialised(self):
        source = (".data\nv: .word 77\n.text\n.ent __start\n__start:\n"
                  "lw $a0, v\nli $v0, 10\nsyscall\n.end __start\n")
        assert run_program(assemble(source)).exit_code == 77


class TestControlFlow:
    def test_loop_sum(self):
        body = ("li $t0, 0\nli $t1, 0\n"
                "loop: addu $t1, $t1, $t0\naddiu $t0, $t0, 1\n"
                "li $t2, 10\nblt $t0, $t2, loop\nmove $v0, $t1")
        assert exit_of(body) == sum(range(10))

    def test_beq_taken_and_not(self):
        assert exit_of("li $t0, 1\nli $t1, 1\nli $v0, 0\n"
                       "beq $t0, $t1, yes\nli $v0, 9\nyes:") == 0

    def test_regimm_branches(self):
        assert exit_of("li $t0, -1\nli $v0, 0\nbltz $t0, n\nli $v0, 9\n"
                       "n:") == 0
        assert exit_of("li $t0, 0\nli $v0, 0\nbgez $t0, n\nli $v0, 9\n"
                       "n:") == 0

    def test_call_and_return(self):
        source = (".text\n.ent __start\n__start:\njal main\n"
                  "move $a0, $v0\nli $v0, 10\nsyscall\n.end __start\n"
                  ".ent main\nmain:\naddiu $sp, $sp, -8\nsw $ra, 4($sp)\n"
                  "li $a0, 20\njal double\nlw $ra, 4($sp)\n"
                  "addiu $sp, $sp, 8\njr $ra\n.end main\n"
                  ".ent double\ndouble:\naddu $v0, $a0, $a0\njr $ra\n"
                  ".end double\n")
        assert run_program(assemble(source)).exit_code == 40

    def test_jr_to_bad_address_raises(self):
        with pytest.raises(MachineError):
            exit_of("li $t0, 0\njr $t0")

    def test_step_limit(self):
        with pytest.raises(StepLimitExceeded):
            exit_of("loop: b loop", max_steps=1000)


class TestSyscalls:
    def test_print_int(self):
        r = run_asm("li $a0, -5\nli $v0, 1\nsyscall\nli $v0, 0")
        assert r.output == [-5]

    def test_print_char(self):
        r = run_asm("li $a0, 65\nli $v0, 11\nsyscall\nli $v0, 0")
        assert r.output == [65]

    def test_read_int(self):
        r = run_asm("li $v0, 5\nsyscall", inputs=[42])
        assert r.exit_code == 42

    def test_read_int_empty_queue_gives_zero(self):
        r = run_asm("li $v0, 5\nsyscall")
        assert r.exit_code == 0

    def test_unknown_syscall_raises(self):
        with pytest.raises(MachineError):
            exit_of("li $v0, 999\nsyscall")


class TestFloats:
    def test_bits_roundtrip(self):
        for value in (0.0, 1.5, -2.25, 1e10, -1e-10):
            assert bits_to_float(float_to_bits(value)) == \
                pytest.approx(value, rel=1e-6)

    def test_fadd(self):
        body = (f"li $t0, {float_to_bits(1.5)}\n"
                f"li $t1, {float_to_bits(2.25)}\n"
                "fadd $t2, $t0, $t1\nftrunc $v0, $t2")
        assert exit_of(body) == 3

    def test_fdiv_by_zero_is_inf(self):
        body = (f"li $t0, {float_to_bits(1.0)}\n"
                "li $t1, 0\n"
                "fdiv $t2, $t0, $t1\n"
                f"li $t3, {float_to_bits(1e30)}\n"
                "flt $v0, $t3, $t2")
        assert exit_of(body) == 1

    def test_fcvt(self):
        body = ("li $t0, -7\nfcvt $t1, $t0\n"
                f"li $t2, {float_to_bits(-7.0)}\nfeq $v0, $t1, $t2")
        assert exit_of(body) == 1

    def test_ftrunc_truncates(self):
        body = (f"li $t0, {float_to_bits(-2.9)}\nftrunc $v0, $t0")
        assert exit_of(body) == -2

    def test_fneg(self):
        body = (f"li $t0, {float_to_bits(3.5)}\nfneg $t1, $t0\n"
                f"li $t2, {float_to_bits(-3.5)}\nfeq $v0, $t1, $t2")
        assert exit_of(body) == 1

    def test_float_compares(self):
        a, b = float_to_bits(1.0), float_to_bits(2.0)
        assert exit_of(f"li $t0, {a}\nli $t1, {b}\n"
                       "flt $v0, $t0, $t1") == 1
        assert exit_of(f"li $t0, {a}\nli $t1, {b}\n"
                       "fle $v0, $t1, $t0") == 0


class TestBlockCounting:
    def test_loop_block_count(self):
        r = run_asm("li $t0, 0\nli $t2, 7\n"
                    "loop: addiu $t0, $t0, 1\nblt $t0, $t2, loop\n"
                    "move $v0, $t0")
        assert r.exit_code == 7
        # the loop body block executed 7 times
        assert 7 in r.block_counts.values()

    def test_steps_match_block_sum(self, sample_program, sample_result):
        total = 0
        leaders = sorted(sample_result.block_counts)
        for pos, leader in enumerate(leaders):
            end = leaders[pos + 1] if pos + 1 < len(leaders) \
                else sample_program.text_end
            total += sample_result.block_counts[leader] \
                * ((end - leader) // 4)
        assert total == sample_result.steps

    def test_instruction_counts_cover_loads(self, sample_program,
                                            sample_result):
        counts = sample_result.load_exec_counts(sample_program)
        assert set(counts) == set(sample_program.load_addresses())


# -- hypothesis: ALU semantics match a Python reference --------------------

_i32 = st.integers(min_value=-(2**31), max_value=2**31 - 1)


def _as_signed(x):
    x &= WORD
    return x - ((x & 0x8000_0000) << 1)


@given(_i32, _i32)
@settings(max_examples=60, deadline=None)
def test_addu_matches_python(a, b):
    got = exit_of(f"li $t0, {a & WORD}\nli $t1, {b & WORD}\n"
                  "addu $v0, $t0, $t1")
    assert got == _as_signed(a + b)


@given(_i32, _i32)
@settings(max_examples=60, deadline=None)
def test_mul_matches_python(a, b):
    got = exit_of(f"li $t0, {a & WORD}\nli $t1, {b & WORD}\n"
                  "mul $v0, $t0, $t1")
    assert got == _as_signed(a * b)


@given(_i32, st.integers(min_value=0, max_value=31))
@settings(max_examples=60, deadline=None)
def test_sra_matches_python(a, sh):
    got = exit_of(f"li $t0, {a & WORD}\nsra $v0, $t0, {sh}")
    assert got == _as_signed(a >> sh)


@given(_i32, _i32)
@settings(max_examples=60, deadline=None)
def test_slt_matches_python(a, b):
    got = exit_of(f"li $t0, {a & WORD}\nli $t1, {b & WORD}\n"
                  "slt $v0, $t0, $t1")
    assert got == int(a < b)
