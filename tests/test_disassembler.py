"""Disassembler tests: listings and whole-program encode/decode."""

from repro.asm.assembler import assemble
from repro.asm.disassembler import (
    decode_image, disassemble, encode_program, roundtrip,
)

SRC = r"""
.data
v: .word 7
.text
.ent main
main:
    lw $t0, v
    addiu $t0, $t0, 1
    beqz $t0, main
    jal helper
    jr $ra
.end main
.ent helper
helper:
    jr $ra
.end helper
"""


class TestListing:
    def test_contains_labels(self):
        program = assemble(SRC)
        listing = disassemble(program)
        assert "<main>" in listing
        assert "<helper>" in listing

    def test_contains_addresses_and_words(self):
        program = assemble(SRC)
        listing = disassemble(program)
        assert f"{program.text_base:08x}:" in listing
        # every line with a colon has an 8-hex-digit encoded word
        body_lines = [l for l in listing.splitlines() if ":  " in l]
        assert len(body_lines) == len(program.instructions)

    def test_branch_target_annotated(self):
        program = assemble(SRC)
        listing = disassemble(program)
        assert "jal helper <helper>" in listing

    def test_without_encoding(self):
        program = assemble(SRC)
        listing = disassemble(program, with_encoding=False)
        assert "lw $t0" in listing


class TestRoundtrip:
    def test_whole_program(self):
        program = assemble(SRC)
        again = roundtrip(program)
        assert len(again) == len(program.instructions)
        for original, decoded in zip(program.instructions, again):
            assert decoded.mnemonic == original.mnemonic
            assert decoded.imm == original.imm

    def test_sample_program_roundtrips(self, sample_program):
        words = encode_program(sample_program)
        decoded = decode_image(words, sample_program.text_base)
        for original, got in zip(sample_program.instructions, decoded):
            assert got.mnemonic == original.mnemonic
            assert got.rd == original.rd
            assert got.rs == original.rs
            assert got.rt == original.rt
            assert got.imm == original.imm
            assert got.shamt == original.shamt
