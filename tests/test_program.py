"""Program-image helper tests."""

import pytest

from repro.asm.assembler import assemble
from repro.asm.program import DATA_BASE, TEXT_BASE

SRC = r"""
.data
x: .word 1
.text
.ent main
main:
    lw $t0, x
    jal helper
    jr $ra
.end main
.ent helper
helper:
    lb $t1, 0($t0)
    sw $t1, 4($sp)
    jr $ra
.end helper
"""


@pytest.fixture()
def program():
    return assemble(SRC)


class TestAddressing:
    def test_address_index_roundtrip(self, program):
        for index in range(len(program.instructions)):
            address = program.address_of(index)
            assert program.index_of(address) == index

    def test_index_of_rejects_nontext(self, program):
        with pytest.raises(ValueError):
            program.index_of(DATA_BASE)
        with pytest.raises(ValueError):
            program.index_of(TEXT_BASE + 2)   # misaligned
        with pytest.raises(ValueError):
            program.index_of(program.text_end)

    def test_instruction_at(self, program):
        assert program.instruction_at(TEXT_BASE).mnemonic == "lw"

    def test_addresses_iterates_text(self, program):
        addresses = list(program.addresses())
        assert addresses[0] == TEXT_BASE
        assert len(addresses) == len(program.instructions)


class TestSymbols:
    def test_labels_at(self, program):
        assert "main" in program.labels_at(program.symbols["main"])
        assert program.labels_at(TEXT_BASE + 4) == []

    def test_function_containing(self, program):
        helper_start = program.symbols["helper"]
        assert program.function_containing(helper_start) == "helper"
        assert program.function_containing(helper_start + 4) == "helper"
        assert program.function_containing(TEXT_BASE) == "main"

    def test_loads_iterator(self, program):
        loads = dict(program.loads())
        assert len(loads) == 2
        mnemonics = {i.mnemonic for i in loads.values()}
        assert mnemonics == {"lw", "lb"}

    def test_num_loads_excludes_stores(self, program):
        assert program.num_loads() == 2


class TestGeometry:
    def test_text_end(self, program):
        assert program.text_end == TEXT_BASE \
            + 4 * len(program.instructions)

    def test_data_segment(self, program):
        assert program.data_base == DATA_BASE
        assert program.data_end == DATA_BASE + len(program.data)

    def test_heap_page_aligned(self, program):
        assert program.heap_base % 0x1000 == 0
        assert program.heap_base >= program.data_end
