"""Trace store, chunk streaming, cache GC and the RSS bound."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cache.config import BASELINE_CONFIG, CacheConfig
from repro.cache.model import simulate_trace, simulate_trace_multi
from repro.cache.stackdist import ProfileStore, simulate_sweep
from repro.compiler.driver import compile_source
from repro.machine.simulator import Machine
from repro.machine.trace import (LOAD, PREFETCH, STORE, MemoryTrace,
                                 TraceChunk)
from repro.pipeline.session import Session
from repro.store import TraceStore, TraceStoreCorrupt, trace_key
from repro.store.gc import collect_garbage, parse_size, scan_entries

SRC = Path(__file__).resolve().parents[1] / "src"


def sawtooth_trace(rows: int = 1000) -> MemoryTrace:
    """Loads/stores/prefetches with alternating ascending/descending
    addresses, so the per-row deltas wrap around 32 bits.  The kind is
    a pure function of the pc (one-instruction-one-kind invariant)."""
    trace = MemoryTrace()
    for i in range(rows):
        pc = 0x1000 + (i % 7) * 4
        address = (0x8000 + i * 64) if i % 2 else (0x90000 - i * 4)
        trace.append(pc, address & 0xFFFF_FFFF, (i % 7) % 3)
    return trace


# -- chunk protocol ----------------------------------------------------

class TestChunkProtocol:
    def test_chunks_are_fixed_size_and_contiguous(self):
        trace = sawtooth_trace(1000)
        chunks = list(trace.chunks(64))
        assert [len(c) for c in chunks[:-1]] == [64] * 15
        assert len(chunks[-1]) == 1000 - 15 * 64
        assert [c.start for c in chunks] == [i * 64 for i in range(16)]
        rebuilt = MemoryTrace()
        for chunk in chunks:
            rebuilt.extend(chunk.pcs, chunk.addresses, chunk.kinds)
        assert rebuilt.pcs == trace.pcs
        assert rebuilt.addresses == trace.addresses
        assert rebuilt.kinds == trace.kinds

    def test_chunk_stream_is_reopenable(self):
        trace = sawtooth_trace(100)
        stream = trace.chunk_stream(17)
        first = sum(len(c) for c in stream)
        second = sum(len(c) for c in stream)
        assert first == second == 100

    def test_digest_is_chunk_boundary_independent(self):
        trace = sawtooth_trace(500)
        digests = {trace.chunk_stream(n).digest for n in (1, 7, 499,
                                                          500, 512)}
        assert digests == {trace.digest()}

    def test_digest_distinguishes_column_content(self):
        a, b = MemoryTrace(), MemoryTrace()
        a.append(1, 2, LOAD)
        b.append(2, 1, LOAD)
        assert a.digest() != b.digest()

    def test_chunk_kind_counts(self):
        chunk = next(sawtooth_trace(70).chunks(70))
        assert chunk.load_count + chunk.store_count \
            + chunk.prefetch_count == 70

    def test_kind_counts_single_pass_memo_invalidates(self):
        trace = sawtooth_trace(70)
        loads = trace.load_count
        assert loads == trace.kinds.count(LOAD)
        assert trace.store_count == trace.kinds.count(STORE)
        assert trace.prefetch_count == trace.kinds.count(PREFETCH)
        trace.append(0x2000, 0x100, LOAD)
        assert trace.load_count == loads + 1

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            list(sawtooth_trace(10).chunks(0))


# -- store round-trip --------------------------------------------------

class TestStoreRoundTrip:
    def roundtrip(self, trace: MemoryTrace, tmp_path: Path,
                  chunk_accesses: int = 64) -> MemoryTrace:
        store = TraceStore(tmp_path / "traces")
        meta = store.put_trace("k", trace,
                               chunk_accesses=chunk_accesses)
        assert meta["rows"] == len(trace)
        assert meta["digest"] == trace.digest()
        stream = store.open("k")
        assert stream.digest == trace.digest()
        rebuilt = MemoryTrace()
        for chunk in stream:
            rebuilt.extend(chunk.pcs, chunk.addresses, chunk.kinds)
        assert rebuilt.pcs == trace.pcs
        assert rebuilt.addresses == trace.addresses
        assert rebuilt.kinds == trace.kinds
        return rebuilt

    def test_empty_trace(self, tmp_path):
        self.roundtrip(MemoryTrace(), tmp_path)

    def test_sawtooth_delta_wraparound(self, tmp_path):
        self.roundtrip(sawtooth_trace(1000), tmp_path, 37)

    def test_single_row(self, tmp_path):
        trace = MemoryTrace()
        trace.append(4, 0xFFFF_FFFC, STORE)
        self.roundtrip(trace, tmp_path)

    def test_metadata_serves_access_counts_without_reads(self,
                                                         tmp_path):
        from repro.cache.model import source_access_counts
        trace = sawtooth_trace(300)
        store = TraceStore(tmp_path / "traces")
        store.put_trace("k", trace)
        stream = store.open("k")
        # clobbering the bin proves the counts come from the meta
        # sidecar alone, with no chunk decoding
        store._bin("k").write_bytes(b"garbage")
        assert source_access_counts(stream) \
            == source_access_counts(trace)
        assert stream.digest == trace.digest()

    def test_replay_equivalence_from_store(self, tmp_path):
        trace = sawtooth_trace(2000)
        store = TraceStore(tmp_path / "traces")
        store.put_trace("k", trace, chunk_accesses=129)
        configs = [CacheConfig(size=1024, assoc=2, block_size=32),
                   CacheConfig(size=512, assoc=1, block_size=16,
                               replacement="fifo")]
        assert simulate_trace_multi(store.open("k"), configs) \
            == simulate_trace_multi(trace, configs)
        profile_store = ProfileStore()
        assert simulate_sweep(store.open("k"), configs,
                              store=profile_store) \
            == simulate_sweep(trace, configs, store=ProfileStore())

    def test_block_bursts_straddle_chunk_boundaries(self, tmp_path):
        """The blocks engine appends whole loop bursts per call; a tiny
        chunk budget forces every burst to straddle chunk boundaries
        and the streamed store content must still be byte-identical."""
        source = """
        int a[256];
        int main() {
            int i; int j; int s;
            s = 0;
            for (j = 0; j < 8; j = j + 1)
                for (i = 0; i < 256; i = i + 1) {
                    a[i] = a[i] + j;
                    s = s + a[i];
                }
            return s & 127;
        }
        """
        program = compile_source(source)
        reference = Machine(program, engine="blocks").run()
        store = TraceStore(tmp_path / "traces")
        writer = store.writer("k", chunk_accesses=16)
        streamed = Machine(program, engine="blocks").run_streaming(
            writer, chunk_accesses=16)
        writer.close(block_counts=streamed.block_counts,
                     steps=streamed.steps)
        assert streamed.steps == reference.steps
        rebuilt = MemoryTrace()
        for chunk in store.open("k"):
            assert chunk.start == len(rebuilt)
            rebuilt.extend(chunk.pcs, chunk.addresses, chunk.kinds)
        assert rebuilt.pcs == reference.trace.pcs
        assert rebuilt.addresses == reference.trace.addresses
        assert rebuilt.kinds == reference.trace.kinds

    def test_abort_leaves_no_entry(self, tmp_path):
        store = TraceStore(tmp_path / "traces")
        writer = store.writer("k")
        for chunk in sawtooth_trace(100).chunks(32):
            writer(chunk)
        writer.abort()
        assert store.open("k") is None
        assert not list((tmp_path / "traces").glob("*.tmp"))


# -- corruption --------------------------------------------------------

class TestCorruption:
    def test_truncated_bin_raises_lazily(self, tmp_path):
        store = TraceStore(tmp_path / "traces")
        store.put_trace("k", sawtooth_trace(500), chunk_accesses=64)
        path = store._bin("k")
        path.write_bytes(path.read_bytes()[:100])
        stream = store.open("k")          # meta is fine: opens OK
        with pytest.raises(TraceStoreCorrupt):
            for _ in stream:
                pass

    def test_garbage_blob_raises(self, tmp_path):
        store = TraceStore(tmp_path / "traces")
        store.put_trace("k", sawtooth_trace(100), chunk_accesses=64)
        bin_path = store._bin("k")
        data = bytearray(bin_path.read_bytes())
        data[20:28] = b"\xff" * 8          # clobber compressed bytes
        bin_path.write_bytes(bytes(data))
        with pytest.raises(TraceStoreCorrupt):
            for _ in store.open("k"):
                pass

    def test_missing_bin_is_a_miss(self, tmp_path):
        store = TraceStore(tmp_path / "traces")
        store.put_trace("k", sawtooth_trace(10))
        store._bin("k").unlink()
        assert store.open("k") is None

    def test_session_falls_back_to_reexecution(self, tmp_path):
        session = Session(scale=0.2, cache_dir=tmp_path)
        first = session.stats("129.compress")
        bin_path = next((tmp_path / "traces").glob("tr-*.bin"))
        bin_path.write_bytes(bin_path.read_bytes()[:64])
        # fresh session, fresh config: the sweep hits the corrupt
        # entry mid-stream, drops it and re-executes
        fresh = Session(scale=0.2, cache_dir=tmp_path)
        odd = CacheConfig(size=2048, assoc=2, block_size=16)
        stats = fresh.stats("129.compress", cache_config=odd)
        reference = Session(scale=0.2, use_disk_cache=False).stats(
            "129.compress", cache_config=odd)
        assert stats.load_misses == reference.load_misses
        assert first.load_misses  # sanity: the workload misses at all


# -- session / store integration ---------------------------------------

class TestSessionStore:
    def test_second_session_skips_execution(self, tmp_path):
        odd = CacheConfig(size=16 * 1024, assoc=8, block_size=64)
        cold = Session(scale=0.2, cache_dir=tmp_path)
        baseline = cold.measurement("129.compress")
        assert not cold._traces, "session materialized despite store"
        expected = cold.stats("129.compress", cache_config=odd)
        # drop the JSON result entry so only the trace store can answer
        cold._disk_path(baseline.key, odd).unlink()
        warm = Session(scale=0.2, cache_dir=tmp_path)

        def boom(*args, **kwargs):
            raise AssertionError("warm session executed the workload")

        original, original_streaming = Machine.run, Machine.run_streaming
        Machine.run = Machine.run_streaming = boom
        try:
            stats = warm.stats("129.compress", cache_config=odd)
            profile = warm.profile("129.compress")
        finally:
            Machine.run = original
            Machine.run_streaming = original_streaming
        assert stats.load_misses == expected.load_misses
        assert stats.load_accesses == expected.load_accesses
        assert profile.block_counts == baseline.profile.block_counts
        assert warm._steps[baseline.key] == baseline.steps

    def test_store_shared_with_service_keys(self, tmp_path):
        session = Session(scale=0.2, cache_dir=tmp_path)
        session.stats("129.compress")
        source = session.source("129.compress")
        key = trace_key(source, False, session.max_steps)
        assert TraceStore(tmp_path / "traces").contains(key)

    def test_concurrent_warm_writers_share_store(self, tmp_path):
        session = Session(scale=0.2, cache_dir=tmp_path)
        report = session.warm(
            [("129.compress", "input1", False),
             ("181.mcf", "input1", False)],
            configs=(BASELINE_CONFIG,), jobs=2)
        assert report.simulated == 2 and report.jobs == 2
        store = TraceStore(tmp_path / "traces")
        keys = store.keys()
        assert len(keys) == 2
        for key in keys:
            rows = 0
            for chunk in store.open(key):   # decodes cleanly
                rows += len(chunk)
            assert rows == store.meta(key)["rows"] > 0
        assert not list((tmp_path / "traces").glob("*.tmp"))


# -- cache gc ----------------------------------------------------------

class TestCacheGc:
    def test_parse_size(self):
        assert parse_size("100K") == 100 << 10
        assert parse_size("2G") == 2 << 30
        assert parse_size("17") == 17
        with pytest.raises(ValueError):
            parse_size("lots")

    def populate(self, root: Path) -> None:
        store = TraceStore(root / "traces")
        for name in ("aa", "bb"):
            store.put_trace(name, sawtooth_trace(400))
        (root / "one.json").write_text(json.dumps({"version": 1}))
        (root / "svc-x.json").write_text(json.dumps({"r": 2}))
        (root / "stackdist").mkdir()
        (root / "stackdist" / "sd-x-bs32.json").write_text("{}")

    def test_scan_tiers(self, tmp_path):
        self.populate(tmp_path)
        entries, corrupt = scan_entries(tmp_path)
        assert not corrupt
        assert sorted({e.tier for e in entries}) \
            == ["pipeline", "service", "stackdist", "traces"]
        traces = [e for e in entries if e.tier == "traces"]
        assert all(len(e.paths) == 2 for e in traces)

    def test_corrupt_items_reported_and_removed(self, tmp_path):
        self.populate(tmp_path)
        (tmp_path / "traces" / "tr-dead.json").write_text("{oops")
        (tmp_path / "traces" / "tr-orphan.bin").write_bytes(b"x")
        (tmp_path / "bad.json").write_text("not json")
        stale_tmp = tmp_path / "x.json.99.tmp"
        stale_tmp.write_text("")
        os.utime(stale_tmp, (1_000, 1_000))   # dead writer, aged out
        report = collect_garbage(tmp_path, 1 << 30, dry_run=True)
        assert len(report.corrupt) == 4
        assert not report.evicted          # budget is huge
        assert (tmp_path / "bad.json").exists()   # dry run deletes nothing
        report = collect_garbage(tmp_path, 1 << 30)
        assert not (tmp_path / "bad.json").exists()
        assert not (tmp_path / "traces" / "tr-orphan.bin").exists()
        assert not scan_entries(tmp_path)[1]

    def test_gc_spares_a_concurrent_writers_temp_files(self, tmp_path):
        """A fresh per-PID ``*.tmp`` belongs to a live writer mid-
        publish; a racing gc pass must leave it alone in every tier."""
        self.populate(tmp_path)
        fresh = [tmp_path / f"res.json.{os.getpid()}.tmp",
                 tmp_path / "traces" / f"tr-w.bin.{os.getpid()}.tmp",
                 tmp_path / "stackdist" / f"sd-w.json.{os.getpid()}.tmp"]
        for path in fresh:
            path.write_bytes(b"partial")
        report = collect_garbage(tmp_path, 1 << 30)
        assert not report.corrupt
        assert all(path.exists() for path in fresh)
        # once aged past the grace window the same files are stale
        for path in fresh:
            os.utime(path, (1_000, 1_000))
        report = collect_garbage(tmp_path, 1 << 30)
        assert len(report.corrupt) == 3
        assert all(reason == "stale temp file"
                   for _, _, reason in report.corrupt)
        assert not any(path.exists() for path in fresh)
        # tmp_grace=0 treats every temp file as immediately stale
        orphan = tmp_path / f"y.json.{os.getpid()}.tmp"
        orphan.write_text("")
        report = collect_garbage(tmp_path, 1 << 30, tmp_grace=0)
        assert [name for _, name, _ in report.corrupt] == [orphan.name]
        assert not orphan.exists()

    def test_meta_without_bin_is_an_orphan(self, tmp_path):
        """A published meta sidecar whose bin never landed (writer died
        between the two renames) is corrupt, not a live entry."""
        self.populate(tmp_path)
        orphan = tmp_path / "traces" / "tr-nobin.json"
        orphan.write_text(json.dumps({"version": 1, "chunks": []}))
        entries, corrupt = scan_entries(tmp_path)
        assert ("traces", "tr-nobin.json", "meta without bin") \
            in [(t, n, r) for t, n, r, _ in corrupt]
        assert all("tr-nobin" not in e.name for e in entries)
        collect_garbage(tmp_path, 1 << 30)
        assert not orphan.exists()
        # the paired live entries survived the orphan sweep
        assert len([e for e in scan_entries(tmp_path)[0]
                    if e.tier == "traces"]) == 2

    def test_lru_eviction_bounds_size(self, tmp_path):
        self.populate(tmp_path)
        # age one entry well past the rest so LRU order is unambiguous
        stale = tmp_path / "one.json"
        os.utime(stale, (1_000, 1_000))
        entries, _ = scan_entries(tmp_path)
        total = sum(e.size for e in entries)
        budget = total - 1
        report = collect_garbage(tmp_path, budget)
        assert report.evicted
        assert report.evicted[0].name == "one.json"
        assert not stale.exists()
        remaining, _ = scan_entries(tmp_path)
        assert sum(e.size for e in remaining) <= budget

    def test_cli(self, tmp_path):
        self.populate(tmp_path)
        result = subprocess.run(
            [sys.executable, "-m", "repro", "cache", "gc",
             "--limit", "1K", "--cache-dir", str(tmp_path),
             "--dry-run"],
            capture_output=True, text=True,
            env={**os.environ, "PYTHONPATH": str(SRC)})
        assert result.returncode == 0, result.stderr
        assert "would evict" in result.stdout
        # dry run left everything in place
        assert len(scan_entries(tmp_path)[0]) == 5


# -- the RSS bound -----------------------------------------------------

_RSS_CHILD = r"""
import resource, sys, tempfile
from pathlib import Path

def peak_rss_kb():
    # VmHWM resets on execve; ru_maxrss does NOT, so a child forked
    # from a fat parent (the pytest process mid-suite) would inherit
    # the parent's COW-resident peak and poison the comparison.
    try:
        with open("/proc/self/status") as status:
            for line in status:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

from repro.cache.config import BASELINE_CONFIG
from repro.cache.model import simulate_trace
from repro.compiler.driver import compile_source
from repro.machine.simulator import Machine
from repro.store import TraceStore

mode = sys.argv[1]
source = '''
int a[65536];
int main() {
    int i; int j; int s;
    s = 0;
    for (j = 0; j < 60; j = j + 1)
        for (i = 0; i < 65536; i = i + 1)
            s = s + a[i];
    return s & 127;
}
'''
program = compile_source(source)
machine = Machine(program)
if mode == "materialized":
    result = machine.run()
    stats = simulate_trace(result.trace, BASELINE_CONFIG)
else:
    with tempfile.TemporaryDirectory() as tmp:
        store = TraceStore(Path(tmp) / "traces")
        writer = store.writer("k")
        result = machine.run_streaming(writer)
        writer.close(block_counts=result.block_counts,
                     steps=result.steps)
        stats = simulate_trace(store.open("k"), BASELINE_CONFIG)
print(sum(stats.load_accesses.values()), peak_rss_kb())
"""


class TestPeakRss:
    def test_streaming_bounds_peak_rss(self):
        """~4M-access workload: materialized holds the whole columnar
        trace (~36 MB + allocator overhead); the streamed path must
        stay well under that, proving the constant chunk budget."""
        def child(mode: str) -> tuple[int, int]:
            result = subprocess.run(
                [sys.executable, "-c", _RSS_CHILD, mode],
                capture_output=True, text=True,
                env={**os.environ, "PYTHONPATH": str(SRC)})
            assert result.returncode == 0, result.stderr
            accesses, rss_kb = result.stdout.split()
            return int(accesses), int(rss_kb)

        accesses_mat, rss_mat = child("materialized")
        accesses_stream, rss_stream = child("streamed")
        assert accesses_mat == accesses_stream > 3_900_000
        # the trace alone is ~36 MB; streaming must save most of it
        assert rss_stream < rss_mat - 20_000, (
            f"streamed peak RSS {rss_stream} KB not bounded vs "
            f"materialized {rss_mat} KB")
