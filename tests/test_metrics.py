"""Metric tests: pi, rho, ideal delta, xi — plus hypothesis invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.measures import (
    as_percent, coverage, ideal_delta, precision, xi,
)


class TestPrecision:
    def test_basic(self):
        assert precision({1, 2}, 10) == 0.2

    def test_empty_delta(self):
        assert precision(set(), 10) == 0.0

    def test_zero_loads(self):
        assert precision({1}, 0) == 0.0


class TestCoverage:
    MISSES = {1: 50, 2: 30, 3: 20}

    def test_full(self):
        assert coverage({1, 2, 3}, self.MISSES) == 1.0

    def test_partial(self):
        assert coverage({1}, self.MISSES) == 0.5
        assert coverage({2, 3}, self.MISSES) == 0.5

    def test_unknown_members_ignored(self):
        assert coverage({1, 99}, self.MISSES) == 0.5

    def test_no_misses(self):
        assert coverage({1}, {}) == 0.0


class TestIdealDelta:
    MISSES = {1: 50, 2: 30, 3: 15, 4: 5}

    def test_greedy_selection(self):
        assert ideal_delta(self.MISSES, 0.5) == {1}
        assert ideal_delta(self.MISSES, 0.8) == {1, 2}
        assert ideal_delta(self.MISSES, 0.95) == {1, 2, 3}
        assert ideal_delta(self.MISSES, 1.0) == {1, 2, 3, 4}

    def test_zero_target(self):
        assert ideal_delta(self.MISSES, 0.0) == set()

    def test_skips_zero_miss_loads(self):
        misses = {1: 10, 2: 0}
        assert ideal_delta(misses, 1.0) == {1}

    def test_coverage_of_ideal_meets_target(self):
        for target in (0.3, 0.6, 0.9):
            chosen = ideal_delta(self.MISSES, target)
            assert coverage(chosen, self.MISSES) >= target

    def test_deterministic_tie_break(self):
        misses = {5: 10, 3: 10, 8: 10}
        assert ideal_delta(misses, 0.34) == {3, 5}


class TestXi:
    EXEC = {1: 1000, 2: 500, 3: 500}

    def test_no_false_positives(self):
        assert xi({1}, {1, 2}, self.EXEC) == 0.0

    def test_all_false_positives(self):
        assert xi({2, 3}, {1}, self.EXEC) == 0.5

    def test_empty_exec(self):
        assert xi({1}, set(), {}) == 0.0


class TestFormatting:
    def test_as_percent(self):
        assert as_percent(0.1234) == "12%"
        assert as_percent(0.1234, 2) == "12.34%"


# -- hypothesis -------------------------------------------------------------

_miss_maps = st.dictionaries(
    st.integers(min_value=0, max_value=100),
    st.integers(min_value=0, max_value=10_000),
    min_size=1, max_size=40)


@given(_miss_maps, st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=80)
def test_ideal_delta_is_minimal_prefix(misses, target):
    chosen = ideal_delta(misses, target)
    total = sum(misses.values())
    if total == 0:
        assert chosen == set()
        return
    assert coverage(chosen, misses) >= min(
        target, sum(m for m in misses.values() if m) / total) - 1e-9
    # greedy optimality: any same-size set covers no more
    ranked = sorted(misses.values(), reverse=True)
    best_possible = sum(ranked[:len(chosen)])
    covered = sum(misses[a] for a in chosen)
    assert covered == best_possible


@given(_miss_maps, st.sets(st.integers(min_value=0, max_value=100)))
@settings(max_examples=80)
def test_coverage_bounds_and_monotonicity(misses, delta):
    rho = coverage(delta, misses)
    assert 0.0 <= rho <= 1.0
    bigger = delta | set(misses)
    assert coverage(bigger, misses) >= rho


class TestDynamicLoadShare:
    def _trace(self):
        from repro.machine.trace import LOAD, STORE, MemoryTrace
        trace = MemoryTrace()
        trace.append(0x100, 0x1000, LOAD)
        trace.append(0x100, 0x1004, LOAD)
        trace.append(0x104, 0x2000, STORE)
        trace.append(0x108, 0x3000, LOAD)
        return trace

    def test_counts_dynamic_not_static(self):
        from repro.metrics.measures import dynamic_load_share
        # 0x100 executes twice out of three dynamic loads; the store
        # row must not dilute the denominator.
        assert dynamic_load_share({0x100}, self._trace()) == 2 / 3

    def test_empty_trace_is_zero(self):
        from repro.machine.trace import MemoryTrace
        from repro.metrics.measures import dynamic_load_share
        assert dynamic_load_share({0x100}, MemoryTrace()) == 0.0

    def test_full_delta_is_one(self):
        from repro.metrics.measures import dynamic_load_share
        assert dynamic_load_share({0x100, 0x108}, self._trace()) == 1.0
