"""End-to-end integration tests: the paper's headline claims must hold
on miniature instances of the workload suite."""

import pytest

from repro.baselines import bdh, okn
from repro.heuristic.classifier import DelinquencyClassifier
from repro.metrics.measures import coverage, ideal_delta, precision, xi
from repro.pipeline.session import Session
from repro.profiling.combined import combined_delta, \
    random_hotspot_coverage

NAMES = ("181.mcf", "129.compress", "197.parser", "022.li",
         "101.tomcatv")


@pytest.fixture(scope="module")
def session(tmp_path_factory):
    return Session(scale=0.15,
                   cache_dir=tmp_path_factory.mktemp("cache"))


@pytest.fixture(scope="module")
def evaluations(session):
    out = {}
    for name in NAMES:
        m = session.measurement(name)
        heuristic = DelinquencyClassifier().classify(
            m.load_infos, m.load_exec, m.profile.hotspot_loads())
        out[name] = (m, heuristic)
    return out


class TestHeadlineClaims:
    def test_small_delta_high_coverage(self, evaluations):
        """~10% of loads cover the overwhelming share of misses."""
        for name, (m, heuristic) in evaluations.items():
            delta = heuristic.delinquent_set
            pi = precision(delta, m.num_loads)
            rho = coverage(delta, m.load_misses)
            assert pi < 0.30, f"{name}: pi={pi:.1%}"
            assert rho > 0.80, f"{name}: rho={rho:.1%}"

    def test_misses_concentrated(self, evaluations):
        """The premise: the ideal 90%-set is tiny."""
        for name, (m, _) in evaluations.items():
            ideal = ideal_delta(m.load_misses, 0.90)
            assert len(ideal) <= 0.25 * m.num_loads, name

    def test_baselines_less_precise_at_similar_coverage(self,
                                                        evaluations):
        for name, (m, heuristic) in evaluations.items():
            our_delta = heuristic.delinquent_set
            okn_delta = okn.classify(m.load_infos,
                                     m.program).delinquent_set
            bdh_delta = bdh.classify(m.program,
                                     m.load_infos).delinquent_set
            our_pi = precision(our_delta, m.num_loads)
            assert precision(okn_delta, m.num_loads) > our_pi, name
            assert precision(bdh_delta, m.num_loads) > our_pi, name
            assert coverage(okn_delta, m.load_misses) \
                >= coverage(our_delta, m.load_misses) - 0.05, name

    def test_combined_with_profiling_sharper(self, evaluations):
        """Section 9: intersection with Delta_P cuts pi, keeps rho
        high, and beats the random-hotspot control."""
        for name, (m, heuristic) in evaluations.items():
            delta_p = m.profile.hotspot_loads()
            combined = combined_delta(delta_p, heuristic, 0.0)
            assert len(combined) <= len(heuristic.delinquent_set)
            rho = coverage(combined, m.load_misses)
            if not combined:
                continue
            rho_star = random_hotspot_coverage(
                delta_p, len(combined), m.load_misses)
            assert rho >= rho_star - 0.05, name

    def test_xi_is_bounded(self, evaluations):
        for name, (m, heuristic) in evaluations.items():
            prof_rho = coverage(m.profile.hotspot_loads(),
                                m.load_misses)
            ideal = ideal_delta(m.load_misses, prof_rho)
            value = xi(heuristic.delinquent_set, ideal, m.load_exec)
            assert 0.0 <= value <= 0.6, f"{name}: xi={value:.1%}"


class TestStability:
    def test_delta_insensitive_to_cache_geometry(self, session):
        """The static Delta is identical across cache configs by
        construction; its *coverage* must stay high across them."""
        from repro.cache.config import associativity_sweep
        name = "181.mcf"
        m0 = session.measurement(name)
        heuristic = DelinquencyClassifier().classify(
            m0.load_infos, m0.load_exec, m0.profile.hotspot_loads())
        delta = heuristic.delinquent_set
        for config in associativity_sweep():
            m = session.measurement(name, cache_config=config)
            rho = coverage(delta, m.load_misses)
            assert rho > 0.85, f"{config.describe()}: rho={rho:.1%}"

    def test_classification_deterministic(self, session):
        name = "129.compress"
        m = session.measurement(name)
        first = DelinquencyClassifier().classify(
            m.load_infos, m.load_exec, m.profile.hotspot_loads())
        second = DelinquencyClassifier().classify(
            m.load_infos, m.load_exec, m.profile.hotspot_loads())
        assert first.delinquent_set == second.delinquent_set
        assert first.scores() == second.scores()

    def test_input_stability(self, session):
        """pi moves only mildly between the two inputs."""
        for name in ("181.mcf", "129.compress"):
            pis = []
            for input_name in ("input1", "input2"):
                m = session.measurement(name, input_name=input_name)
                result = DelinquencyClassifier().classify(
                    m.load_infos, m.load_exec,
                    m.profile.hotspot_loads())
                pis.append(precision(result.delinquent_set,
                                     m.num_loads))
            assert abs(pis[0] - pis[1]) < 0.10, name
