"""Lexer tests."""

import pytest

from repro.lang.lexer import LexError, Token, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


class TestTokens:
    def test_keywords_vs_idents(self):
        tokens = tokenize("int x while whilex")
        assert [t.kind for t in tokens[:4]] == ["int", "ident", "while",
                                                "ident"]

    def test_int_literals(self):
        tokens = tokenize("0 42 0x1F")
        assert [t.value for t in tokens[:3]] == [0, 42, 31]
        assert all(t.kind == "intlit" for t in tokens[:3])

    def test_float_literals(self):
        tokens = tokenize("1.5 0.25 2e3 1.5e-2")
        assert [t.kind for t in tokens[:4]] == ["floatlit"] * 4
        assert tokens[0].value == 1.5
        assert tokens[2].value == 2000.0
        assert tokens[3].value == pytest.approx(0.015)

    def test_char_literals(self):
        tokens = tokenize(r"'a' '\n' '\0'")
        assert [t.value for t in tokens[:3]] == [97, 10, 0]
        assert tokens[0].kind == "charlit"

    def test_two_char_operators(self):
        assert kinds("<< >> <= >= == != && || ->")[:9] == [
            "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "->"]

    def test_operator_maximal_munch(self):
        assert kinds("a<<b")[:3] == ["ident", "<<", "ident"]
        assert kinds("a<b")[:3] == ["ident", "<", "ident"]

    def test_line_numbers(self):
        tokens = tokenize("a\nb\n\nc")
        assert [t.line for t in tokens[:3]] == [1, 2, 4]

    def test_line_comments(self):
        tokens = tokenize("a // comment\nb")
        assert [t.text for t in tokens[:2]] == ["a", "b"]

    def test_block_comments(self):
        tokens = tokenize("a /* multi\nline */ b")
        assert [t.text for t in tokens[:2]] == ["a", "b"]
        assert tokens[1].line == 2

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "eof"

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("/* never closed")

    def test_bad_character(self):
        with pytest.raises(LexError):
            tokenize("a @ b")

    def test_malformed_char_literal(self):
        with pytest.raises(LexError):
            tokenize("'ab governs'")
