"""Code generator tests: compiled programs must compute what C computes.

Each case runs in both compilation modes (unoptimized and optimized) and
checks the printed/returned values against a Python model of the same
computation.
"""

import pytest

from tests.conftest import SAMPLE_EXPECTED, SAMPLE_SOURCE, compile_and_run
from repro.compiler.codegen import CodegenError
from repro.compiler.driver import compile_source, generate_assembly

MODES = [False, True]


def outputs(source, optimize, args=()):
    _, result = compile_and_run(source, optimize=optimize, args=args)
    return result.output


@pytest.mark.parametrize("optimize", MODES)
class TestArithmetic:
    def test_operator_zoo(self, optimize):
        src = r"""
        int main() {
            print_int(7 + 3 * 2);
            print_int((7 - 10) * 4);
            print_int(17 / 5);
            print_int(17 % 5);
            print_int(-17 / 5);
            print_int(5 & 3);
            print_int(5 | 3);
            print_int(5 ^ 3);
            print_int(~5);
            print_int(1 << 10);
            print_int(-64 >> 3);
            return 0;
        }
        """
        assert outputs(src, optimize) == [
            13, -12, 3, 2, -3, 1, 7, 6, -6, 1024, -8]

    def test_variable_arithmetic(self, optimize):
        src = r"""
        int main() {
            int a; int b;
            a = 13; b = -4;
            print_int(a * b);
            print_int(a / b);
            print_int(a % b);
            print_int(a << 2);
            print_int(b >> 1);
            return 0;
        }
        """
        assert outputs(src, optimize) == [-52, -3, 1, 52, -2]

    def test_comparisons(self, optimize):
        src = r"""
        int main() {
            int a; int b;
            a = 3; b = 5;
            print_int(a < b);
            print_int(a > b);
            print_int(a <= 3);
            print_int(a >= 4);
            print_int(a == 3);
            print_int(a != 3);
            print_int(-1 < 1);
            return 0;
        }
        """
        assert outputs(src, optimize) == [1, 0, 1, 0, 1, 0, 1]

    def test_logical_short_circuit(self, optimize):
        src = r"""
        int hits;
        int bump() { hits = hits + 1; return 1; }
        int main() {
            hits = 0;
            print_int(0 && bump());
            print_int(hits);
            print_int(1 || bump());
            print_int(hits);
            print_int(1 && bump());
            print_int(hits);
            return 0;
        }
        """
        assert outputs(src, optimize) == [0, 0, 1, 0, 1, 1]

    def test_unary(self, optimize):
        src = r"""
        int main() {
            int x;
            x = 9;
            print_int(-x);
            print_int(!x);
            print_int(!0);
            print_int(~x);
            return 0;
        }
        """
        assert outputs(src, optimize) == [-9, 0, 1, -10]


@pytest.mark.parametrize("optimize", MODES)
class TestControlFlow:
    def test_nested_loops(self, optimize):
        src = r"""
        int main() {
            int i; int j; int s;
            s = 0;
            for (i = 0; i < 5; i = i + 1)
                for (j = 0; j < i; j = j + 1)
                    s = s + i * j;
            print_int(s);
            return 0;
        }
        """
        expected = sum(i * j for i in range(5) for j in range(i))
        assert outputs(src, optimize) == [expected]

    def test_while_with_break_continue(self, optimize):
        src = r"""
        int main() {
            int i; int s;
            i = 0; s = 0;
            while (1) {
                i = i + 1;
                if (i > 20) break;
                if (i % 2 == 0) continue;
                s = s + i;
            }
            print_int(s);
            return 0;
        }
        """
        assert outputs(src, optimize) == [sum(range(1, 21, 2))]

    def test_if_chain(self, optimize):
        src = r"""
        int grade(int x) {
            if (x >= 90) return 4;
            else if (x >= 80) return 3;
            else if (x >= 70) return 2;
            else return 0;
        }
        int main() {
            print_int(grade(95));
            print_int(grade(85));
            print_int(grade(75));
            print_int(grade(5));
            return 0;
        }
        """
        assert outputs(src, optimize) == [4, 3, 2, 0]

    def test_recursion(self, optimize):
        src = r"""
        int fib(int n) {
            if (n < 2) return n;
            return fib(n - 1) + fib(n - 2);
        }
        int main() {
            print_int(fib(12));
            return 0;
        }
        """
        assert outputs(src, optimize) == [144]


@pytest.mark.parametrize("optimize", MODES)
class TestData:
    def test_global_arrays_2d(self, optimize):
        src = r"""
        int m[3][4];
        int main() {
            int i; int j; int s;
            for (i = 0; i < 3; i = i + 1)
                for (j = 0; j < 4; j = j + 1)
                    m[i][j] = i * 10 + j;
            s = 0;
            for (i = 0; i < 3; i = i + 1)
                for (j = 0; j < 4; j = j + 1)
                    s = s + m[i][j];
            print_int(s);
            print_int(m[2][3]);
            return 0;
        }
        """
        expected = sum(i * 10 + j for i in range(3) for j in range(4))
        assert outputs(src, optimize) == [expected, 23]

    def test_local_array(self, optimize):
        src = r"""
        int main() {
            int buf[8];
            int i; int s;
            for (i = 0; i < 8; i = i + 1)
                buf[i] = i * i;
            s = 0;
            for (i = 0; i < 8; i = i + 1)
                s = s + buf[i];
            print_int(s);
            return 0;
        }
        """
        assert outputs(src, optimize) == [sum(i * i for i in range(8))]

    def test_struct_fields(self, optimize):
        src = r"""
        struct point { int x; int y; char tag; };
        struct point g;
        int main() {
            struct point local;
            g.x = 5; g.y = 7; g.tag = 'g';
            local.x = 1; local.y = 2; local.tag = 'l';
            print_int(g.x + g.y);
            print_int(local.x + local.y);
            print_int(g.tag);
            return 0;
        }
        """
        assert outputs(src, optimize) == [12, 3, ord("g")]

    def test_heap_linked_list(self, optimize):
        src = r"""
        struct n { int v; struct n *next; };
        int main() {
            struct n *head;
            struct n *p;
            int i; int s;
            head = NULL;
            for (i = 0; i < 10; i = i + 1) {
                p = (struct n*) malloc(sizeof(struct n));
                p->v = i;
                p->next = head;
                head = p;
            }
            s = 0;
            p = head;
            while (p != NULL) { s = s + p->v; p = p->next; }
            print_int(s);
            return 0;
        }
        """
        assert outputs(src, optimize) == [45]

    def test_pointer_arithmetic(self, optimize):
        src = r"""
        int a[10];
        int main() {
            int *p;
            int *q;
            int i;
            for (i = 0; i < 10; i = i + 1) a[i] = i;
            p = a;
            q = p + 7;
            print_int(*q);
            print_int(*(q - 3));
            print_int(q - p);
            return 0;
        }
        """
        assert outputs(src, optimize) == [7, 4, 7]

    def test_address_of_scalar(self, optimize):
        src = r"""
        void bump(int *p) { *p = *p + 1; }
        int main() {
            int x;
            x = 41;
            bump(&x);
            print_int(x);
            return 0;
        }
        """
        assert outputs(src, optimize) == [42]

    def test_char_array_bytes(self, optimize):
        src = r"""
        char buf[16];
        int main() {
            int i;
            for (i = 0; i < 16; i = i + 1)
                buf[i] = (i * 37) % 256;
            print_int(buf[3]);
            print_int(buf[7]);
            return 0;
        }
        """
        assert outputs(src, optimize) == [111, 3]  # 259 wraps to 3 (signed)

    def test_global_initializers(self, optimize):
        src = r"""
        int scalar = 77;
        int table[5] = {1, 2, 3};
        float pi = 3.5;
        int main() {
            print_int(scalar);
            print_int(table[0] + table[1] + table[2] + table[3]);
            print_int((int)(pi * 2.0));
            return 0;
        }
        """
        assert outputs(src, optimize) == [77, 6, 7]

    def test_calloc_zeroes(self, optimize):
        src = r"""
        int main() {
            int *p;
            int i; int s;
            p = (int*) calloc(10, 4);
            s = 0;
            for (i = 0; i < 10; i = i + 1) s = s + p[i];
            print_int(s);
            return 0;
        }
        """
        assert outputs(src, optimize) == [0]


@pytest.mark.parametrize("optimize", MODES)
class TestFloats:
    def test_float_arithmetic(self, optimize):
        src = r"""
        int main() {
            float a; float b;
            a = 1.5; b = 2.25;
            print_int((int)(a + b));
            print_int((int)(a * b * 100.0));
            print_int((int)(b / a * 10.0));
            print_int((int)(a - b));
            return 0;
        }
        """
        assert outputs(src, optimize) == [3, 337, 15, 0]

    def test_float_compare_and_convert(self, optimize):
        src = r"""
        int main() {
            float x;
            int i;
            x = 0.0;
            for (i = 0; i < 10; i = i + 1)
                x = x + 0.5;
            print_int(x > 4.9);
            print_int(x < 5.1);
            print_int((int) x);
            print_int((int)(x + (float) i));
            return 0;
        }
        """
        assert outputs(src, optimize) == [1, 1, 5, 15]

    def test_mixed_int_float(self, optimize):
        src = r"""
        float scale;
        int main() {
            int n;
            scale = 0.25;
            n = 100;
            print_int((int)(n * scale));
            return 0;
        }
        """
        assert outputs(src, optimize) == [25]


@pytest.mark.parametrize("optimize", MODES)
class TestRuntime:
    def test_rand_deterministic_with_seed(self, optimize):
        src = r"""
        int main() {
            srand(7);
            print_int(rand());
            print_int(rand());
            srand(7);
            print_int(rand());
            return 0;
        }
        """
        out = outputs(src, optimize)
        assert out[0] == out[2]
        assert all(0 <= v < 32768 for v in out)

    def test_rand_spread(self, optimize):
        src = r"""
        int main() {
            int i; int acc;
            srand(123);
            acc = 0;
            for (i = 0; i < 50; i = i + 1)
                acc = acc | rand();
            print_int(acc > 16000);
            return 0;
        }
        """
        assert outputs(src, optimize) == [1]

    def test_malloc_distinct_chunks(self, optimize):
        src = r"""
        int main() {
            int *a; int *b;
            a = (int*) malloc(8);
            b = (int*) malloc(8);
            *a = 1; *b = 2;
            print_int(*a);
            print_int(b != a);
            return 0;
        }
        """
        assert outputs(src, optimize) == [1, 1]

    def test_main_receives_machine_args(self, optimize):
        src = "int main(int n) { print_int(n * 2); return 0; }"
        assert outputs(src, optimize, args=(21,)) == [42]


class TestSampleProgram:
    def test_unoptimized(self, sample_result):
        assert sample_result.output == [SAMPLE_EXPECTED]

    def test_optimized(self, sample_result_opt):
        assert sample_result_opt.output == [SAMPLE_EXPECTED]

    def test_optimized_runs_fewer_loads(self, sample_result,
                                        sample_result_opt):
        assert sample_result_opt.trace.load_count \
            < sample_result.trace.load_count


class TestCodegenStructure:
    def test_assembly_contains_gp_globals(self):
        asm = generate_assembly("int g; int main() { g = 1; return g; }")
        assert "%gp(g)($gp)" in asm

    def test_unoptimized_locals_on_stack(self):
        asm = generate_assembly(
            "int main() { int x; x = 1; return x; }")
        assert "($sp)" in asm

    def test_optimized_promotes_locals(self):
        asm = generate_assembly(
            "int main() { int x; x = 1; return x + x; }", optimize=True)
        assert "$s0" in asm

    def test_scaling_uses_shift_for_pow2(self):
        asm = generate_assembly(
            "int a[8]; int main(int i) { return a[i]; }")
        assert "sll" in asm

    def test_scaling_uses_mul_for_non_pow2(self):
        src = ("struct odd { int a; int b; int c; };\n"
               "struct odd arr[4];\n"
               "int main(int i) { return arr[i].b; }")
        asm = generate_assembly(src)
        assert "mul" in asm

    def test_too_many_params_rejected(self):
        src = ("int f(int a, int b, int c, int d, int e) { return a; }\n"
               "int main() { return f(1,2,3,4,5); }")
        with pytest.raises(CodegenError):
            compile_source(src)

    def test_runtime_functions_present(self, sample_program):
        for name in ("malloc", "calloc", "free", "rand", "srand",
                     "__start"):
            assert name in sample_program.symtab.functions

    def test_debug_info_locals(self, sample_program):
        info = sample_program.symtab.functions["walk"]
        names = {v.name for v in info.locals}
        assert {"p", "sum"} <= names

    def test_global_gp_offsets_filled(self, sample_program):
        table = sample_program.symtab.globals["table"]
        address = sample_program.symbols["table"]
        assert table.offset == address - sample_program.gp_value
