"""Blocks-engine equivalence and trace-column tests.

The block execution engine must be observably indistinguishable from the
closure reference engine: same :class:`ExecutionResult`, same profile
counters, byte-identical trace columns.  These tests pin that contract
over every registry workload plus targeted corner cases (mid-block jr
entries, syscalls splitting a block, the step budget, the constructor
fallback), and cover the :class:`MemoryTrace` column API the engine
relies on.
"""

import pytest

from repro.asm.assembler import assemble
from repro.compiler.driver import compile_source
from repro.machine.errors import StepLimitExceeded
from repro.machine.simulator import (ENGINE_BLOCKS, ENGINE_CLOSURES,
                                     Machine, resolve_engine)
from repro.machine.trace import LOAD, PREFETCH, STORE, MemoryTrace
from repro.workloads.registry import get, names

#: Small but non-trivial: every workload still runs 10^5..10^6+ steps.
EQUIVALENCE_SCALE = 0.01


def run_both(program, **kwargs):
    machines = {}
    results = {}
    for engine in (ENGINE_CLOSURES, ENGINE_BLOCKS):
        machine = Machine(program, trace_memory=True, engine=engine,
                          **kwargs)
        machines[engine] = machine
        results[engine] = machine.run()
    return machines, results


def assert_equivalent(program, machines, results):
    ref = results[ENGINE_CLOSURES]
    out = results[ENGINE_BLOCKS]
    ref_trace = machines[ENGINE_CLOSURES].trace
    out_trace = machines[ENGINE_BLOCKS].trace
    assert machines[ENGINE_BLOCKS]._block_engine is not None, \
        "blocks engine silently fell back to closures"
    assert out.steps == ref.steps
    assert out.exit_code == ref.exit_code
    assert out.output == ref.output
    assert out.block_counts == ref.block_counts
    assert out_trace.pcs.tobytes() == ref_trace.pcs.tobytes()
    assert out_trace.addresses.tobytes() == ref_trace.addresses.tobytes()
    assert out_trace.kinds.tobytes() == ref_trace.kinds.tobytes()
    assert (out.instruction_counts(program)
            == ref.instruction_counts(program))
    assert (out.load_exec_counts(program)
            == ref.load_exec_counts(program))


@pytest.mark.parametrize("name", names())
def test_engine_equivalence_on_workload(name):
    """Both engines agree bit for bit on every registry workload."""
    source = get(name).generate("input1", scale=EQUIVALENCE_SCALE)
    program = compile_source(source)
    machines, results = run_both(program)
    assert_equivalent(program, machines, results)


@pytest.mark.parametrize("name", ["129.compress", "181.mcf", "099.go"])
def test_engine_equivalence_on_optimized_workload(name):
    """Optimized builds produce different block/branch shapes (e.g.
    registers carried across loop back edges), so a few workloads are
    checked under the optimizer too."""
    source = get(name).generate("input1", scale=EQUIVALENCE_SCALE)
    program = compile_source(source, optimize=True)
    machines, results = run_both(program)
    assert_equivalent(program, machines, results)


class TestEngineSelection:
    def test_default_is_blocks(self, sample_program, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        machine = Machine(sample_program)
        assert machine.engine == ENGINE_BLOCKS
        assert machine._block_engine is not None

    def test_env_override(self, sample_program, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "closures")
        machine = Machine(sample_program)
        assert machine.engine == ENGINE_CLOSURES
        assert machine._block_engine is None

    def test_argument_beats_env(self, sample_program, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "closures")
        machine = Machine(sample_program, engine=ENGINE_BLOCKS)
        assert machine.engine == ENGINE_BLOCKS

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown execution engine"):
            resolve_engine("jit")

    def test_compile_failure_falls_back_to_closures(self, sample_program,
                                                    monkeypatch):
        def boom(machine):
            raise RuntimeError("codegen exploded")

        monkeypatch.setattr("repro.machine.codegen.BlockEngine", boom)
        machine = Machine(sample_program, engine=ENGINE_BLOCKS)
        assert machine.engine == ENGINE_CLOSURES
        assert machine._block_engine is None
        result = machine.run()
        assert result.exit_code == 0


class TestEngineCornerCases:
    def test_mid_block_jr_compiles_tail_on_demand(self):
        """A computed jump into the middle of a block hits the
        ``enter_mid_block`` stub, which compiles the tail once and
        replaces itself."""
        program = assemble(
            ".text\n.ent __start\n__start:\n"
            "la $t0, spot\naddiu $t0, $t0, 8\njr $t0\n"
            "spot:\nli $v0, 1\nli $v0, 2\nli $a0, 42\n"
            "li $v0, 10\nsyscall\n.end __start\n")
        machine = Machine(program, engine=ENGINE_BLOCKS)
        index = program.index_of(program.symbols["spot"] + 8)
        assert machine._block_engine.funcs[index].__name__ \
            == "enter_mid_block"
        result = machine.run()
        assert result.exit_code == 42
        assert machine._block_engine.funcs[index].__name__ == "block"

    def test_mid_block_entry_matches_closures(self):
        source = (".text\n.ent __start\n__start:\n"
                  "la $t0, spot\naddiu $t0, $t0, 8\njr $t0\n"
                  "spot:\nli $v0, 1\nli $v0, 2\nli $a0, 42\n"
                  "li $v0, 10\nsyscall\n.end __start\n")
        program = assemble(source)
        machines, results = run_both(program)
        assert_equivalent(program, machines, results)

    def test_syscall_mid_block_preserves_trace_order(self):
        """Accesses before an in-block syscall flush ahead of it, so
        output interleaving and trace order both match the reference."""
        source = r"""
        int buffer[8];
        int main() {
            int i;
            for (i = 0; i < 8; i = i + 1) {
                buffer[i] = i * i;
                print_int(buffer[i]);
            }
            return 0;
        }
        """
        program = compile_source(source)
        machines, results = run_both(program)
        assert_equivalent(program, machines, results)
        assert results[ENGINE_BLOCKS].output \
            == [i * i for i in range(8)]

    def test_loop_carried_write_synced_on_exit(self):
        """Regression: a register written only on a branch side that
        ends in ``continue`` carries its value into later iterations,
        so an exit through the *other* side must still write it back."""
        source = r"""
        int main() {
            int i; int s;
            i = 0; s = 0;
            while (1) {
                i = i + 1;
                if (i > 20) break;
                if (i % 2 == 0) continue;
                s = s + i;
            }
            print_int(s);
            return 0;
        }
        """
        for optimize in (False, True):
            program = compile_source(source, optimize=optimize)
            machines, results = run_both(program)
            assert_equivalent(program, machines, results)
            assert results[ENGINE_BLOCKS].output == [100]

    def test_step_limit_raises_identically(self, sample_program):
        with pytest.raises(StepLimitExceeded) as ref_exc:
            Machine(sample_program, engine=ENGINE_CLOSURES,
                    max_steps=200).run()
        with pytest.raises(StepLimitExceeded) as out_exc:
            Machine(sample_program, engine=ENGINE_BLOCKS,
                    max_steps=200).run()
        assert str(out_exc.value) == str(ref_exc.value)


class TestMemoryTraceColumns:
    def _mixed(self):
        trace = MemoryTrace()
        trace.append(0x100, 0x1000, LOAD)
        trace.append(0x104, 0x2000, STORE)
        trace.append(0x108, 0x3000, PREFETCH)
        trace.append(0x10C, 0x4000, LOAD)
        return trace

    def test_counts_distinguish_prefetch_from_store(self):
        """Regression: PREFETCH records must not count as stores."""
        trace = self._mixed()
        assert trace.load_count == 2
        assert trace.store_count == 1
        assert trace.prefetch_count == 1
        assert len(trace) == 4

    def test_load_column_fast_paths(self):
        trace = self._mixed()
        assert list(trace.load_pcs()) == [0x100, 0x10C]
        assert list(trace.load_addresses()) == [0x1000, 0x4000]
        assert list(trace.loads()) == [(0x100, 0x1000), (0x10C, 0x4000)]

    def test_extend_matches_repeated_append(self):
        bulk = MemoryTrace()
        bulk.extend([0x100, 0x104, 0x108], [1, 2, 3],
                    [LOAD, STORE, PREFETCH])
        single = MemoryTrace()
        for row in zip([0x100, 0x104, 0x108], [1, 2, 3],
                       [LOAD, STORE, PREFETCH]):
            single.append(*row)
        assert bulk.pcs.tobytes() == single.pcs.tobytes()
        assert bulk.addresses.tobytes() == single.addresses.tobytes()
        assert bulk.kinds.tobytes() == single.kinds.tobytes()
