"""Encoding tests, including a hypothesis round-trip over the whole ISA."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.encoding import EncodingError, decode, encode
from repro.isa.instructions import SPECS, Format, Instruction

ADDRESS = 0x0040_1000


def roundtrip(instr: Instruction, address: int = ADDRESS) -> Instruction:
    return decode(encode(instr, address), address)


class TestBasicEncoding:
    def test_addu(self):
        i = Instruction("addu", rd=8, rs=9, rt=10)
        assert roundtrip(i) == i

    def test_word_is_32bit(self):
        word = encode(Instruction("addu", rd=8, rs=9, rt=10), ADDRESS)
        assert 0 <= word <= 0xFFFF_FFFF

    def test_lw_negative_offset(self):
        i = Instruction("lw", rt=8, rs=29, imm=-32768)
        assert roundtrip(i) == i

    def test_immediate_range_checked(self):
        with pytest.raises(EncodingError):
            encode(Instruction("addiu", rt=8, rs=9, imm=0x8000), ADDRESS)
        with pytest.raises(EncodingError):
            encode(Instruction("ori", rt=8, rs=9, imm=-1), ADDRESS)

    def test_branch_relative(self):
        i = Instruction("beq", rs=8, rt=9, imm=ADDRESS + 64)
        again = roundtrip(i)
        assert again.imm == ADDRESS + 64

    def test_branch_backwards(self):
        i = Instruction("bne", rs=8, rt=9, imm=ADDRESS - 128)
        assert roundtrip(i).imm == ADDRESS - 128

    def test_branch_out_of_range(self):
        far = ADDRESS + 4 * 0x10000
        with pytest.raises(EncodingError):
            encode(Instruction("beq", rs=8, rt=9, imm=far), ADDRESS)

    def test_jump_absolute(self):
        i = Instruction("j", imm=0x0040_0000)
        assert roundtrip(i).imm == 0x0040_0000

    def test_jump_unaligned_rejected(self):
        with pytest.raises(EncodingError):
            encode(Instruction("j", imm=0x0040_0002), ADDRESS)

    def test_regimm_disambiguation(self):
        bltz = Instruction("bltz", rs=8, imm=ADDRESS + 8)
        bgez = Instruction("bgez", rs=8, imm=ADDRESS + 8)
        assert roundtrip(bltz).mnemonic == "bltz"
        assert roundtrip(bgez).mnemonic == "bgez"

    def test_unknown_word_raises(self):
        with pytest.raises(EncodingError):
            decode(0xFFFF_FFFF, ADDRESS)

    def test_not_a_word_raises(self):
        with pytest.raises(EncodingError):
            decode(1 << 33, ADDRESS)

    def test_float_funct_space(self):
        i = Instruction("fadd", rd=8, rs=9, rt=10)
        assert roundtrip(i) == i
        j = Instruction("fcvt", rd=8, rs=9)
        assert roundtrip(j) == j


# -- property-based round trip over every mnemonic -------------------------

_regs = st.integers(min_value=0, max_value=31)
_imm_signed = st.integers(min_value=-0x8000, max_value=0x7FFF)
_imm_unsigned = st.integers(min_value=0, max_value=0xFFFF)
_shamt = st.integers(min_value=0, max_value=31)
_branch_offset = st.integers(min_value=-0x8000, max_value=0x7FFF)


@st.composite
def instructions(draw):
    spec = draw(st.sampled_from(sorted(SPECS.values(),
                                       key=lambda s: s.mnemonic)))
    fmt = spec.fmt
    m = spec.mnemonic
    if fmt is Format.R3:
        return Instruction(m, rd=draw(_regs), rs=draw(_regs),
                           rt=draw(_regs))
    if fmt is Format.R2:
        return Instruction(m, rd=draw(_regs), rs=draw(_regs))
    if fmt is Format.SHIFT:
        return Instruction(m, rd=draw(_regs), rt=draw(_regs),
                           shamt=draw(_shamt))
    if fmt is Format.I_ARITH:
        imm = draw(_imm_signed if spec.signed else _imm_unsigned)
        return Instruction(m, rt=draw(_regs), rs=draw(_regs), imm=imm)
    if fmt is Format.LUI:
        return Instruction(m, rt=draw(_regs), imm=draw(_imm_unsigned))
    if fmt is Format.MEM:
        return Instruction(m, rt=draw(_regs), rs=draw(_regs),
                           imm=draw(_imm_signed))
    if fmt is Format.BRANCH2:
        offset = draw(_branch_offset)
        return Instruction(m, rs=draw(_regs), rt=draw(_regs),
                           imm=ADDRESS + 4 + 4 * offset)
    if fmt is Format.BRANCH1:
        offset = draw(_branch_offset)
        return Instruction(m, rs=draw(_regs),
                           imm=ADDRESS + 4 + 4 * offset)
    if fmt is Format.JUMP:
        target = draw(st.integers(min_value=0,
                                  max_value=0x03FF_FFFF)) * 4
        return Instruction(m, imm=target)
    if fmt is Format.JR:
        return Instruction(m, rs=draw(_regs))
    if fmt is Format.JALR:
        return Instruction(m, rd=draw(_regs), rs=draw(_regs))
    return Instruction(m)


@given(instructions())
@settings(max_examples=400)
def test_encode_decode_roundtrip(instr):
    decoded = roundtrip(instr)
    assert decoded.mnemonic == instr.mnemonic
    assert decoded.rd == instr.rd
    assert decoded.rs == instr.rs
    assert decoded.rt == instr.rt
    assert decoded.imm == instr.imm
    assert decoded.shamt == instr.shamt


@given(instructions())
@settings(max_examples=200)
def test_text_render_never_crashes(instr):
    text = instr.text()
    assert isinstance(text, str) and text
