"""Reaching-definitions tests."""

from repro.asm.assembler import assemble
from repro.cfg.graph import build_function_cfgs
from repro.dataflow.reachdefs import ENTRY, ReachingDefinitions
from repro.isa.registers import A0, RA, T0, T1, V0


def rd_of(source, name="main"):
    program = assemble(source)
    cfg = build_function_cfgs(program)[name]
    return program, ReachingDefinitions(cfg)


class TestStraightLine:
    def test_local_def_reaches(self):
        src = (".text\n.ent main\nmain:\n"
               "li $t0, 1\n"          # 0x400000
               "addu $t1, $t0, $t0\n"  # 0x400004
               "jr $ra\n.end main\n")
        program, rd = rd_of(src)
        assert rd.reaching(0x400004, T0) == {0x400000}

    def test_redefinition_kills(self):
        src = (".text\n.ent main\nmain:\n"
               "li $t0, 1\n"
               "li $t0, 2\n"
               "addu $t1, $t0, $t0\n"
               "jr $ra\n.end main\n")
        _, rd = rd_of(src)
        assert rd.reaching(0x400008, T0) == {0x400004}

    def test_live_in_is_entry(self):
        src = (".text\n.ent main\nmain:\n"
               "addu $t1, $a0, $a0\njr $ra\n.end main\n")
        _, rd = rd_of(src)
        assert rd.reaching(0x400000, A0) == {ENTRY}


class TestBranches:
    def test_merge_of_two_defs(self):
        src = (".text\n.ent main\nmain:\n"
               "beqz $a0, alt\n"       # 0x400000
               "li $t0, 1\n"           # 0x400004
               "b join\n"              # 0x400008
               "alt: li $t0, 2\n"      # 0x40000c
               "join: addu $t1, $t0, $t0\n"  # 0x400010
               "jr $ra\n.end main\n")
        _, rd = rd_of(src)
        assert rd.reaching(0x400010, T0) == {0x400004, 0x40000C}

    def test_loop_back_edge_def_reaches_header(self):
        src = (".text\n.ent main\nmain:\n"
               "li $t0, 0\n"                 # 0x400000
               "loop: addiu $t0, $t0, 1\n"   # 0x400004
               "li $t2, 9\n"                 # 0x400008
               "blt $t0, $t2, loop\n"        # two instructions (pseudo)
               "jr $ra\n.end main\n")
        _, rd = rd_of(src)
        # at the loop header, both the init and the loop increment reach
        assert rd.reaching(0x400004, T0) == {0x400000, 0x400004}


class TestCalls:
    def test_call_defines_v0(self):
        src = (".text\n.ent main\nmain:\n"
               "jal helper\n"            # 0x400000
               "addu $t0, $v0, $v0\n"    # 0x400004
               "jr $ra\n.end main\n"
               ".ent helper\nhelper: li $v0, 5\njr $ra\n.end helper\n")
        _, rd = rd_of(src)
        assert rd.reaching(0x400004, V0) == {0x400000}

    def test_call_kills_temporaries(self):
        src = (".text\n.ent main\nmain:\n"
               "li $t0, 1\n"             # 0x400000
               "jal helper\n"            # 0x400004
               "addu $t1, $t0, $t0\n"    # 0x400008
               "jr $ra\n.end main\n"
               ".ent helper\nhelper: jr $ra\n.end helper\n")
        _, rd = rd_of(src)
        # the call clobbers $t0: its def site is now the call itself
        assert rd.reaching(0x400008, T0) == {0x400004}

    def test_call_preserves_saved_regs(self):
        src = (".text\n.ent main\nmain:\n"
               "li $s0, 1\n"             # 0x400000
               "jal helper\n"
               "addu $t1, $s0, $s0\n"    # 0x400008
               "jr $ra\n.end main\n"
               ".ent helper\nhelper: jr $ra\n.end helper\n")
        _, rd = rd_of(src)
        assert rd.reaching(0x400008, 16) == {0x400000}


class TestQueries:
    def test_zero_register_always_entry(self):
        src = ".text\n.ent main\nmain: jr $ra\n.end main\n"
        _, rd = rd_of(src)
        assert rd.reaching(0x400000, 0) == {ENTRY}

    def test_instruction_at(self):
        src = (".text\n.ent main\nmain:\nli $t0, 3\njr $ra\n.end main\n")
        _, rd = rd_of(src)
        assert rd.instruction_at(0x400000).mnemonic == "addiu"
