"""Smoke + shape tests for the table experiments not covered in
test_experiments (tables 2, 3, 4, 8, 9, 10) and the cold-code
generator."""

import pytest

from repro.experiments import (
    table02, table03, table04, table05, table08, table09, table10,
)
from repro.pipeline.session import Session
from repro.workloads import coldcode

NAMES = ("129.compress", "181.mcf")


@pytest.fixture(scope="module")
def session(tmp_path_factory):
    return Session(scale=0.03,
                   cache_dir=tmp_path_factory.mktemp("cache"))


class TestTable02:
    def test_columns_scientific(self, session):
        table = table02.run(session, names=NAMES)
        for row in table.rows:
            assert "e+" in row[1]     # scientific notation
            assert "e+" in row[2]

    def test_accesses_below_instructions(self, session):
        table = table02.run(session, names=NAMES)
        for row in table.rows:
            assert float(row[2]) < float(row[1])
            assert float(row[3]) <= float(row[2])


class TestTrainingTables:
    def test_table03_has_h1_classes(self, session):
        table = table03.run(session, names=NAMES)
        class_names = [row[0] for row in table.rows]
        assert any(name.startswith("H1:sp=") for name in class_names)
        for row in table.rows:
            found = int(row[2].split()[0])
            relevant = int(row[3].split()[0])
            assert 0 <= relevant <= found <= len(NAMES)

    def test_table04_reports_percentages(self, session):
        table = table04.run(session, names=NAMES)
        # the class may be absent on a 2-benchmark micro-session, but
        # the note always reports nature and weight
        assert any("nature=" in note for note in table.notes)

    def test_table05_weights_parse(self, session):
        table = table05.run(session, names=NAMES)
        for row in table.rows:
            float(row[2])     # paper weight
            float(row[3])     # retrained weight
        # the negative classes always carry negative retrained weights
        ag9 = next(r for r in table.rows if r[0] == "AG9")
        assert float(ag9[3]) < 0


class TestSweepTables:
    def test_table08_pi_constant_across_assocs(self, session):
        table = table08.run(session, names=NAMES)
        assert table.headers[1] == "pi"
        assert len(table.headers) == 5    # bench, pi, 3 rho columns

    def test_table09_four_sizes(self, session):
        table = table09.run(session, names=NAMES)
        assert [h for h in table.headers if h.endswith("rho")] == [
            "8k rho", "16k rho", "32k rho", "64k rho"]

    def test_table10_held_out(self, session):
        table = table10.run(session, names=("022.li",))
        assert table.rows[0][0] == "022.li"
        assert "/" in table.rows[0][1]


class TestColdCode:
    def test_block_structure(self):
        block = coldcode.block("xyz", functions=6)
        assert "struct xyz_cold_rec" in block.declarations
        assert "xyz_cold_path" in block.functions
        assert block.entry == "xyz_cold_path"

    def test_guard_fires_rarely(self):
        block = coldcode.block("xyz")
        guard = block.guard("value", "salt")
        assert "& 8191" in guard
        assert "xyz_cold_path" in guard

    def test_warm_guard_targets_audit(self):
        block = coldcode.block("xyz")
        warm = block.warm_guard("value")
        assert "& 1023" in warm
        assert "xyz_audit_0" in warm

    def test_generated_code_compiles_and_runs(self):
        from repro.compiler.driver import compile_source
        from repro.machine.simulator import run_program
        block = coldcode.block("t", functions=6)
        source = f"""
{block.declarations}
{block.functions}
int main() {{
    int i;
    for (i = 0; i < 20; i = i + 1)
        t_cold_path(i);
    print_int(t_cold_hits);
    return 0;
}}
"""
        program = compile_source(source)
        result = run_program(program)
        assert result.exit_code == 0
        assert result.output and result.output[0] >= 0

    def test_cold_functions_add_structured_loads(self):
        from repro.compiler.driver import compile_source
        from repro.patterns.builder import build_load_infos
        block = coldcode.block("t")
        source = f"""
{block.declarations}
{block.functions}
int main() {{ t_cold_path(3); return 0; }}
"""
        program = compile_source(source)
        infos = build_load_infos(program)
        cold = [i for i in infos.values()
                if i.function.startswith("t_")]
        assert any(f.deref_depth >= 1 for i in cold
                   for f in i.features)
        assert any(f.has_mul or f.has_shift for i in cold
                   for f in i.features)
