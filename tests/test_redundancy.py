"""Redundant-load analyzer: semantics, the naive oracle, wiring.

Pins the analyzer's exact semantics on crafted traces (first-touch
freshness, reload vs reload-after-store, prefetch transparency),
differentials it against the quadratic backward-scanning reference,
proves streamed inputs bit-identical, and round-trips the
``redundancy`` op through the AG cross-tab, the service protocol, and
the CLI.
"""

import json
import random

import pytest

from repro.__main__ import main
from repro.machine.trace import LOAD, PREFETCH, STORE, MemoryTrace
from repro.pipeline.session import Session
from repro.redundancy import (LoadRedundancy, RedundancyStats,
                              ag_crosstab, analyze_redundancy,
                              naive_redundancy)
from repro.service.ops import COMPUTE
from repro.service.protocol import ProtocolError, parse_request
from repro.store.tracestore import TraceStore
from tests.conftest import SAMPLE_SOURCE


def _trace(rows) -> MemoryTrace:
    trace = MemoryTrace()
    for pc, address, kind in rows:
        trace.append(pc, address, kind)
    return trace


class TestAnalyzerSemantics:
    def test_first_touch_is_fresh(self):
        stats = analyze_redundancy(_trace([
            (0x10, 100, LOAD), (0x10, 200, LOAD), (0x10, 300, LOAD)]))
        load = stats.loads[0x10]
        assert load.accesses == 3
        assert load.redundant == 0
        assert load.fresh == 3
        assert load.ratio == 0.0

    def test_reload_of_loaded_address(self):
        stats = analyze_redundancy(_trace([
            (0x10, 100, LOAD), (0x20, 100, LOAD), (0x10, 100, LOAD)]))
        assert stats.loads[0x20].redundant == 1
        assert stats.loads[0x20].reload_after_store == 0
        assert stats.loads[0x10].redundant == 1  # its own second visit
        assert stats.total_redundant == 2

    def test_reload_after_store(self):
        stats = analyze_redundancy(_trace([
            (0x30, 100, STORE), (0x10, 100, LOAD), (0x10, 100, LOAD)]))
        load = stats.loads[0x10]
        # first load reloads the stored value; second reloads a load
        assert load.redundant == 2
        assert load.reload_after_store == 1

    def test_store_is_not_a_load_access(self):
        stats = analyze_redundancy(_trace([
            (0x30, 100, STORE), (0x30, 100, STORE)]))
        assert stats.loads == {}
        assert stats.total_loads == 0
        assert stats.ratio == 0.0

    def test_prefetch_is_transparent(self):
        # a prefetch neither makes the next load redundant nor breaks
        # the load -> load reload chain it sits inside
        stats = analyze_redundancy(_trace([
            (0x40, 100, PREFETCH), (0x10, 100, LOAD),
            (0x40, 100, PREFETCH), (0x10, 100, LOAD)]))
        load = stats.loads[0x10]
        assert load.accesses == 2
        assert load.redundant == 1
        assert load.reload_after_store == 0

    def test_addresses_are_independent(self):
        stats = analyze_redundancy(_trace([
            (0x10, 100, LOAD), (0x10, 200, LOAD),
            (0x10, 100, LOAD), (0x10, 200, LOAD)]))
        assert stats.loads[0x10].redundant == 2

    def test_empty_trace(self):
        stats = analyze_redundancy(_trace([]))
        assert stats.loads == {}
        assert stats.total_reload_after_store == 0

    def test_pcs_by_redundant_orders_worst_first(self):
        stats = RedundancyStats(loads={
            3: LoadRedundancy(accesses=5, redundant=1),
            1: LoadRedundancy(accesses=5, redundant=4),
            2: LoadRedundancy(accesses=5, redundant=4),
        })
        assert [pc for pc, _ in stats.pcs_by_redundant()] == [1, 2, 3]


class TestNaiveReference:
    def test_agrees_on_crafted_trace(self):
        rows = [(0x10, 100, LOAD), (0x30, 100, STORE),
                (0x10, 100, LOAD), (0x40, 100, PREFETCH),
                (0x10, 100, LOAD), (0x20, 200, LOAD),
                (0x20, 200, LOAD)]
        trace = _trace(rows)
        assert naive_redundancy(trace).loads \
            == analyze_redundancy(trace).loads

    def test_agrees_on_random_traces(self):
        rng = random.Random(1234)
        for _ in range(20):
            rows = []
            for _ in range(rng.randint(0, 300)):
                rows.append((rng.choice((0x10, 0x20, 0x30)),
                             rng.choice((100, 104, 200, 204, 300)),
                             rng.choice((LOAD, LOAD, LOAD, STORE,
                                         PREFETCH))))
            trace = _trace(rows)
            assert naive_redundancy(trace).loads \
                == analyze_redundancy(trace).loads


class TestStreaming:
    def test_chunked_and_stored_inputs_bit_identical(self, tmp_path):
        rng = random.Random(99)
        rows = [(rng.choice((0x10, 0x20)), rng.randrange(64) * 4,
                 rng.choice((LOAD, LOAD, STORE, PREFETCH)))
                for _ in range(500)]
        trace = _trace(rows)
        reference = analyze_redundancy(trace)
        store = TraceStore(tmp_path / "traces")
        store.put_trace("t", trace, chunk_accesses=64)
        for source in (trace.chunk_stream(7), trace.chunk_stream(1024),
                       store.open("t")):
            assert analyze_redundancy(source).loads == reference.loads


class TestAgCrosstab:
    def test_pcs_without_infos_are_skipped(self):
        stats = RedundancyStats(loads={
            0x999: LoadRedundancy(accesses=10, redundant=5)})
        totals = ag_crosstab(stats, load_infos={}, load_exec={})
        assert all(row["loads"] == 0 for row in totals.values())

    def test_real_program_attribution(self):
        from repro.api import analyze_program
        report = analyze_program(SAMPLE_SOURCE)
        stats = analyze_redundancy(report.execution.trace)
        load_exec = report.profile.load_exec_counts()
        totals = ag_crosstab(stats, report.load_infos, load_exec)
        # every class row is internally consistent
        for row in totals.values():
            assert 0 <= row["reload_after_store"] <= row["redundant"] \
                <= row["loads"]
        # classes exist that actually saw traffic
        assert any(row["loads"] for row in totals.values())


RED_SRC = """
int a[256];
int main() {
  int i; int s;
  s = 0;
  for (i = 0; i < 512; i = i + 1) {
    s = s + a[i & 7];
    a[i & 7] = s;
    s = s + a[i & 7];
  }
  print_int(s);
  return 0;
}
"""


class TestSessionWiring:
    def test_session_redundancy_memoized_and_consistent(self,
                                                        tmp_path):
        session = Session(cache_dir=tmp_path)
        session.add_source("w", RED_SRC)
        stats = session.redundancy("w")
        assert stats.total_redundant > 0
        assert stats.total_reload_after_store > 0
        assert session.redundancy("w") is stats
        # a fresh session replays from the trace store identically
        other = Session(cache_dir=tmp_path)
        other.add_source("w", RED_SRC)
        assert other.redundancy("w").loads == stats.loads


class TestServiceOp:
    def _params(self, **over):
        payload = {"op": "redundancy",
                   "params": {"source": RED_SRC, **over}}
        return parse_request(json.dumps(payload).encode()).params

    def test_round_trip(self):
        result = COMPUTE["redundancy"](self._params())
        assert result["steps"] > 0
        assert result["total_redundant"] <= result["total_loads"]
        assert result["total_reload_after_store"] \
            <= result["total_redundant"]
        for row in result["loads"].values():
            assert row["redundant"] <= row["accesses"]
        assert set(result["classes"])  # AG rows present
        for row in result["classes"].values():
            assert row["reload_after_store"] <= row["redundant"] \
                <= row["loads"]

    def test_deterministic_across_store_state(self):
        params = self._params()
        assert COMPUTE["redundancy"](params) \
            == COMPUTE["redundancy"](params)

    def test_bad_params_rejected(self):
        with pytest.raises(ProtocolError):
            self._params(source="")
        with pytest.raises(ProtocolError):
            self._params(max_steps="many")


class TestCli:
    @pytest.fixture
    def source_file(self, tmp_path):
        path = tmp_path / "prog.c"
        path.write_text(RED_SRC)
        return str(path)

    def test_json_output(self, source_file, capsys):
        assert main(["redundancy", source_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total_redundant"] <= payload["total_loads"]
        assert payload["classes"]

    def test_human_output(self, source_file, capsys):
        assert main(["redundancy", source_file, "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "redundant loads /" in out
        assert "after store" in out
