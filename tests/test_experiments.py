"""Experiment harness tests on a miniature two-benchmark session."""

import pytest

from repro.experiments import (
    paperdata, report, runner, table01, table05, table06, table07,
    table11, table12, table13, table14,
)
from repro.experiments.common import Table, mean, pct
from repro.pipeline.session import Session

NAMES = ("129.compress", "181.mcf")


@pytest.fixture(scope="module")
def session(tmp_path_factory):
    return Session(scale=0.03,
                   cache_dir=tmp_path_factory.mktemp("cache"))


class TestTableObject:
    def test_render_alignment(self):
        table = Table("Table X", "demo", ["A", "BBB"], [])
        table.add_row("one", 1)
        table.add_row("twotwo", 22)
        text = table.render()
        lines = text.splitlines()
        assert lines[0].startswith("Table X: demo")
        assert len({line.index("B") for line in lines[1:2]}) == 1

    def test_cell_lookup(self):
        table = Table("T", "t", ["Benchmark", "pi"])
        table.add_row("x", "10%")
        assert table.cell("x", "pi") == "10%"
        with pytest.raises(KeyError):
            table.cell("nope", "pi")

    def test_pct_and_mean(self):
        assert pct(0.1234) == "12%"
        assert pct(0.1234, 2) == "12.34%"
        assert mean([1.0, 3.0]) == 2.0
        assert mean([]) == 0.0


class TestTables:
    def test_table06_lists_all(self, session):
        table = table06.run(session)
        assert len(table.rows) == 18

    def test_table01_structure(self, session):
        table = table01.run(session, names=NAMES)
        assert [row[0] for row in table.rows[:-1]] == list(NAMES)
        assert table.rows[-1][0] == "AVERAGE"

    def test_table07_two_inputs(self, session):
        table = table07.run(session, names=NAMES)
        for row in table.rows[:-1]:
            assert "/" in row[1] and "/" in row[2]

    def test_table11_pi_without_freq_at_least_with(self, session):
        table = table11.run(session, names=NAMES)
        for row in table.rows[:-1]:
            with_freq = float(row[1].rstrip("%"))
            without = float(row[4].rstrip("%"))
            assert without >= with_freq - 1e-9

    def test_table12_baselines_less_precise(self, session):
        ours = table11.run(session, names=NAMES)
        baselines = table12.run(session, names=NAMES)
        for our_row, base_row in zip(ours.rows[:-1],
                                     baselines.rows[:-1]):
            our_pi = float(our_row[1].rstrip("%"))
            okn_pi = float(base_row[1].rstrip("%"))
            assert okn_pi > our_pi

    def test_table13_monotone_pi(self, session):
        table = table13.run(session, names=NAMES)
        for row in table.rows[:-1]:
            pis = [float(cell.split("/")[0].strip().rstrip("%"))
                   for cell in row[1:]]
            assert pis == sorted(pis, reverse=True)

    def test_table14_combined_sharpens(self, session):
        combined = table14.run(session, names=NAMES)
        alone = table11.run(session, names=NAMES)
        for c_row, a_row in zip(combined.rows[:-1], alone.rows[:-1]):
            pi_combined = float(c_row[1].rstrip("%"))
            pi_alone = float(a_row[1].rstrip("%"))
            assert pi_combined <= pi_alone + 1e-9

    def test_table05_has_all_classes(self, session):
        table = table05.run(session, names=NAMES)
        assert [row[0] for row in table.rows] == [
            f"AG{i}" for i in range(1, 10)]


class TestRunnerAndReport:
    def test_run_tables_subset(self, session):
        results = runner.run_tables(session, [6], echo=False)
        assert set(results) == {6}

    def test_report_written(self, session, tmp_path):
        results = runner.run_tables(session, [6], echo=False)
        path = tmp_path / "EXP.md"
        report.write_report(results, str(path))
        text = path.read_text()
        assert "Table 6" in text
        assert text.startswith("# EXPERIMENTS")

    def test_report_shape_checks_for_table12(self, session):
        results = runner.run_tables(session, [11, 12], echo=False)
        text = report.render_report(results)
        assert "Shape checks" in text
        assert "[x]" in text

    def test_paperdata_complete(self):
        assert len(paperdata.TABLE1) == 18
        assert len(paperdata.TABLE11) == 18
        assert len(paperdata.TABLE12) == 18
        assert len(paperdata.TABLE7) == 11
        assert len(paperdata.TABLE10) == 7
        assert len(paperdata.TABLE5_WEIGHTS) == 9

    def test_cli_table6(self, capsys, tmp_path):
        code = runner.main(["--tables", "6", "--scale", "0.03",
                            "--no-disk-cache"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 6" in out

    def test_cli_rejects_unknown_table(self):
        with pytest.raises(SystemExit):
            runner.main(["--tables", "99"])
