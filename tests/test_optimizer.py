"""AST optimizer tests: folding, identities, strength reduction."""

from repro.lang import astnodes as ast
from repro.lang.parser import parse
from repro.lang.sema import analyze
from repro.compiler.optimizer import fold_expr, fold_unit


def folded_return(source):
    unit = analyze(parse(source))
    fold_unit(unit)
    return unit.functions[-1].body.statements[-1].value


class TestFolding:
    def test_constant_arithmetic(self):
        expr = folded_return("int main() { return 2 * 3 + 4; }")
        assert isinstance(expr, ast.IntLit) and expr.value == 10

    def test_float_folding(self):
        expr = folded_return("int main() { return (int)(1.5 + 2.5); }")
        assert isinstance(expr, ast.IntLit) and expr.value == 4

    def test_comparison_folds(self):
        expr = folded_return("int main() { return 3 < 5; }")
        assert isinstance(expr, ast.IntLit) and expr.value == 1

    def test_sizeof_folds(self):
        expr = folded_return(
            "struct p { int a; int b; };"
            "int main() { return sizeof(struct p); }")
        assert isinstance(expr, ast.IntLit) and expr.value == 8

    def test_nested_folding(self):
        expr = folded_return("int main() { return (1 + 2) * (3 + 4); }")
        assert isinstance(expr, ast.IntLit) and expr.value == 21


class TestIdentities:
    def test_add_zero(self):
        expr = folded_return("int main(int x) { return x + 0; }")
        assert isinstance(expr, ast.Var)

    def test_zero_add(self):
        expr = folded_return("int main(int x) { return 0 + x; }")
        assert isinstance(expr, ast.Var)

    def test_sub_zero(self):
        expr = folded_return("int main(int x) { return x - 0; }")
        assert isinstance(expr, ast.Var)

    def test_mul_one(self):
        expr = folded_return("int main(int x) { return x * 1; }")
        assert isinstance(expr, ast.Var)

    def test_div_one(self):
        expr = folded_return("int main(int x) { return x / 1; }")
        assert isinstance(expr, ast.Var)


class TestStrengthReduction:
    def test_mul_pow2_becomes_shift(self):
        expr = folded_return("int main(int x) { return x * 16; }")
        assert isinstance(expr, ast.Binary) and expr.op == "<<"
        assert expr.right.value == 4

    def test_pow2_mul_commuted(self):
        expr = folded_return("int main(int x) { return 8 * x; }")
        assert isinstance(expr, ast.Binary) and expr.op == "<<"
        assert expr.right.value == 3

    def test_non_pow2_mul_unchanged(self):
        expr = folded_return("int main(int x) { return x * 12; }")
        assert isinstance(expr, ast.Binary) and expr.op == "*"

    def test_float_mul_not_reduced(self):
        expr = folded_return(
            "int main() { float f; f = 2.0; return (int)(f * 4.0); }")
        # (float)*4.0 is a float multiply: must stay a multiply
        inner = expr.operand if isinstance(expr, ast.Cast) else expr
        assert isinstance(inner, ast.Binary) and inner.op == "*"


class TestTreeRewrites:
    def test_fold_inside_statements(self):
        unit = analyze(parse(
            "int main() { int a; for (a = 1 + 1; a < 2 * 4; a = a + 1)"
            " print_int(a); return 0; }"))
        fold_unit(unit)
        for_stmt = unit.functions[0].body.statements[1]
        assert for_stmt.init.value.value == 2
        assert for_stmt.cond.right.value == 8

    def test_fold_call_arguments(self):
        unit = analyze(parse(
            "int main() { print_int(6 * 7); return 0; }"))
        fold_unit(unit)
        call = unit.functions[0].body.statements[0].expr
        assert call.args[0].value == 42

    def test_folding_preserves_semantics(self):
        from tests.conftest import compile_and_run
        src = r"""
        int main() {
            int x;
            x = 5;
            print_int(x * 8 + 2 * 3 - 0);
            print_int((x + 0) * (1 * 7));
            return 0;
        }
        """
        _, plain = compile_and_run(src, optimize=False)
        _, opt = compile_and_run(src, optimize=True)
        assert plain.output == opt.output == [46, 35]
