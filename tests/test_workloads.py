"""Workload suite tests: every benchmark compiles, runs deterministically
in both modes, has two distinct inputs, and exhibits its intended memory
idiom."""

import pytest

from repro.cache.config import BASELINE_CONFIG
from repro.cache.model import simulate_trace
from repro.compiler.driver import compile_source
from repro.machine.simulator import run_program
from repro.workloads.base import TEST, TRAINING
from repro.workloads import registry
from repro.workloads.registry import ALL_WORKLOADS, BY_NAME, get, names

SCALE = 0.04          # miniature instances for the test suite
MAX_STEPS = 30_000_000

_cache = {}


def run_workload(name, input_name="input1", optimize=False,
                 scale=SCALE):
    key = (name, input_name, optimize, scale)
    if key not in _cache:
        source = get(name).generate(input_name, scale=scale)
        program = compile_source(source, optimize=optimize)
        result = run_program(program, max_steps=MAX_STEPS)
        _cache[key] = (program, result)
    return _cache[key]


class TestRegistry:
    def test_eighteen_workloads(self):
        assert len(ALL_WORKLOADS) == 18

    def test_split_11_training_7_test(self):
        assert len(registry.training_workloads()) == 11
        assert len(registry.test_workloads()) == 7

    def test_names_unique(self):
        assert len(BY_NAME) == 18

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            get("999.nonesuch")

    def test_names_filter(self):
        assert set(names(TRAINING)) | set(names(TEST)) == set(names())

    def test_every_workload_has_two_inputs(self):
        for workload in ALL_WORKLOADS:
            assert workload.input_names() == ["input1", "input2"]

    def test_inputs_differ(self):
        for workload in ALL_WORKLOADS:
            first, second = workload.inputs
            assert first.params != second.params

    def test_unknown_input_raises(self):
        with pytest.raises(KeyError):
            ALL_WORKLOADS[0].generate("input3")

    def test_scaling_shrinks_params(self):
        workload = get("181.mcf")
        big = workload.generate("input1", scale=1.0)
        small = workload.generate("input1", scale=0.1)
        assert big != small


@pytest.mark.parametrize("name", names())
class TestExecution:
    def test_compiles_and_runs_unoptimized(self, name):
        program, result = run_workload(name)
        assert result.exit_code == 0
        assert result.output, f"{name} produced no output"
        assert result.steps > 1000

    def test_optimized_matches_unoptimized_output(self, name):
        _, plain = run_workload(name, optimize=False)
        _, opt = run_workload(name, optimize=True)
        assert plain.output == opt.output, (
            f"{name}: optimized output diverges")

    def test_deterministic(self, name):
        source = get(name).generate("input1", scale=SCALE)
        first = run_program(compile_source(source),
                            max_steps=MAX_STEPS)
        _, second = run_workload(name)
        assert first.output == second.output

    def test_second_input_runs(self, name):
        program, result = run_workload(name, input_name="input2")
        assert result.exit_code == 0

    def test_produces_memory_traffic(self, name):
        _, result = run_workload(name)
        assert result.trace.load_count > 100
        assert result.trace.store_count > 10


@pytest.mark.parametrize("name", names())
class TestMissBehaviour:
    def test_produces_cache_misses(self, name):
        _, result = run_workload(name)
        stats = simulate_trace(result.trace, BASELINE_CONFIG)
        assert stats.total_load_misses > 0, (
            f"{name} never misses: working set too small")

    def test_miss_distribution_skewed(self, name):
        """The paper's premise: few loads cause most misses."""
        program, result = run_workload(name)
        stats = simulate_trace(result.trace, BASELINE_CONFIG)
        ranked = stats.loads_by_misses()
        total = stats.total_load_misses
        top = max(3, len(ranked) // 10)
        covered = sum(m for _, m in ranked[:top])
        assert covered / total > 0.5, (
            f"{name}: top loads cover only {covered / total:.0%}")


class TestIdioms:
    """Spot-check that flagship workloads show their intended pattern
    classes."""

    def _features(self, name):
        from repro.patterns.builder import build_load_infos
        program, _ = run_workload(name)
        infos = build_load_infos(program)
        return [f for info in infos.values() for f in info.features]

    def test_mcf_has_two_level_derefs(self):
        feats = self._features("181.mcf")
        assert any(f.deref_depth >= 2 for f in feats)

    def test_mcf_has_recurrence(self):
        feats = self._features("181.mcf")
        assert any(f.has_recurrence for f in feats)

    def test_compress_has_shift_indexing(self):
        feats = self._features("129.compress")
        assert any(f.has_shift or f.has_mul for f in feats)

    def test_tomcatv_has_mul_indexing(self):
        feats = self._features("101.tomcatv")
        assert any(f.has_mul or f.has_shift for f in feats)

    def test_li_pointer_chasing(self):
        feats = self._features("022.li")
        assert any(f.deref_depth >= 1 and f.has_recurrence
                   for f in feats)
