"""Weight-training tests, anchored on the paper's own worked example.

Table 4 of the paper lists m/n for class 5 ('sp=1,gp=1') on seven
benchmarks and derives W(F5) = (4/48 + 6/25 + 30/67 + 6/6 + 8/13)/5 ~ 0.47.
We rebuild exactly that dataset and check our implementation of the
Section 7 formulas lands on the same weight, relevance calls and nature.
"""

import pytest

from repro.heuristic.classes import PATTERN_CLASS_NAMES
from repro.heuristic.training import (
    BenchmarkTrainingData, TrainingReport, evaluate_class, train_weights,
)

#: (benchmark, m_j %, n_j %) from the paper's Table 4.
PAPER_TABLE4 = [
    ("099.go", 0.16, 0.13),
    ("147.vortex", 4.34, 48.19),
    ("164.gzip", 0.28, 0.03),
    ("175.vpr", 6.27, 25.14),
    ("179.art", 30.44, 67.17),
    ("183.equake", 6.83, 6.72),
    ("197.parser", 8.07, 13.17),
]

RELEVANT = {"147.vortex", "175.vpr", "179.art", "183.equake",
            "197.parser"}


def bench_from_mn(name: str, m_pct: float, n_pct: float,
                  class_name: str = "F5") -> BenchmarkTrainingData:
    """Construct data whose class m/n equal the given percentages."""
    executions = 1_000_000
    misses = round(m_pct / 100.0 * executions)
    total = round(misses / (n_pct / 100.0))
    return BenchmarkTrainingData(
        name=name,
        class_members={class_name: {1}},
        load_exec={1: executions},
        load_miss={1: misses},
        total_misses=total,
    )


@pytest.fixture
def table4_data():
    return [bench_from_mn(*row) for row in PAPER_TABLE4]


class TestPaperExample:
    def test_m_and_n_roundtrip(self, table4_data):
        for data, (_, m_pct, n_pct) in zip(table4_data, PAPER_TABLE4):
            assert data.m_value("F5") * 100 == pytest.approx(m_pct,
                                                             rel=1e-3)
            assert data.n_value("F5") * 100 == pytest.approx(n_pct,
                                                             rel=1e-2)

    def test_relevance_calls_match_paper(self, table4_data):
        evaluation = evaluate_class("F5", table4_data)
        assert set(evaluation.relevant_in) == RELEVANT
        assert set(evaluation.found_in) == {b for b, _, _ in
                                            PAPER_TABLE4}

    def test_class5_is_positive(self, table4_data):
        evaluation = evaluate_class("F5", table4_data)
        assert evaluation.nature == "positive"

    def test_weight_matches_paper(self, table4_data):
        evaluation = evaluate_class("F5", table4_data)
        # exact mean of m/n over the five relevant benchmarks is 0.484;
        # the paper rounds each term and prints 0.47
        assert evaluation.weight == pytest.approx(0.484, abs=0.02)


class TestClassNature:
    def test_negative_when_n_tiny_everywhere(self):
        data = [bench_from_mn(f"b{i}", 5.0, 0.2) for i in range(4)]
        evaluation = evaluate_class("F5", data)
        assert evaluation.nature == "negative"

    def test_neutral_when_weak_on_one_relevant(self):
        data = [
            bench_from_mn("good", 10.0, 20.0),
            bench_from_mn("weak", 1.1, 60.0),   # r = 0.018 < 1/20
        ]
        evaluation = evaluate_class("F5", data)
        assert evaluation.nature == "neutral"
        assert evaluation.weight == 0.0

    def test_unseen_class_is_neutral(self):
        data = [bench_from_mn("b", 5.0, 20.0)]
        evaluation = evaluate_class("other", data)
        assert evaluation.nature == "neutral"
        assert evaluation.found_in == []

    def test_irrelevant_benchmarks_excluded_from_weight(self):
        data = [
            bench_from_mn("strong", 10.0, 10.0),   # r = 1.0
            bench_from_mn("tiny", 0.5, 0.6),       # both below threshold
        ]
        evaluation = evaluate_class("F5", data)
        assert evaluation.relevant_in == ["strong"]
        assert evaluation.weight == pytest.approx(1.0)


class TestTrainWeights:
    def make_data(self):
        """Three benchmarks exercising several aggregate classes."""
        benches = []
        for name, m_pct, n_pct in (("a", 10, 25), ("b", 20, 50),
                                   ("c", 8, 10)):
            executions = 1_000_000
            misses = round(m_pct / 100 * executions)
            total = round(misses / (n_pct / 100))
            benches.append(BenchmarkTrainingData(
                name=name,
                class_members={"AG4": {1}, "AG5": {2}, "AG3": {1, 2}},
                load_exec={1: executions, 2: executions},
                load_miss={1: misses, 2: misses},
                total_misses=2 * total,
            ))
        return benches

    def test_positive_weights_assigned(self):
        report = train_weights(self.make_data())
        assert report.weights["AG4"] > 0
        assert report.weights["AG5"] > 0

    def test_negative_weights_derived_from_positive(self):
        report = train_weights(self.make_data())
        ag9 = report.weights["AG9"]
        ag8 = report.weights["AG8"]
        assert ag9 < 0
        assert ag8 == pytest.approx(ag9 / 2, abs=0.01)

    def test_unseen_classes_get_zero(self):
        report = train_weights(self.make_data())
        assert report.weights["AG7"] == 0.0

    def test_report_structure(self):
        report = train_weights(self.make_data())
        assert set(report.benchmarks) == {"a", "b", "c"}
        for name in PATTERN_CLASS_NAMES:
            assert name in report.evaluations

    def test_trimmed_mean_excludes_extremes(self):
        # positive weights 0.1, 0.5, 2.0 -> trimmed mean = 0.5
        benches = []
        executions = 1_000_000
        for cls, ratio in (("AG4", 0.1), ("AG5", 0.5), ("AG6", 2.0)):
            misses = 100_000
            # choose totals so that W = m/n equals `ratio` exactly
            total = round(executions * ratio)
            benches.append(BenchmarkTrainingData(
                name=f"bench_{cls}",
                class_members={cls: {1}},
                load_exec={1: executions},
                load_miss={1: misses},
                total_misses=total,
            ))
        report = train_weights(benches)
        assert report.weights["AG9"] == pytest.approx(-0.5, abs=0.01)
        assert report.weights["AG8"] == pytest.approx(-0.25, abs=0.01)


class TestCollect:
    def test_collect_builds_membership(self, sample_program):
        from repro.machine.simulator import run_program
        from repro.cache.model import simulate_trace
        from repro.cache.config import BASELINE_CONFIG
        from repro.patterns.builder import build_load_infos
        result = run_program(sample_program)
        stats = simulate_trace(result.trace, BASELINE_CONFIG)
        infos = build_load_infos(sample_program)
        data = BenchmarkTrainingData.collect(
            name="sample",
            load_infos=infos,
            exec_counts=result.load_exec_counts(sample_program),
            load_misses=stats.load_misses,
            hotspot_loads=set(),
        )
        # aggregate and fine classes both present
        assert any(k.startswith("H1:") for k in data.class_members)
        assert any(k.startswith("AG") for k in data.class_members)
        assert data.total_misses == stats.total_load_misses
