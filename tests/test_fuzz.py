"""Fuzz-harness tests: generators, oracles, shrinker, self-check, CLI.

The harness itself needs pinning: generation must be deterministic (so
``--seed`` reproduces), every oracle must pass on clean code (so CI
failures mean real divergences), the shrinker must actually minimize,
and the mutation self-check must catch an injected bug end to end.
"""

import json

import pytest

from repro.asm.assembler import assemble
from repro.cache.config import CacheConfig
from repro.compiler.driver import compile_source
from repro.fuzz import (CASE_KINDS, DivergenceError, ORACLES,
                        OracleContext, generate_case, oracles_for,
                        run_fuzz, run_self_check)
from repro.fuzz.corpus import load_case, save_case, spec_digest
from repro.fuzz.generators import FuzzCase, gen_configs
from repro.fuzz.shrinker import shrink_case


class TestGenerators:
    @pytest.mark.parametrize("kind", CASE_KINDS)
    def test_same_seed_same_spec(self, kind):
        assert generate_case(kind, 7).spec == generate_case(kind, 7).spec

    @pytest.mark.parametrize("kind", CASE_KINDS)
    def test_seeds_vary(self, kind):
        specs = [generate_case(kind, seed).spec for seed in range(8)]
        assert any(spec != specs[0] for spec in specs[1:])

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            generate_case("fortran", 0)

    def test_minic_cases_compile(self):
        for seed in range(4):
            compile_source(generate_case("minic", seed).source())

    def test_asm_cases_assemble(self):
        for seed in range(4):
            assemble(generate_case("asm", seed).source())

    def test_trace_cases_build(self):
        case = generate_case("trace", 0)
        trace = case.trace()
        assert len(trace) == len(case.spec["rows"])
        # one access kind per static pc, as shared_access_counts assumes
        kinds_by_pc = {}
        for pc, _, kind in trace:
            kinds_by_pc.setdefault(pc, set()).add(kind)
        assert all(len(k) == 1 for k in kinds_by_pc.values())

    def test_generated_configs_are_valid(self):
        import random
        for seed in range(20):
            for entry in gen_configs(random.Random(seed)):
                CacheConfig(**entry)    # must not raise

    def test_trace_case_has_no_source(self):
        with pytest.raises(ValueError):
            generate_case("trace", 0).source()


class TestOracleRegistry:
    def test_selection_by_kind(self):
        names = {o.name for o in oracles_for("trace")}
        assert names == {"replay", "streaming", "tlb", "redundancy",
                         "invariants"}
        assert {o.name for o in oracles_for("minic")} == set(ORACLES)

    def test_unknown_oracle_rejected(self):
        with pytest.raises(ValueError, match="unknown oracle"):
            oracles_for("minic", ["engines", "nope"])

    def test_explicit_selection(self):
        selected = oracles_for("asm", ["engines"])
        assert [o.name for o in selected] == ["engines"]


class TestOraclesPassOnCleanCode:
    """Every oracle must accept seeded cases on an unmutated tree."""

    @pytest.mark.parametrize("kind", CASE_KINDS)
    def test_all_oracles_pass(self, kind):
        with OracleContext() as ctx:
            for seed in range(2):
                case = generate_case(kind, seed)
                for oracle in oracles_for(kind):
                    oracle.check(case, ctx)

    def test_run_fuzz_reports_clean(self):
        report = run_fuzz(seed=1, cases=3)
        assert report.ok
        assert report.cases_run == 3
        payload = report.to_dict()
        assert payload["ok"] is True
        json.dumps(payload)     # report must be JSON-able


class TestShrinker:
    def test_list_minimization(self):
        case = generate_case("trace", 0)
        rows = case.spec["rows"]
        marker = rows[len(rows) // 2]

        def predicate(candidate):
            return marker in candidate.spec["rows"]

        shrunk, evals = shrink_case(case, predicate)
        assert shrunk.spec["rows"] == [marker]
        assert evals > 0

    def test_scalar_minimization(self):
        case = generate_case("minic", 0)
        segment = case.spec["segments"][0]

        def predicate(candidate):
            segments = candidate.spec["segments"]
            return bool(segments) \
                and segments[0]["op"] == segment["op"]

        shrunk, _ = shrink_case(case, predicate)
        assert len(shrunk.spec["segments"]) == 1
        for key, value in shrunk.spec["segments"][0].items():
            if isinstance(value, int) and not isinstance(value, bool):
                assert value <= segment[key]

    def test_flaky_failure_left_unshrunk(self):
        case = generate_case("trace", 1)
        shrunk, evals = shrink_case(case, lambda c: False)
        assert shrunk.spec == case.spec
        assert evals == 1


class TestSelfCheck:
    def test_injected_off_by_one_is_caught_and_shrunk(self):
        outcome = run_self_check(seed=0, cases=6, max_shrink_evals=200)
        assert outcome["ok"] is True
        assert outcome["caught"] is True
        assert outcome["clean_after_restore"] is True
        # the reproducer is corpus-sized, not the raw generated trace
        assert outcome["shrunk_rows"] < outcome["original_rows"]
        assert outcome["shrunk_rows"] <= 50

    def test_mutation_restores_cleanly(self):
        from repro.cache.model import simulate_trace, \
            simulate_trace_multi
        case = generate_case("trace", 2)
        trace, config = case.trace(), case.cache_configs()[0]
        before = simulate_trace_multi(trace, [config])[0]
        run_self_check(seed=0, cases=2, max_shrink_evals=50)
        after = simulate_trace_multi(trace, [config])[0]
        assert after.load_misses == before.load_misses
        assert after.load_misses == \
            simulate_trace(trace, config).load_misses


class TestCorpusRoundTrip:
    def test_save_load_identity(self, tmp_path):
        case = generate_case("asm", 5)
        path = save_case(case, tmp_path, note="round trip")
        loaded = load_case(path)
        assert loaded.kind == case.kind
        assert loaded.spec == case.spec
        assert path.name == f"asm-{spec_digest(case.spec)}.json"

    def test_save_is_idempotent(self, tmp_path):
        case = generate_case("trace", 9)
        first = save_case(case, tmp_path)
        second = save_case(case, tmp_path)
        assert first == second
        assert len(list(tmp_path.glob("*.json"))) == 1

    def test_bad_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 99, "kind": "trace",
                                    "spec": {}}))
        with pytest.raises(ValueError, match="schema"):
            load_case(path)


class TestDivergenceReporting:
    def test_divergence_error_names_oracle(self):
        err = DivergenceError("replay", "boom")
        assert err.oracle == "replay"
        assert "replay" in str(err) and "boom" in str(err)

    def test_fuzz_records_and_shrinks_divergences(self, tmp_path):
        from repro.fuzz.runner import inject_eviction_off_by_one
        with inject_eviction_off_by_one():
            report = run_fuzz(seed=0, cases=4,
                              oracle_names=("replay",),
                              kinds=("trace",),
                              corpus_dir=tmp_path,
                              max_shrink_evals=150)
        assert not report.ok
        assert report.divergences
        first = report.divergences[0]
        assert first.oracle == "replay"
        assert first.shrunk_spec is not None
        assert len(first.shrunk_spec["rows"]) \
            <= len(first.spec["rows"])
        saved = list(tmp_path.glob("*.json"))
        assert saved and first.corpus_file in {p.name for p in saved}


class TestFuzzCli:
    def test_json_report_and_exit_code(self, tmp_path, capsys):
        from repro.__main__ import main
        report_path = tmp_path / "report.json"
        code = main(["fuzz", "--seed", "3", "--cases", "2",
                     "--report", str(report_path)])
        assert code == 0
        payload = json.loads(report_path.read_text())
        assert payload["ok"] is True
        assert payload["cases_run"] == 2
        summary = capsys.readouterr().err
        assert "2 cases" in summary and "0 divergence(s)" in summary

    def test_report_to_stdout(self, capsys):
        from repro.__main__ import main
        code = main(["fuzz", "--seed", "3", "--cases", "1",
                     "--oracles", "replay,invariants"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["oracle_runs"]) <= {"replay", "invariants"}

    def test_unknown_oracle_is_an_error(self):
        from repro.__main__ import main
        with pytest.raises(ValueError, match="unknown oracle"):
            main(["fuzz", "--cases", "1", "--oracles", "bogus"])


def _case_for_spec(kind, spec):
    return FuzzCase(kind=kind, spec=spec, label="handmade")


class TestInvariantCheckers:
    def test_conservation_catches_bad_counts(self):
        from repro.fuzz.invariants import check_conservation
        case = generate_case("trace", 0)
        trace, config = case.trace(), CacheConfig()
        from repro.cache.model import simulate_trace
        stats = simulate_trace(trace, config)
        pc = next(iter(stats.load_accesses))
        stats.load_misses[pc] = stats.load_accesses[pc] + 1
        with pytest.raises(DivergenceError, match="misses"):
            check_conservation(trace, config, stats)

    def test_phi_stable_under_reordering(self):
        from repro.fuzz.invariants import check_phi_stability
        from repro.patterns.builder import build_load_infos
        program = compile_source(
            generate_case("minic", 8).source())
        check_phi_stability(build_load_infos(program))
