"""CFG tests: leaders, block partition, edges, dominators, natural loops."""

import pytest

from repro.asm.assembler import assemble
from repro.cfg.blocks import BlockMap, leader_addresses
from repro.cfg.graph import build_function_cfgs

LOOP_ASM = r"""
.text
.ent main
main:
    li $t0, 0
    li $t1, 10
loop:
    addiu $t0, $t0, 1
    blt $t0, $t1, loop
    jr $ra
.end main
"""

DIAMOND_ASM = r"""
.text
.ent main
main:
    beqz $a0, else_br
    li $v0, 1
    b done
else_br:
    li $v0, 2
done:
    jr $ra
.end main
"""

NESTED_ASM = r"""
.text
.ent main
main:
    li $t0, 0
outer:
    li $t1, 0
inner:
    addiu $t1, $t1, 1
    li $t3, 3
    blt $t1, $t3, inner
    addiu $t0, $t0, 1
    li $t3, 5
    blt $t0, $t3, outer
    jr $ra
.end main
"""


def cfg_of(source, name="main"):
    program = assemble(source)
    return program, build_function_cfgs(program)[name]


class TestLeaders:
    def test_entry_is_leader(self):
        program = assemble(LOOP_ASM)
        assert program.entry in leader_addresses(program)

    def test_branch_targets_are_leaders(self):
        program = assemble(LOOP_ASM)
        assert program.symbols["loop"] in leader_addresses(program)

    def test_post_branch_is_leader(self):
        program = assemble(DIAMOND_ASM)
        leaders = leader_addresses(program)
        # the instruction after beqz starts a block
        assert program.entry + 4 in leaders


class TestBlocks:
    def test_partition_covers_text(self):
        program = assemble(LOOP_ASM)
        block_map = BlockMap(program)
        covered = sum(b.size for b in block_map)
        assert covered == len(program.instructions)

    def test_block_of(self):
        program = assemble(LOOP_ASM)
        block_map = BlockMap(program)
        loop_addr = program.symbols["loop"]
        block = block_map.block_of(loop_addr + 4)
        assert block.start == loop_addr

    def test_block_of_bad_address(self):
        program = assemble(LOOP_ASM)
        block_map = BlockMap(program)
        with pytest.raises(ValueError):
            block_map.block_of(0x100)

    def test_diamond_edges(self):
        program, cfg = cfg_of(DIAMOND_ASM)
        entry = cfg.block(cfg.entry)
        assert len(entry.successors) == 2
        done = program.symbols["done"]
        preds = cfg.predecessors(done)
        assert len(preds) == 2

    def test_fallthrough_edge(self):
        program, cfg = cfg_of(LOOP_ASM)
        loop = program.symbols["loop"]
        # loop block branches back to itself and falls through to exit
        succs = cfg.successors(loop)
        # the compare pseudo splits the block; find the branch block
        found_back_edge = any(
            loop in cfg.successors(leader) for leader in cfg.blocks)
        assert found_back_edge

    def test_return_has_no_successors(self):
        program, cfg = cfg_of(DIAMOND_ASM)
        done = program.symbols["done"]
        assert cfg.successors(done) == []


class TestDominators:
    def test_entry_dominates_all(self):
        _, cfg = cfg_of(DIAMOND_ASM)
        dom = cfg.dominators()
        for leader in cfg.blocks:
            assert cfg.entry in dom[leader]

    def test_self_domination(self):
        _, cfg = cfg_of(DIAMOND_ASM)
        for leader, doms in cfg.dominators().items():
            assert leader in doms

    def test_branch_arms_not_dominating_join(self):
        program, cfg = cfg_of(DIAMOND_ASM)
        dom = cfg.dominators()
        done = program.symbols["done"]
        else_br = program.symbols["else_br"]
        assert else_br not in dom[done]


class TestLoops:
    def test_simple_loop_found(self):
        program, cfg = cfg_of(LOOP_ASM)
        loops = cfg.natural_loops()
        assert len(loops) == 1
        assert loops[0].header == program.symbols["loop"]

    def test_loop_body_membership(self):
        program, cfg = cfg_of(LOOP_ASM)
        loop = cfg.natural_loops()[0]
        assert loop.header in loop.body
        assert loop.latch in loop.body

    def test_nested_loops(self):
        program, cfg = cfg_of(NESTED_ASM)
        loops = cfg.natural_loops()
        assert len(loops) == 2
        inner = next(l for l in loops
                     if l.header == program.symbols["inner"])
        outer = next(l for l in loops
                     if l.header == program.symbols["outer"])
        assert inner.body < outer.body

    def test_loops_containing(self):
        program, cfg = cfg_of(NESTED_ASM)
        inner_addr = program.symbols["inner"]
        loops = cfg.loops_containing(inner_addr)
        assert len(loops) == 2          # inner block is in both loops

    def test_no_loops_in_straightline(self):
        _, cfg = cfg_of(DIAMOND_ASM)
        assert cfg.natural_loops() == []


class TestFunctionPartition:
    def test_per_function_cfgs(self, sample_program):
        cfgs = build_function_cfgs(sample_program)
        assert {"main", "walk", "push", "malloc"} <= set(cfgs)

    def test_function_blocks_within_extent(self, sample_program):
        cfgs = build_function_cfgs(sample_program)
        for name, cfg in cfgs.items():
            info = sample_program.symtab.functions[name]
            for leader in cfg.blocks:
                assert info.start <= leader < info.end

    def test_reverse_postorder_starts_at_entry(self, sample_program):
        cfgs = build_function_cfgs(sample_program)
        for cfg in cfgs.values():
            order = cfg.reverse_postorder()
            assert order[0] == cfg.entry
            assert set(order) == set(cfg.blocks)
