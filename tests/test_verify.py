"""Tests for the structural program verifier — both that it accepts all
compiler output and that it catches each class of deliberately broken
code."""

import pytest

from repro.asm.assembler import assemble
from repro.asm.verify import Issue, verify_program
from repro.compiler.driver import compile_source
from repro.workloads.registry import names, get


def kinds(issues):
    return {issue.kind for issue in issues}


class TestCleanCode:
    def test_sample_program_verifies(self, sample_program):
        assert verify_program(sample_program) == []

    def test_optimized_sample_verifies(self, sample_program_opt):
        assert verify_program(sample_program_opt) == []

    @pytest.mark.parametrize("name", names()[:6])
    def test_workloads_verify(self, name):
        for optimize in (False, True):
            program = compile_source(
                get(name).generate("input1", scale=0.05),
                optimize=optimize)
            issues = verify_program(program)
            assert issues == [], (
                f"{name} opt={optimize}: "
                + "; ".join(str(i) for i in issues[:3]))


class TestBrokenCode:
    def test_branch_leaving_function(self):
        src = (".text\n.ent f\nf:\nbeqz $t0, g\njr $ra\n.end f\n"
               ".ent g\ng: li $t0, 0\njr $ra\n.end g\n")
        issues = verify_program(assemble(src),
                                check_uninitialized=False)
        assert "branch-leaves-function" in kinds(issues)

    def test_call_into_function_body(self):
        src = (".text\n.ent f\nf:\njal inside\njr $ra\n.end f\n"
               ".ent g\ng:\nli $t0, 0\ninside: jr $ra\n.end g\n")
        issues = verify_program(assemble(src),
                                check_uninitialized=False)
        assert "call-into-body" in kinds(issues)

    def test_fallthrough_off_function(self):
        src = (".text\n.ent f\nf:\nli $t0, 1\n.end f\n"
               ".ent g\ng: jr $ra\n.end g\n")
        issues = verify_program(assemble(src),
                                check_uninitialized=False)
        assert "fallthrough-off-function" in kinds(issues)

    def test_unbalanced_stack(self):
        src = (".text\n.ent f\nf:\n"
               "addiu $sp, $sp, -32\n"
               "sw $ra, 28($sp)\n"
               "lw $ra, 28($sp)\n"
               "jr $ra\n"               # missing addiu $sp, $sp, 32
               ".end f\n")
        issues = verify_program(assemble(src),
                                check_uninitialized=False)
        assert "unbalanced-stack" in kinds(issues)

    def test_balanced_stack_accepted(self):
        src = (".text\n.ent f\nf:\n"
               "addiu $sp, $sp, -32\n"
               "sw $ra, 28($sp)\n"
               "lw $ra, 28($sp)\n"
               "addiu $sp, $sp, 32\n"
               "jr $ra\n.end f\n")
        issues = verify_program(assemble(src),
                                check_uninitialized=False)
        assert "unbalanced-stack" not in kinds(issues)

    def test_uninitialized_temp_read(self):
        src = (".text\n.ent f\nf:\n"
               "addu $t1, $t0, $t0\n"    # $t0 never defined in f
               "jr $ra\n.end f\n")
        issues = verify_program(assemble(src))
        assert "uninitialized-read" in kinds(issues)

    def test_defined_temp_accepted(self):
        src = (".text\n.ent f\nf:\n"
               "li $t0, 1\naddu $t1, $t0, $t0\njr $ra\n.end f\n")
        issues = verify_program(assemble(src))
        assert "uninitialized-read" not in kinds(issues)

    def test_v0_after_call_accepted(self):
        src = (".text\n.ent f\nf:\n"
               "addiu $sp, $sp, -8\nsw $ra, 4($sp)\n"
               "jal g\n"
               "addu $t0, $v0, $v0\n"    # v0 defined by the call
               "lw $ra, 4($sp)\naddiu $sp, $sp, 8\njr $ra\n.end f\n"
               ".ent g\ng: li $v0, 1\njr $ra\n.end g\n")
        issues = verify_program(assemble(src))
        assert "uninitialized-read" not in kinds(issues)

    def test_saved_registers_exempt(self):
        # $s0 may legitimately carry a caller value at entry
        src = (".text\n.ent f\nf:\n"
               "addu $t0, $s0, $s0\njr $ra\n.end f\n")
        issues = verify_program(assemble(src))
        assert "uninitialized-read" not in kinds(issues)


class TestIssueRendering:
    def test_str(self):
        issue = Issue("demo-kind", 0x400010, "main", "something off")
        text = str(issue)
        assert "0x00400010" in text
        assert "demo-kind" in text
        assert "main" in text
