"""High-level API tests (analyze_program / AnalysisReport)."""

import pytest

from repro import analyze_program
from repro.cache.config import CacheConfig
from repro.heuristic.classes import Weights
from tests.conftest import SAMPLE_SOURCE

POINTER_SRC = r"""
struct n { int v; struct n *next; };
struct n *head;
int main() {
    struct n *p;
    int i; int s;
    head = NULL;
    for (i = 0; i < 2000; i = i + 1) {
        p = (struct n*) malloc(sizeof(struct n));
        p->v = i;
        p->next = head;
        head = p;
    }
    s = 0;
    p = head;
    while (p != NULL) { s = s + p->v; p = p->next; }
    print_int(s);
    return 0;
}
"""


class TestAnalyzeProgram:
    def test_full_run(self):
        report = analyze_program(POINTER_SRC)
        assert report.execution is not None
        assert report.execution.output == [sum(range(2000))]
        assert report.delinquent_loads
        assert 0.0 < report.pi < 1.0
        assert report.rho is not None and report.rho > 0.5

    def test_static_only(self):
        report = analyze_program(POINTER_SRC, execute=False)
        assert report.execution is None
        assert report.rho is None
        assert report.delinquent_loads     # still classifies statically

    def test_pointer_walk_is_covered(self):
        report = analyze_program(POINTER_SRC)
        # the miss-heaviest load must be in Delta
        heaviest = max(report.cache_stats.load_misses.items(),
                       key=lambda item: item[1])[0]
        assert heaviest in report.delinquent_loads

    def test_custom_cache(self):
        small = analyze_program(POINTER_SRC,
                                cache=CacheConfig(1024, 2, 32))
        big = analyze_program(POINTER_SRC,
                              cache=CacheConfig(64 * 1024, 8, 32))
        assert small.cache_stats.total_load_misses \
            >= big.cache_stats.total_load_misses

    def test_custom_weights_and_delta(self):
        silent = Weights.from_dict({})
        report = analyze_program(POINTER_SRC, weights=silent,
                                 delta=0.5)
        assert report.delinquent_loads == set()

    def test_optimize_mode(self):
        report = analyze_program(POINTER_SRC, optimize=True)
        assert report.execution.output == [sum(range(2000))]
        assert report.delinquent_loads

    def test_describe_load(self):
        report = analyze_program(POINTER_SRC)
        address = next(iter(report.delinquent_loads))
        text = report.describe_load(address)
        assert "phi" in text
        assert "pattern:" in text
        assert "possibly delinquent" in text

    def test_describe_load_rejects_non_load_address(self):
        report = analyze_program(POINTER_SRC, execute=False)
        bogus = max(report.load_infos) + 4
        with pytest.raises(ValueError) as err:
            report.describe_load(bogus)
        message = str(err.value)
        assert f"{bogus:#x}" in message
        # the error names the valid load addresses
        for address in report.load_infos:
            assert f"{address:#x}" in message

    def test_describe_load_error_is_complete_and_sorted(self):
        """The ValueError names *every* valid load, in address order,
        and never raises a secondary error while formatting."""
        report = analyze_program(POINTER_SRC, execute=False)
        with pytest.raises(ValueError) as err:
            report.describe_load(-1)
        message = str(err.value)
        listed = message.split("valid load addresses: ")[1]
        expected = ", ".join(f"{a:#x}"
                             for a in sorted(report.load_infos))
        assert listed == expected

    def test_describe_load_with_no_loads_says_none(self):
        report = analyze_program(POINTER_SRC, execute=False)
        report.load_infos = {}
        with pytest.raises(ValueError) as err:
            report.describe_load(0x400000)
        assert "valid load addresses: (none)" in str(err.value)

    def test_sample_program(self):
        report = analyze_program(SAMPLE_SOURCE)
        assert set(report.load_infos) \
            == set(report.program.load_addresses())
