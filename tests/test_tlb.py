"""TLB scenario family: geometry mapping, sweeps, PCAX, wiring.

The model's one load-bearing claim is that a TLB *is* a cache whose
blocks are pages — so these tests check the ``TlbConfig`` →
``CacheConfig`` mapping exactly, prove the sweep bit-identical across
materialized / chunk-streamed / store-replayed inputs, pin the PCAX
predictor's semantics on crafted traces, and round-trip the ``tlb``
op through the service protocol and the CLI.
"""

import json
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.cache.config import CacheConfig
from repro.cache.model import simulate_trace
from repro.cache.stackdist import ProfileStore
from repro.machine.trace import LOAD, PREFETCH, STORE, MemoryTrace
from repro.pipeline.session import Session
from repro.service.ops import COMPUTE
from repro.service.protocol import ProtocolError, parse_request
from repro.store.tracestore import TraceStore
from repro.tlb import (DEFAULT_ENTRIES, DEFAULT_PAGE_SIZE,
                       DEFAULT_THRESHOLD, MIN_ACCESSES, PcaxLoad,
                       TlbConfig, pcax_crosstab, pcax_profile,
                       simulate_tlb)
from tests.conftest import SAMPLE_SOURCE


def _trace(rows) -> MemoryTrace:
    trace = MemoryTrace()
    for pc, address, kind in rows:
        trace.append(pc, address, kind)
    return trace


# -- geometry ----------------------------------------------------------

class TestTlbConfig:
    def test_defaults_are_a_shipped_l1_dtlb(self):
        config = TlbConfig()
        assert config.page_size == DEFAULT_PAGE_SIZE == 4096
        assert config.entries == DEFAULT_ENTRIES == 64
        assert config.fully_associative
        assert config.ways == 64
        assert config.sets == 1
        assert config.reach == 4096 * 64

    def test_cache_mapping_is_exact(self):
        config = TlbConfig(page_size=256, entries=8, assoc=2)
        assert config.as_cache_config() == CacheConfig(
            size=256 * 8, assoc=2, block_size=256, replacement="lru")
        assert config.sets == 4
        assert not config.fully_associative

    def test_fully_associative_sentinel(self):
        config = TlbConfig(page_size=64, entries=4, assoc=0)
        assert config.ways == 4
        assert config.sets == 1
        assert config.as_cache_config().assoc == 4

    @pytest.mark.parametrize("kwargs", [
        {"page_size": 100},          # not a power of two
        {"page_size": 0},
        {"entries": 6},              # not a power of two
        {"entries": 0},
        {"entries": 8, "assoc": 3},  # assoc does not divide entries
        {"entries": 8, "assoc": -2},
    ])
    def test_bad_geometry_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TlbConfig(**kwargs)

    def test_describe(self):
        assert TlbConfig().describe() \
            == "64-entry fully-assoc 4KB-page TLB"
        assert TlbConfig(page_size=256, entries=8, assoc=2).describe() \
            == "8-entry 2-way 256B-page TLB"

    def test_to_dict_round_trips(self):
        config = TlbConfig(page_size=128, entries=16, assoc=4)
        assert TlbConfig(**config.to_dict()) == config


# -- the sweep ---------------------------------------------------------

def _strided(pc: int, start: int, stride: int, count: int,
             kind: int = LOAD):
    return [(pc, start + i * stride, kind) for i in range(count)]


class TestSimulateTlb:
    def test_sweep_equals_direct_replay(self):
        trace = _trace(
            _strided(0x10, 0x8000, 68, 50)
            + _strided(0x20, 0x9000, 64, 30, STORE)
            + _strided(0x10, 0x8000, 68, 50))
        configs = [TlbConfig(page_size=64, entries=4),
                   TlbConfig(page_size=64, entries=8, assoc=2),
                   TlbConfig(page_size=256, entries=2)]
        for stats in simulate_tlb(trace, configs):
            direct = simulate_trace(trace,
                                    stats.config.as_cache_config())
            assert stats.load_misses == direct.load_misses
            assert stats.store_misses == direct.store_misses
            assert stats.load_accesses == direct.load_accesses

    def test_compulsory_misses_count_pages(self):
        # 32 sequential loads over 4 pages, TLB large enough to hold
        # them all: exactly one walk per distinct page
        trace = _trace(_strided(0x10, 0, 32, 32))
        (stats,) = simulate_tlb(trace, [TlbConfig(page_size=256,
                                                  entries=8)])
        assert stats.total_accesses == 32
        assert stats.total_misses == 4
        assert stats.misses_of(0x10) == 4
        assert stats.accesses_of(0x10) == 32
        assert stats.miss_rate == pytest.approx(4 / 32)

    def test_thrash_beyond_reach(self):
        # round-robin over 3 pages with a 2-entry LRU TLB: every
        # access walks after the compulsory fills
        rows = []
        for _ in range(10):
            for page in range(3):
                rows.append((0x10, page * 64, LOAD))
        (stats,) = simulate_tlb(_trace(rows),
                                [TlbConfig(page_size=64, entries=2)])
        assert stats.total_misses == 30

    def test_prefetches_do_not_walk(self):
        rows = [(0x10, i * 64, PREFETCH) for i in range(16)]
        rows += [(0x20, 0, LOAD)]
        (stats,) = simulate_tlb(_trace(rows),
                                [TlbConfig(page_size=64, entries=2)])
        assert stats.total_accesses == 1
        assert stats.pcs_by_misses() == [(0x20, 1)]

    def test_empty_trace(self):
        (stats,) = simulate_tlb(_trace([]), [TlbConfig()])
        assert stats.total_accesses == 0
        assert stats.miss_rate == 0.0

    def test_streamed_and_store_replayed_inputs_bit_identical(
            self, tmp_path):
        trace = _trace(
            _strided(0x10, 0x8000, 68, 120)
            + _strided(0x30, 0xF000, -52, 80)
            + _strided(0x20, 0x8000, 68, 120, STORE))
        configs = [TlbConfig(page_size=64, entries=4),
                   TlbConfig(page_size=128, entries=4, assoc=2)]
        reference = simulate_tlb(trace, configs)
        store = TraceStore(tmp_path / "traces")
        store.put_trace("t", trace, chunk_accesses=48)
        for source in (trace.chunk_stream(7),
                       trace.chunk_stream(1024), store.open("t")):
            for ref, got in zip(reference,
                                simulate_tlb(source, configs)):
                assert got.load_misses == ref.load_misses
                assert got.store_misses == ref.store_misses
                assert got.load_accesses == ref.load_accesses
                assert got.store_accesses == ref.store_accesses

    def test_profile_store_serves_resweep(self):
        trace = _trace(_strided(0x10, 0x8000, 68, 200)
                       + _strided(0x20, 0x9000, -36, 100))
        store = ProfileStore()
        # three fully-assoc geometries share one set mapping, so the
        # sweep profiles once and persists the distance histograms
        simulate_tlb(trace, [TlbConfig(page_size=64, entries=2),
                             TlbConfig(page_size=64, entries=4),
                             TlbConfig(page_size=64, entries=8)],
                     store=store)
        assert store.counters["sweep_puts"] >= 1
        # a fresh geometry at the same page size is served from the
        # stored profile, bit-identical to a direct replay
        config = TlbConfig(page_size=64, entries=16)
        (served,) = simulate_tlb(trace, [config], store=store)
        assert store.counters["sweep_memory_hits"] >= 1
        direct = simulate_trace(trace, config.as_cache_config())
        assert served.load_misses == direct.load_misses


# -- PCAX --------------------------------------------------------------

class TestPcax:
    def test_constant_stride_is_friendly(self):
        # pages 0,1,2,...: after the warmup access every translation
        # is last + 1
        trace = _trace(_strided(0x10, 0, 64, 40))
        profile = pcax_profile(trace, page_size=64)
        load = profile.loads[0x10]
        assert load.accesses == 40
        # first access seeds, second learns the stride, rest predict
        assert load.predicted == 38
        assert 0x10 in profile.friendly_set()

    def test_same_page_loop_is_friendly(self):
        trace = _trace([(0x10, 8, LOAD)] * 10)
        profile = pcax_profile(trace, page_size=64)
        load = profile.loads[0x10]
        assert load.predicted == 9
        assert load.ratio == 1.0

    def test_random_pages_are_unfriendly(self):
        pages = [0, 7, 2, 9, 4, 1, 8, 3, 6, 5]
        trace = _trace([(0x10, p * 64, LOAD) for p in pages])
        profile = pcax_profile(trace, page_size=64)
        assert 0x10 not in profile.friendly_set()

    def test_single_access_pc_never_friendly(self):
        trace = _trace([(0x10, 0, LOAD)])
        profile = pcax_profile(trace, page_size=64, threshold=0.0)
        load = profile.loads[0x10]
        assert load.accesses == 1
        assert load.accesses < MIN_ACCESSES
        assert load.predictable_accesses == 0
        assert load.ratio == 0.0
        assert profile.friendly_set() == set()

    def test_stores_and_prefetches_ignored(self):
        trace = _trace([(0x10, 0, STORE), (0x10, 0x4000, PREFETCH),
                        (0x20, 0, LOAD), (0x20, 64, LOAD)])
        profile = pcax_profile(trace, page_size=64)
        assert set(profile.loads) == {0x20}
        assert profile.total_accesses == 2
        assert profile.total_predicted == 0  # stride learned, not yet used

    def test_stride_relearns_after_phase_change(self):
        # stride +1 for 10 pages, then jumps to stride +3: exactly
        # one misprediction at the change plus one while relearning
        rows = _strided(0x10, 0, 64, 10)
        last = 9 * 64
        rows += [(0x10, last + 3 * 64 * (i + 1), LOAD)
                 for i in range(10)]
        profile = pcax_profile(_trace(rows), page_size=64)
        load = profile.loads[0x10]
        assert load.accesses == 20
        assert load.predicted == (10 - 2) + (10 - 1)

    def test_bad_page_size_rejected(self):
        with pytest.raises(ValueError):
            pcax_profile(_trace([]), page_size=100)

    def test_streamed_profile_identical(self, tmp_path):
        trace = _trace(_strided(0x10, 0, 68, 100)
                       + _strided(0x20, 0x9000, -40, 60))
        reference = pcax_profile(trace, page_size=64)
        store = TraceStore(tmp_path / "traces")
        store.put_trace("t", trace, chunk_accesses=32)
        for source in (trace.chunk_stream(7), store.open("t")):
            assert pcax_profile(source, page_size=64).loads \
                == reference.loads

    def test_crosstab_partitions_universe(self):
        universe = {1, 2, 3, 4, 5, 6}
        cross = pcax_crosstab(friendly={1, 2, 9},
                              delinquent={2, 3, 9}, universe=universe)
        assert cross == {"both": 1, "delinquent_only": 1,
                         "friendly_only": 1, "neither": 3}
        assert sum(cross.values()) == len(universe)

    def test_default_threshold(self):
        assert PcaxLoad(accesses=10, predicted=9).ratio \
            == pytest.approx(1.0)
        assert DEFAULT_THRESHOLD == 0.9


# -- wiring: session, service, CLI -------------------------------------

TLB_SRC = """
int a[2048];
int main() {
  int i; int s;
  s = 0;
  for (i = 0; i < 2048; i = i + 1)
    s = s + a[(i * 17) & 2047];
  print_int(s);
  return 0;
}
"""


class TestSessionWiring:
    def test_session_tlb_stats_matches_cache_sweep(self, tmp_path):
        session = Session(cache_dir=tmp_path)
        session.add_source("w", TLB_SRC)
        config = TlbConfig(page_size=64, entries=4)
        (stats,) = session.tlb_stats("w", configs=(config,))
        direct = session.stats("w",
                               cache_config=config.as_cache_config())
        assert stats.load_misses == direct.load_misses
        assert stats.store_misses == direct.store_misses
        # second call replays from the trace store bit-identically
        (again,) = session.tlb_stats("w", configs=(config,))
        assert again.load_misses == stats.load_misses

    def test_session_pcax_is_memoized(self, tmp_path):
        session = Session(cache_dir=tmp_path)
        session.add_source("w", TLB_SRC)
        first = session.pcax("w", page_size=64)
        assert session.pcax("w", page_size=64) is first
        other = session.pcax("w", page_size=128)
        assert other is not first


class TestServiceOp:
    def _params(self, **over):
        payload = {"op": "tlb", "params": {"source": TLB_SRC, **over}}
        return parse_request(json.dumps(payload).encode()).params

    def test_round_trip(self):
        params = self._params(
            geometries=[{"page_size": 64, "entries": 4}])
        result = COMPUTE["tlb"](params)
        assert result["steps"] > 0
        (entry,) = result["results"]
        assert entry["geometry"] == {"page_size": 64, "entries": 4,
                                     "assoc": 0}
        assert entry["total_misses"] <= entry["total_accesses"]
        pcax = result["pcax"]
        assert pcax["page_size"] == 64
        assert set(pcax["crosstab"]) == {"both", "delinquent_only",
                                         "friendly_only", "neither"}
        assert sum(pcax["crosstab"].values()) == len(pcax["loads"])

    def test_defaults_and_dedup(self):
        params = self._params(
            geometries=[{"page_size": 4096, "entries": 64},
                        {"page_size": 4096, "entries": 64, "assoc": 0}])
        assert params["geometries"] \
            == [{"page_size": 4096, "entries": 64, "assoc": 0}]
        assert params["threshold"] == DEFAULT_THRESHOLD
        default = self._params()
        assert default["geometries"] == [TlbConfig().to_dict()]

    @pytest.mark.parametrize("bad", [
        {"geometries": []},
        {"geometries": [{"page_size": 100, "entries": 4}]},
        {"geometries": [{"page": 64}]},
        {"geometries": ["64,4"]},
        {"threshold": 0.0},
        {"threshold": 1.5},
        {"source": ""},
    ])
    def test_bad_params_rejected(self, bad):
        with pytest.raises(ProtocolError):
            self._params(**{"source": TLB_SRC, **bad})

    def test_deterministic_across_store_state(self):
        params = self._params(
            geometries=[{"page_size": 64, "entries": 4}])
        cold = COMPUTE["tlb"](params)
        warm = COMPUTE["tlb"](params)   # trace store now warm
        assert cold == warm


class TestCli:
    @pytest.fixture
    def source_file(self, tmp_path):
        path = tmp_path / "prog.c"
        path.write_text(SAMPLE_SOURCE)
        return str(path)

    def test_json_output(self, source_file, capsys):
        assert main(["tlb", source_file, "--geometry", "64,4",
                     "--geometry", "256,8,2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["results"]) == 2
        assert payload["results"][1]["geometry"]["assoc"] == 2
        assert "crosstab" in payload["pcax"]

    def test_human_output(self, source_file, capsys):
        assert main(["tlb", source_file, "--page-size", "64",
                     "--entries", "4", "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "4-entry fully-assoc 64B-page TLB" in out
        assert "PCAX @ 64B pages" in out
        assert "delinquent-only:" in out

    def test_bad_geometry_is_exit_2(self, source_file, capsys):
        assert main(["tlb", source_file, "--geometry", "64"]) == 2
        assert "repro: error:" in capsys.readouterr().err

    def test_json_to_file(self, source_file, tmp_path, capsys):
        out = tmp_path / "tlb.json"
        assert main(["tlb", source_file, "--geometry", "64,4",
                     "--json", str(out)]) == 0
        assert json.loads(out.read_text())["results"]
