"""Delinquency-analysis service tests.

Covers the wire protocol, served-vs-in-process result equality, request
coalescing and simulate-batch merging, backpressure/overload behaviour,
per-request timeouts, malformed-request handling, and both tiers of the
result cache.  Servers run on a background thread (``serve_in_thread``)
with the single-thread pool (``workers=0``) so the suite stays fast and
deterministic on one core; one test exercises the process pool.
"""

import json
import threading
import time

import pytest

from repro.api import analyze_program
from repro.cache.config import CacheConfig
from repro.cache.model import simulate_trace
from repro.compiler.driver import compile_source
from repro.export import report_to_dict
from repro.machine.simulator import Machine
from repro.service.client import (ServiceClient, ServiceError,
                                  parse_address)
from repro.service.protocol import (PROTOCOL_VERSION, ProtocolError,
                                    parse_request, request_key)
from repro.service.server import ServerConfig, serve_in_thread
from tests.conftest import time_scaled

SOURCE = r"""
int a[512];
int main(int n) {
    int i; int s;
    s = 0;
    for (i = 0; i < 512; i = i + 1)
        a[i] = i;
    for (i = 0; i < 512; i = i + 1)
        s = s + a[i];
    print_int(s + n);
    return 0;
}
"""

SMALL = ("int a[64]; int main() { int i; "
         "for (i = 0; i < 64; i = i + 1) a[i] = i; "
         "print_int(a[9]); return 0; }")


def _variant(tag: int) -> str:
    """A distinct-but-cheap source per test, for fresh cache keys."""
    return SMALL.replace("a[9]", f"a[{tag}]")


@pytest.fixture(scope="module")
def server():
    handle = serve_in_thread(ServerConfig(
        port=0, workers=0, use_disk_cache=False))
    yield handle
    handle.stop()


@pytest.fixture()
def client(server):
    with ServiceClient(server.host, server.port, timeout=60.0) as c:
        yield c


class TestProtocol:
    def test_parse_address(self):
        assert parse_address("127.0.0.1:8642") == ("127.0.0.1", 8642)
        assert parse_address("[::1]:99") == ("::1", 99)
        with pytest.raises(ValueError):
            parse_address("no-port")
        with pytest.raises(ValueError):
            parse_address("host:notaport")

    def test_defaults_spelled_out_share_a_key(self):
        implicit = parse_request(json.dumps(
            {"op": "analyze", "params": {"source": SMALL}}).encode())
        explicit = parse_request(json.dumps(
            {"op": "analyze",
             "params": {"source": SMALL, "optimize": False,
                        "delta": 0.10}}).encode())
        assert implicit.key == explicit.key

    def test_distinct_params_distinct_keys(self):
        base = parse_request(json.dumps(
            {"op": "analyze", "params": {"source": SMALL}}).encode())
        optimized = parse_request(json.dumps(
            {"op": "analyze",
             "params": {"source": SMALL,
                        "optimize": True}}).encode())
        classify = parse_request(json.dumps(
            {"op": "classify", "params": {"source": SMALL}}).encode())
        assert len({base.key, optimized.key, classify.key}) == 3

    def test_version_mismatch_rejected(self):
        with pytest.raises(ProtocolError) as err:
            parse_request(json.dumps(
                {"op": "health", "version": 99}).encode())
        assert err.value.code == "bad_request"

    def test_control_ops_have_no_cache_key(self):
        request = parse_request(json.dumps({"op": "health"}).encode())
        assert request.key is None

    def test_request_key_is_content_hash(self):
        params = {"source": SMALL}
        normalized = parse_request(json.dumps(
            {"op": "analyze", "params": params}).encode()).params
        assert request_key("analyze", normalized) \
            == request_key("analyze", dict(normalized))


class TestRoundTrip:
    def test_health(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["protocol_version"] == PROTOCOL_VERSION
        assert health["pool_mode"] == "thread"

    def test_analyze_matches_in_process(self, client):
        served = client.analyze(SOURCE)
        local = report_to_dict(analyze_program(SOURCE))
        # the acceptance bar: byte-identical serialized payloads
        assert json.dumps(served, sort_keys=False) \
            == json.dumps(local, sort_keys=False)

    def test_classify_matches_static_in_process(self, client):
        served = client.classify(SOURCE)
        local = report_to_dict(analyze_program(SOURCE, execute=False))
        assert json.dumps(served) == json.dumps(local)
        assert "rho" not in served["summary"]

    def test_analyze_with_options(self, client):
        served = client.analyze(SOURCE, optimize=True, delta=0.5,
                                cache={"size": 16 * 1024})
        local = report_to_dict(analyze_program(
            SOURCE, optimize=True, delta=0.5,
            cache=CacheConfig(size=16 * 1024)))
        assert json.dumps(served) == json.dumps(local)

    def test_simulate_matches_direct(self, client):
        config = CacheConfig(size=4 * 1024, assoc=2, block_size=32)
        served = client.simulate(
            SOURCE, configs=[{"size": config.size,
                              "assoc": config.assoc,
                              "block_size": config.block_size}])
        trace = Machine(compile_source(SOURCE),
                        trace_memory=True).run().trace
        direct = simulate_trace(trace, config)
        entry = served["results"][0]
        assert entry["description"] == config.describe()
        assert entry["total_load_misses"] == direct.total_load_misses
        assert entry["load_misses"] == {
            f"{a:#x}": m for a, m in
            sorted(direct.load_misses.items())}

    def test_metrics_shape(self, client):
        metrics = client.metrics()
        assert metrics["requests"]["total"] >= 1
        assert "analyze" in metrics["latency"] \
            or metrics["requests"]["by_op"]
        for section in ("cache", "batching", "queue", "pool"):
            assert section in metrics


class TestCaching:
    def test_repeat_request_hits_memory(self, client):
        source = _variant(11)
        first = client.request("analyze", {"source": source})
        second = client.request("analyze", {"source": source})
        assert first["ok"] and second["ok"]
        assert first["cached"] is False
        assert second["cached"] == "memory"
        assert first["result"] == second["result"]

    def test_equivalent_spellings_share_entry(self, client):
        source = _variant(12)
        client.request("analyze", {"source": source})
        spelled = client.request(
            "analyze", {"source": source, "optimize": False,
                        "delta": 0.10, "execute": True})
        assert spelled["cached"] == "memory"

    def test_lru_eviction_falls_back_to_disk(self, tmp_path):
        config = ServerConfig(port=0, workers=0, cache_entries=1,
                              cache_dir=tmp_path, use_disk_cache=True)
        with serve_in_thread(config) as handle:
            with ServiceClient(handle.host, handle.port) as c:
                a, b = _variant(21), _variant(22)
                assert c.request("analyze",
                                 {"source": a})["cached"] is False
                # B evicts A from the single-entry memory tier
                c.request("analyze", {"source": b})
                from_disk = c.request("analyze", {"source": a})
                assert from_disk["cached"] == "disk"
                # the disk hit was promoted back into memory
                again = c.request("analyze", {"source": a})
                assert again["cached"] == "memory"
                stats = c.metrics()["cache"]
                assert stats["disk_hits"] == 1
                assert stats["evictions"] >= 1

    def test_disk_tier_survives_restart(self, tmp_path):
        source = _variant(23)
        config = ServerConfig(port=0, workers=0, cache_entries=8,
                              cache_dir=tmp_path, use_disk_cache=True)
        with serve_in_thread(config) as handle:
            with ServiceClient(handle.host, handle.port) as c:
                cold = c.request("analyze", {"source": source})
        with serve_in_thread(config) as handle:
            with ServiceClient(handle.host, handle.port) as c:
                warm = c.request("analyze", {"source": source})
        assert warm["cached"] == "disk"
        assert warm["result"] == cold["result"]


class TestBatching:
    def test_concurrent_identical_requests_compute_once(self, server):
        source = _variant(31)
        before = ServiceClient(server.host, server.port)
        computed_before = \
            before.metrics()["batching"]["computations"]
        results = []

        def worker():
            with ServiceClient(server.host, server.port) as c:
                results.append(c.analyze(source))

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        after = before.metrics()["batching"]["computations"]
        before.close()
        assert len(results) == 6
        assert all(json.dumps(r) == json.dumps(results[0])
                   for r in results)
        # one computation serves all six (coalesced or cache hits)
        assert after - computed_before == 1

    def test_concurrent_simulates_merge_into_one_replay(self):
        config = ServerConfig(port=0, workers=0, use_disk_cache=False,
                              batch_window=time_scaled(0.25),
                              batch_max=8)
        sizes = (4 * 1024, 8 * 1024, 16 * 1024)
        results: dict[int, dict] = {}
        with serve_in_thread(config) as handle:
            # hold the dispatcher so the simulates land in one batch
            blocker = threading.Thread(
                target=lambda: ServiceClient(
                    handle.host, handle.port).call(
                        "sleep", {"seconds": time_scaled(0.4)}))
            blocker.start()
            time.sleep(time_scaled(0.1))

            def simulate(size: int) -> None:
                with ServiceClient(handle.host, handle.port) as c:
                    results[size] = c.simulate(
                        SMALL, configs=[{"size": size}])

            threads = [threading.Thread(target=simulate, args=(s,))
                       for s in sizes]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            blocker.join()
            with ServiceClient(handle.host, handle.port) as c:
                batching = c.metrics()["batching"]
        assert batching["merged_simulate_requests"] == len(sizes)
        # one sleep + one merged replay for all three configs
        assert batching["computations"] == 2
        for size in sizes:
            entry = results[size]["results"][0]
            assert entry["config"]["size"] == size
            direct = simulate_trace(
                Machine(compile_source(SMALL),
                        trace_memory=True).run().trace,
                CacheConfig(size=size))
            assert entry["total_load_misses"] \
                == direct.total_load_misses


class TestBackpressure:
    def test_overloaded_queue_rejects_fast(self):
        config = ServerConfig(port=0, workers=0, use_disk_cache=False,
                              queue_size=1, batch_max=1,
                              batch_window=0.0)
        with serve_in_thread(config) as handle:
            def occupy(seconds: float) -> None:
                with ServiceClient(handle.host, handle.port) as c:
                    c.call("sleep", {"seconds": seconds})

            executing = threading.Thread(
                target=occupy, args=(time_scaled(0.8),))
            executing.start()
            time.sleep(time_scaled(0.2))   # now computing, queue empty
            queued = threading.Thread(
                target=occupy, args=(time_scaled(0.9),))
            queued.start()
            time.sleep(time_scaled(0.2))   # now queued, queue full
            with ServiceClient(handle.host, handle.port) as c:
                started = time.perf_counter()
                with pytest.raises(ServiceError) as err:
                    c.call("sleep", {"seconds": 0.01})
                elapsed = time.perf_counter() - started
            assert err.value.code == "overloaded"
            # overload is an immediate response, not queued latency
            assert elapsed < time_scaled(0.5)
            executing.join()
            queued.join()

    def test_per_request_timeout(self, client):
        started = time.perf_counter()
        with pytest.raises(ServiceError) as err:
            client.call("sleep", {"seconds": time_scaled(5.0)},
                        timeout=time_scaled(0.2))
        assert err.value.code == "timeout"
        assert time.perf_counter() - started < time_scaled(3.0)


class TestMalformedRequests:
    def test_not_json(self, client):
        client._file.write(b"definitely not json\n")
        client._file.flush()
        response = json.loads(client._file.readline())
        assert response["ok"] is False
        assert response["error"]["code"] == "bad_request"
        assert response["id"] is None

    def test_unknown_op(self, client):
        response = client.request("frobnicate")
        assert response["error"]["code"] == "unknown_op"
        assert "frobnicate" in response["error"]["message"]

    def test_missing_source(self, client):
        response = client.request("analyze", {})
        assert response["error"]["code"] == "bad_request"
        assert "source" in response["error"]["message"]

    def test_wrong_param_types(self, client):
        for params in ({"source": 42},
                       {"source": SMALL, "delta": "high"},
                       {"source": SMALL, "optimize": "yes"},
                       {"source": SMALL, "weights": {"AG1": "big"}},
                       {"source": SMALL, "weights": {"AGX": 1.0}},
                       {"source": SMALL, "cache": {"size": 1000}},
                       {"source": SMALL, "cache": {"ways": 2}}):
            response = client.request("analyze", params)
            assert response["ok"] is False, params
            assert response["error"]["code"] == "bad_request", params

    def test_bad_simulate_configs(self, client):
        response = client.request("simulate",
                                  {"source": SMALL, "configs": []})
        assert response["error"]["code"] == "bad_request"

    def test_connection_survives_errors(self, client):
        client.request("frobnicate")
        client.request("analyze", {})
        assert client.health()["status"] == "ok"


class TestProcessPool:
    def test_analyze_round_trip_via_worker_process(self):
        config = ServerConfig(port=0, workers=1, use_disk_cache=False)
        with serve_in_thread(config) as handle:
            with ServiceClient(handle.host, handle.port) as c:
                assert c.health()["pool_mode"] == "process"
                served = c.analyze(SMALL)
        local = report_to_dict(analyze_program(SMALL))
        assert json.dumps(served) == json.dumps(local)


class TestShutdown:
    def test_shutdown_op_stops_server(self):
        config = ServerConfig(port=0, workers=0, use_disk_cache=False)
        handle = serve_in_thread(config)
        with ServiceClient(handle.host, handle.port) as c:
            assert c.shutdown() == {"stopping": True}
        handle.stop()
        deadline = time.time() + time_scaled(5.0)
        while time.time() < deadline:
            try:
                ServiceClient(handle.host, handle.port,
                              timeout=0.2).close()
            except OSError:
                break
            time.sleep(0.05)
        else:
            pytest.fail("server still accepting after shutdown")


class TestRemoteCli:
    def test_analyze_remote_json_matches_local(self, server,
                                               tmp_path, capsys):
        from repro.__main__ import main
        path = tmp_path / "prog.c"
        path.write_text(SOURCE)
        assert main(["analyze", str(path), "--json"]) == 0
        local = capsys.readouterr().out
        assert main(["analyze", str(path), "--json",
                     "--remote", server.address]) == 0
        remote = capsys.readouterr().out
        assert remote == local

    def test_analyze_remote_human_summary(self, server, tmp_path,
                                          capsys):
        from repro.__main__ import main
        path = tmp_path / "prog.c"
        path.write_text(SOURCE)
        assert main(["analyze", str(path),
                     "--remote", server.address]) == 0
        out = capsys.readouterr().out
        assert "|Lambda|" in out
        assert "possibly delinquent" in out

    def test_analyze_remote_unreachable(self, tmp_path, capsys):
        from repro.__main__ import main
        path = tmp_path / "prog.c"
        path.write_text(SMALL)
        code = main(["analyze", str(path),
                     "--remote", "127.0.0.1:1"])
        assert code == 3
        assert "service error" in capsys.readouterr().err
