"""Pipeline Session tests: memoization, disk cache, measurements."""

import pytest

from repro.cache.config import BASELINE_CONFIG, CacheConfig
from repro.pipeline.session import Measurement, RunKey, Session

WL = "129.compress"
SCALE = 0.03


@pytest.fixture()
def session(tmp_path):
    return Session(scale=SCALE, cache_dir=tmp_path / "cache",
                   use_disk_cache=True)


class TestMemoization:
    def test_source_cached(self, session):
        assert session.source(WL) is session.source(WL)

    def test_program_cached(self, session):
        assert session.program(WL) is session.program(WL)

    def test_programs_differ_by_input_and_mode(self, session):
        base = session.program(WL)
        assert session.program(WL, "input2") is not base
        assert session.program(WL, optimize=True) is not base

    def test_load_infos_cached(self, session):
        assert session.load_infos(WL) is session.load_infos(WL)

    def test_stats_cached_in_memory(self, session):
        first = session.stats(WL)
        second = session.stats(WL)
        assert first is second


class TestDiskCache:
    def test_roundtrip_via_disk(self, tmp_path):
        cache_dir = tmp_path / "c"
        one = Session(scale=SCALE, cache_dir=cache_dir)
        stats = one.stats(WL)
        profile = one.profile(WL)
        # a fresh session must reload without executing
        two = Session(scale=SCALE, cache_dir=cache_dir)
        again = two.stats(WL)
        assert again.load_misses == stats.load_misses
        assert two.profile(WL).block_counts == profile.block_counts
        assert WL not in {k.workload for k in two._traces}

    def test_different_config_misses_cache(self, tmp_path):
        cache_dir = tmp_path / "c"
        one = Session(scale=SCALE, cache_dir=cache_dir)
        one.stats(WL)
        two = Session(scale=SCALE, cache_dir=cache_dir)
        other = CacheConfig(16 * 1024, 4, 32)
        stats = two.stats(WL, cache_config=other)
        assert stats.config == other

    def test_disk_cache_disabled(self, tmp_path):
        session = Session(scale=SCALE, cache_dir=tmp_path / "c",
                          use_disk_cache=False)
        session.stats(WL)
        assert not (tmp_path / "c").exists()

    def test_scale_changes_digest(self, tmp_path):
        cache_dir = tmp_path / "c"
        a = Session(scale=SCALE, cache_dir=cache_dir)
        b = Session(scale=SCALE * 2, cache_dir=cache_dir)
        key = RunKey(WL, "input1", False)
        assert a._digest(key, BASELINE_CONFIG) \
            != b._digest(key, BASELINE_CONFIG)


class TestMeasurement:
    def test_fields_consistent(self, session):
        m = session.measurement(WL)
        assert isinstance(m, Measurement)
        assert m.num_loads == m.program.num_loads()
        assert set(m.load_infos) == set(m.program.load_addresses())
        assert set(m.load_exec) == set(m.program.load_addresses())
        assert m.total_load_misses == sum(m.load_misses.values())
        assert m.steps > 0

    def test_load_misses_subset_of_loads(self, session):
        m = session.measurement(WL)
        assert set(m.load_misses) <= set(m.program.load_addresses())

    def test_trace_lru_bounded(self, session):
        for name in ("129.compress", "099.go", "181.mcf"):
            session.stats(name)
        assert len(session._traces) <= 2
