"""Debugger tests: stepping, breakpoints, watchpoints, inspection."""

import pytest

from repro.compiler.driver import compile_source
from repro.machine.debugger import Debugger

SRC = r"""
int counter;

int bump(int by) {
    counter = counter + by;
    return counter;
}

int main() {
    int i;
    for (i = 0; i < 5; i = i + 1)
        bump(i);
    print_int(counter);
    return counter;
}
"""


@pytest.fixture()
def debugger():
    return Debugger(compile_source(SRC))


class TestStepping:
    def test_initial_pc_at_entry(self, debugger):
        assert debugger.pc == debugger.program.entry
        assert debugger.steps == 0

    def test_single_step_advances(self, debugger):
        before = debugger.pc
        reason = debugger.step()
        assert reason.kind == "step"
        assert debugger.steps == 1
        assert debugger.pc != before

    def test_run_to_exit(self, debugger):
        reason = debugger.run()
        assert reason.kind == "exit"
        assert debugger.exited
        assert debugger.exit_code == sum(range(5))

    def test_step_after_exit_is_safe(self, debugger):
        debugger.run()
        reason = debugger.step()
        assert reason.kind == "exit"


class TestBreakpoints:
    def test_break_at_function(self, debugger):
        address = debugger.break_at("bump")
        reason = debugger.run()
        assert reason.kind == "breakpoint"
        assert debugger.pc == address

    def test_break_hit_repeatedly(self, debugger):
        debugger.break_at("bump")
        hits = 0
        while True:
            reason = debugger.run()
            if reason.kind != "breakpoint":
                break
            hits += 1
            debugger.step()          # step off the breakpoint
        assert hits == 5

    def test_break_at_address(self, debugger):
        target = debugger.program.symbols["main"]
        debugger.break_at(target)
        assert debugger.run().pc == target

    def test_unknown_symbol_raises(self, debugger):
        with pytest.raises(KeyError):
            debugger.break_at("nonexistent")

    def test_bad_address_raises(self, debugger):
        with pytest.raises(ValueError):
            debugger.break_at(0x123)


class TestWatchpoints:
    def test_watch_global(self, debugger):
        address = debugger.program.symbols["counter"]
        debugger.watch(address)
        reason = debugger.run()
        assert reason.kind == "watchpoint"
        assert f"{address:#x}" in reason.detail
        assert debugger.read_word(address) == 1   # bump(1) wrote first

    def test_watch_sees_every_change(self, debugger):
        address = debugger.program.symbols["counter"]
        debugger.watch(address)
        changes = 0
        while True:
            reason = debugger.run()
            if reason.kind != "watchpoint":
                break
            changes += 1
        # counter changes on bump(1..4); bump(0) writes the same value
        assert changes == 4


class TestInspection:
    def test_register_access(self, debugger):
        debugger.step()
        assert debugger.register("$sp") > 0
        assert debugger.register("$zero") == 0

    def test_registers_dump_format(self, debugger):
        dump = debugger.registers_dump()
        assert "$sp=" in dump
        assert "$gp=" in dump
        assert len(dump.splitlines()) == 8

    def test_where_names_function(self, debugger):
        debugger.break_at("bump")
        debugger.run()
        assert "in bump" in debugger.where()

    def test_run_to_return(self, debugger):
        debugger.break_at("bump")
        debugger.run()
        reason = debugger.run_to_return()
        function = debugger.program.function_containing(debugger.pc)
        assert function != "bump"

    def test_current_instruction_text(self, debugger):
        text = debugger.current_instruction()
        assert isinstance(text, str) and text


class TestEngineDegradation:
    """Opening a debugger inside a ``$REPRO_ENGINE=blocks`` session must
    degrade to the closure engine cleanly: same exit, same step count,
    and a byte-identical memory trace."""

    def test_blocks_session_pins_closures(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "blocks")
        from repro.machine.simulator import Machine, resolve_engine
        assert resolve_engine(None) == "blocks"   # the session default

        program = compile_source(SRC)
        debugger = Debugger(program, trace_memory=True)
        # the explicit engine="closures" pin overrides the environment
        assert debugger.machine.engine == "closures"
        reason = debugger.run()
        assert reason.kind == "exit"

        # the surrounding session still runs the blocks engine, and
        # both executions agree exactly
        machine = Machine(program, trace_memory=True)
        assert machine.engine == "blocks"
        result = machine.run()
        assert result.exit_code == debugger.exit_code
        # the debugger stops *at* the exiting syscall without counting
        # it; the engine counts every retired instruction
        assert result.steps == debugger.steps + 1
        stepped = debugger.machine.trace
        assert stepped is not None and result.trace is not None
        assert result.trace.pcs.tobytes() == stepped.pcs.tobytes()
        assert result.trace.addresses.tobytes() \
            == stepped.addresses.tobytes()
        assert result.trace.kinds.tobytes() == stepped.kinds.tobytes()

    def test_debugger_defaults_skip_tracing(self):
        debugger = Debugger(compile_source(SRC))
        assert debugger.machine.trace is None
        assert debugger.run().kind == "exit"
