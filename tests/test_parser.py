"""Parser tests: declarations, statements, expression precedence."""

import pytest

from repro.lang import astnodes as ast
from repro.lang.parser import ParseError, parse
from repro.lang.types import ArrayType, PointerType, StructType


def parse_expr(text):
    unit = parse(f"int main() {{ return {text}; }}")
    return unit.functions[0].body.statements[0].value


def parse_body(text):
    unit = parse(f"int main() {{ {text} }}")
    return unit.functions[0].body.statements


class TestDeclarations:
    def test_global_scalar(self):
        unit = parse("int x;")
        assert unit.globals[0].name == "x"

    def test_global_list(self):
        unit = parse("int a, b, c;")
        assert [g.name for g in unit.globals] == ["a", "b", "c"]

    def test_global_array(self):
        unit = parse("int a[10];")
        assert isinstance(unit.globals[0].type, ArrayType)
        assert unit.globals[0].type.count == 10

    def test_2d_array(self):
        unit = parse("float m[4][8];")
        ty = unit.globals[0].type
        assert ty.count == 4 and ty.elem.count == 8

    def test_pointer_levels(self):
        unit = parse("int **pp;")
        ty = unit.globals[0].type
        assert isinstance(ty, PointerType)
        assert isinstance(ty.target, PointerType)

    def test_struct_decl(self):
        unit = parse("struct point { int x; int y; };")
        struct = unit.structs[0]
        assert struct.name == "point"
        assert [m[0] for m in struct.members] == ["x", "y"]

    def test_self_referential_struct(self):
        unit = parse("struct n { int v; struct n *next; };")
        assert unit.structs[0].members[1][1].target.name == "n"

    def test_struct_redefinition_rejected(self):
        with pytest.raises(ParseError):
            parse("struct a { int x; }; struct a { int y; };")

    def test_function_with_params(self):
        unit = parse("int f(int a, float b) { return a; }")
        func = unit.functions[0]
        assert [p.name for p in func.params] == ["a", "b"]

    def test_void_param_list(self):
        unit = parse("int f(void) { return 0; }")
        assert unit.functions[0].params == []

    def test_prototype(self):
        unit = parse("int f(int a);")
        assert unit.functions[0].body is None

    def test_array_param_decays(self):
        unit = parse("int f(int a[10]) { return 0; }")
        assert isinstance(unit.functions[0].params[0].type, PointerType)

    def test_global_initializer_list(self):
        unit = parse("int a[3] = {1, 2, 3};")
        init = unit.globals[0].init
        assert isinstance(init, ast.Call) and init.name == "__initlist__"
        assert len(init.args) == 3


class TestStatements:
    def test_if_else(self):
        stmt, = parse_body("if (1) return 1; else return 2;")
        assert isinstance(stmt, ast.If) and stmt.orelse is not None

    def test_dangling_else(self):
        stmt, = parse_body("if (1) if (2) return 1; else return 2;")
        assert stmt.orelse is None
        assert stmt.then.orelse is not None

    def test_while(self):
        stmt, = parse_body("while (1) return 0;")
        assert isinstance(stmt, ast.While)

    def test_for_full(self):
        stmt, = parse_body("for (i = 0; i < 3; i = i + 1) return 0;")
        assert isinstance(stmt, ast.For)
        assert stmt.init is not None and stmt.cond is not None

    def test_for_empty_clauses(self):
        stmt, = parse_body("for (;;) break;")
        assert stmt.init is None and stmt.cond is None and \
            stmt.step is None

    def test_assignment_vs_expr_stmt(self):
        stmts = parse_body("x = 1; f();")
        assert isinstance(stmts[0], ast.Assign)
        assert isinstance(stmts[1], ast.ExprStmt)

    def test_multi_declarator_local(self):
        stmts = parse_body("int a, b;")
        # multiple declarators become a block of VarDecls
        assert isinstance(stmts[0], ast.Block)
        assert len(stmts[0].statements) == 2

    def test_break_continue(self):
        stmts = parse_body("while (1) { break; } while (1) { continue; }")
        assert isinstance(stmts[0].body.statements[0], ast.Break)
        assert isinstance(stmts[1].body.statements[0], ast.Continue)


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_shift_below_add(self):
        expr = parse_expr("1 << 2 + 3")
        assert expr.op == "<<"
        assert expr.right.op == "+"

    def test_precedence_compare_below_shift(self):
        expr = parse_expr("1 < 2 << 3")
        assert expr.op == "<"

    def test_logical_lowest(self):
        expr = parse_expr("1 == 2 && 3 != 4")
        assert expr.op == "&&"

    def test_left_associativity(self):
        expr = parse_expr("10 - 4 - 3")
        assert expr.op == "-" and expr.left.op == "-"

    def test_unary_ops(self):
        assert isinstance(parse_expr("-x"), ast.Unary)
        assert isinstance(parse_expr("!x"), ast.Unary)
        assert isinstance(parse_expr("~x"), ast.Unary)
        assert isinstance(parse_expr("*p"), ast.Deref)
        assert isinstance(parse_expr("&x"), ast.AddressOf)

    def test_postfix_chain(self):
        expr = parse_expr("a[1][2]")
        assert isinstance(expr, ast.Index)
        assert isinstance(expr.base, ast.Index)

    def test_member_and_arrow(self):
        dot = parse_expr("s.f")
        arrow = parse_expr("p->f")
        assert isinstance(dot, ast.Member) and not dot.arrow
        assert isinstance(arrow, ast.Member) and arrow.arrow

    def test_call_with_args(self):
        expr = parse_expr("f(1, x, g())")
        assert isinstance(expr, ast.Call)
        assert len(expr.args) == 3

    def test_cast(self):
        expr = parse_expr("(float) 3")
        assert isinstance(expr, ast.Cast)

    def test_parenthesised_expr_not_cast(self):
        expr = parse_expr("(x) + 1")
        assert isinstance(expr, ast.Binary)

    def test_sizeof(self):
        expr = parse_expr("sizeof(int)")
        assert isinstance(expr, ast.SizeOf)
        assert expr.target.size == 4

    def test_null(self):
        expr = parse_expr("NULL")
        assert isinstance(expr, ast.IntLit) and expr.value == 0

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("int main() { return 0 }")

    def test_unbalanced_paren(self):
        with pytest.raises(ParseError):
            parse("int main() { return (1; }")
