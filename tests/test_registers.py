"""Unit tests for the register file definitions."""

import pytest

from repro.isa import registers as regs


class TestRegisterNames:
    def test_count(self):
        assert regs.NUM_REGISTERS == 32
        assert len(regs.REGISTER_NAMES) == 32

    def test_wellknown_numbers(self):
        assert regs.ZERO == 0
        assert regs.V0 == 2
        assert regs.A0 == 4
        assert regs.GP == 28
        assert regs.SP == 29
        assert regs.FP == 30
        assert regs.RA == 31

    def test_roundtrip_all(self):
        for number in range(32):
            assert regs.register_number(regs.register_name(number)) \
                == number

    def test_name_with_and_without_sigil(self):
        assert regs.register_number("$sp") == 29
        assert regs.register_number("sp") == 29

    def test_numeric_names(self):
        assert regs.register_number("$29") == 29
        assert regs.register_number("0") == 0

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            regs.register_number("$bogus")

    def test_out_of_range_number_raises(self):
        with pytest.raises(ValueError):
            regs.register_number("$32")
        with pytest.raises(ValueError):
            regs.register_name(32)
        with pytest.raises(ValueError):
            regs.register_name(-1)


class TestRegisterClasses:
    def test_param_registers(self):
        assert regs.is_param_register(regs.A0)
        assert regs.is_param_register(regs.A3)
        assert not regs.is_param_register(regs.T0)

    def test_return_registers(self):
        assert regs.is_return_register(regs.V0)
        assert regs.is_return_register(regs.V1)
        assert not regs.is_return_register(regs.A0)

    def test_call_clobbered_includes_temps_and_args(self):
        for t in regs.TEMP_REGISTERS:
            assert t in regs.CALL_CLOBBERED
        for a in regs.PARAM_REGISTERS:
            assert a in regs.CALL_CLOBBERED
        assert regs.RA in regs.CALL_CLOBBERED

    def test_call_clobbered_excludes_saved(self):
        for s in regs.SAVED_REGISTERS:
            assert s not in regs.CALL_CLOBBERED
        assert regs.SP not in regs.CALL_CLOBBERED
        assert regs.GP not in regs.CALL_CLOBBERED
