"""Baseline classifier tests: OKN categories and the static BDH
region/kind/type analysis."""

import pytest

from repro.baselines import bdh, okn
from repro.compiler.driver import compile_source
from repro.dataflow.addrflow import AddressFlow
from repro.patterns.builder import build_load_infos

POINTER_SRC = r"""
struct n { int v; struct n *next; };
struct n *head;
int main() {
    struct n *p;
    int s;
    s = 0;
    p = head;
    while (p != NULL) { s = s + p->v; p = p->next; }
    return s;
}
"""

ARRAY_SRC = r"""
int a[128];
int main() {
    int i; int s;
    s = 0;
    for (i = 0; i < 128; i = i + 1) s = s + a[i];
    return s;
}
"""

HEAP_SRC = r"""
struct rec { int x; int *buf; };
int main() {
    struct rec *r;
    int i; int s;
    r = (struct rec*) malloc(sizeof(struct rec));
    r->buf = (int*) malloc(64);
    r->x = 3;
    s = 0;
    for (i = 0; i < 16; i = i + 1)
        s = s + r->buf[i] + r->x;
    return s;
}
"""


def classify_okn(source, optimize=False, include_chain=True):
    program = compile_source(source, optimize=optimize)
    infos = build_load_infos(program)
    return program, infos, okn.classify(infos, program,
                                        include_chain=include_chain)


def classify_bdh(source, optimize=False, include_chain=True):
    program = compile_source(source, optimize=optimize)
    infos = build_load_infos(program)
    return program, infos, bdh.classify(program, infos,
                                        include_chain=include_chain)


class TestAddressFlow:
    def test_pointer_load_feeds_address(self):
        program = compile_source(POINTER_SRC)
        flow = AddressFlow(program)
        # at -O0 the reload of `p` feeds the p->v / p->next addresses
        assert flow.address_source_loads

    def test_chain_members_of_targets(self):
        program = compile_source(POINTER_SRC)
        flow = AddressFlow(program)
        all_consumers = set()
        for consumers in flow.feeds.values():
            all_consumers |= consumers
        chain = flow.chain_members(all_consumers)
        assert chain == flow.address_source_loads


class TestOKN:
    def test_pointer_chase_flagged(self):
        _, infos, result = classify_okn(POINTER_SRC)
        kinds = set(result.categories.values())
        assert okn.KIND_POINTER in kinds
        assert result.delinquent_set

    def test_array_scan_flagged(self):
        _, infos, result = classify_okn(ARRAY_SRC)
        assert result.delinquent_set

    def test_chain_inclusion_increases_selection(self):
        _, _, with_chain = classify_okn(POINTER_SRC, include_chain=True)
        _, _, without = classify_okn(POINTER_SRC, include_chain=False)
        assert without.delinquent_set <= with_chain.delinquent_set
        assert len(with_chain.delinquent_set) \
            > len(without.delinquent_set)

    def test_plain_scalar_not_flagged_without_chain(self):
        src = "int main() { int x; x = 2; return x + x; }"
        _, infos, result = classify_okn(src, include_chain=False)
        mains = {a for a, i in infos.items() if i.function == "main"}
        assert not (result.delinquent_set & mains)

    def test_strided_category_on_promoted_walk(self):
        # optimized pointer walk: recurrence without memory deref chain
        src = ("int main(int n) { int i; int s; s = 0;\n"
               "  for (i = 0; i < n; i = i + 1) s = s + i;\n"
               "  return s; }")
        _, infos, result = classify_okn(src, optimize=True,
                                        include_chain=False)
        assert okn.KIND_OTHER in set(result.categories.values()) \
            or result.categories  # no loads at all is fine too

    def test_counts_histogram(self):
        _, _, result = classify_okn(POINTER_SRC)
        counts = result.counts()
        assert sum(counts.values()) == len(result.categories)


class TestBDHRegions:
    def test_heap_via_malloc_propagation(self):
        program, infos, result = classify_bdh(HEAP_SRC, optimize=True)
        regions = {name[0] for name in result.classes.values()}
        assert "H" in regions

    def test_global_array_region(self):
        _, infos, result = classify_bdh(ARRAY_SRC)
        g_classes = [name for addr, name in result.classes.items()
                     if infos[addr].function == "main"
                     and name.startswith("G")]
        assert g_classes, "global array access should classify G"

    def test_stack_scalar_region(self):
        src = "int main() { int x; x = 1; return x + x; }"
        _, infos, result = classify_bdh(src)
        s_classes = [name for addr, name in result.classes.items()
                     if infos[addr].function == "main"]
        assert any(name.startswith("S") for name in s_classes)


class TestBDHKindsAndTypes:
    def test_array_kind(self):
        _, infos, result = classify_bdh(ARRAY_SRC)
        kinds = {name[1] for addr, name in result.classes.items()
                 if infos[addr].function == "main"}
        assert "A" in kinds

    def test_field_kind_on_arrow(self):
        _, infos, result = classify_bdh(POINTER_SRC)
        kinds = {name[1] for addr, name in result.classes.items()
                 if infos[addr].function == "main"}
        assert "F" in kinds

    def test_pointer_type_on_next_field(self):
        _, infos, result = classify_bdh(POINTER_SRC)
        types = {name[2] for addr, name in result.classes.items()
                 if infos[addr].function == "main"}
        assert "P" in types

    def test_class_strings_wellformed(self):
        _, _, result = classify_bdh(HEAP_SRC)
        for name in result.classes.values():
            assert len(name) == 3
            assert name[0] in "SHG"
            assert name[1] in "SAF"
            assert name[2] in "PN"


class TestBDHSelection:
    def test_delinquent_union(self):
        _, _, result = classify_bdh(POINTER_SRC)
        for address in result.delinquent_set - result.chain:
            assert result.classes[address] in bdh.DELINQUENT_CLASSES

    def test_chain_inclusion_monotone(self):
        _, _, with_chain = classify_bdh(POINTER_SRC, include_chain=True)
        _, _, without = classify_bdh(POINTER_SRC, include_chain=False)
        assert without.delinquent_set <= with_chain.delinquent_set

    def test_counts(self):
        _, _, result = classify_bdh(ARRAY_SRC)
        assert sum(result.counts().values()) == len(result.classes)


class TestBaselinesOnSample(object):
    def test_baselines_flag_more_than_heuristic(self, sample_program):
        from repro.heuristic.classifier import DelinquencyClassifier
        infos = build_load_infos(sample_program)
        ours = DelinquencyClassifier(use_frequency=False).classify(infos)
        okn_result = okn.classify(infos, sample_program)
        bdh_result = bdh.classify(sample_program, infos)
        assert len(okn_result.delinquent_set) \
            >= len(ours.delinquent_set)
        assert len(bdh_result.delinquent_set) \
            >= len(ours.delinquent_set)
