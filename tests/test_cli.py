"""CLI tests for python -m repro."""

import pytest

from repro.__main__ import main

PROG = r"""
int a[512];
int main(int n) {
    int i; int s;
    s = 0;
    for (i = 0; i < 512; i = i + 1)
        a[i] = i;
    for (i = 0; i < 512; i = i + 1)
        s = s + a[i];
    print_int(s + n);
    return 0;
}
"""


@pytest.fixture()
def source_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(PROG)
    return str(path)


class TestRun:
    def test_run_prints_output(self, source_file, capsys):
        code = main(["run", source_file])
        assert code == 0
        assert capsys.readouterr().out.strip() == \
            str(sum(range(512)))

    def test_run_with_args(self, source_file, capsys):
        main(["run", source_file, "--args", "10"])
        assert capsys.readouterr().out.strip() == \
            str(sum(range(512)) + 10)

    def test_run_optimized(self, source_file, capsys):
        main(["run", source_file, "-O"])
        assert capsys.readouterr().out.strip() == \
            str(sum(range(512)))


class TestAnalyze:
    def test_analyze_output(self, source_file, capsys):
        code = main(["analyze", source_file])
        assert code == 0
        out = capsys.readouterr().out
        assert "|Lambda|" in out
        assert "pi =" in out
        assert "rho" in out
        assert "pattern:" in out

    def test_analyze_static(self, source_file, capsys):
        code = main(["analyze", source_file, "--static"])
        assert code == 0
        out = capsys.readouterr().out
        assert "rho" not in out          # no execution, no coverage
        assert "|Delta|" in out

    def test_analyze_delta(self, source_file, capsys):
        main(["analyze", source_file, "--delta", "9.9"])
        out = capsys.readouterr().out
        assert "|Delta| = 0" in out


class TestMissingSource:
    def test_missing_file_is_a_clean_error(self, capsys):
        code = main(["analyze", "/no/such/file.c"])
        assert code == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("repro: error:")
        assert "/no/such/file.c" in captured.err
        assert "Traceback" not in captured.err

    def test_missing_file_other_commands(self, capsys):
        for command in ("run", "disasm", "asm", "verify", "tlb",
                        "redundancy"):
            assert main([command, "/no/such/file.c"]) == 2
            assert "repro: error:" in capsys.readouterr().err

    def test_oserror_during_output_is_exit_2(self, source_file,
                                             capsys):
        """main() maps *any* OSError — not just a missing source — to
        a tracebackless diagnostic and exit code 2."""
        code = main(["analyze", str(source_file), "--static",
                     "--json", "/no/such/dir/out.json"])
        assert code == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("repro: error:")
        assert "Traceback" not in captured.err


class TestCodeViews:
    def test_disasm(self, source_file, capsys):
        assert main(["disasm", source_file]) == 0
        out = capsys.readouterr().out
        assert "<main>" in out
        assert "lw $" in out

    def test_asm(self, source_file, capsys):
        assert main(["asm", source_file]) == 0
        out = capsys.readouterr().out
        assert ".ent main" in out
        assert "%gp(a)" in out


class TestTables:
    def test_tables_forwarding(self, capsys):
        code = main(["tables", "--tables", "6", "--scale", "0.05",
                     "--no-disk-cache"])
        assert code == 0
        assert "Table 6" in capsys.readouterr().out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestWarm:
    def test_warm_filtered(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        code = main(["warm", "--workloads", "129.compress",
                     "--scale", "0.03", "--jobs", "2",
                     "--cache-dir", str(cache_dir)])
        assert code == 0
        out = capsys.readouterr().out
        assert "warm:" in out
        assert "job(s)" in out
        assert list(cache_dir.glob("*.json"))

    def test_warm_unknown_workload(self, tmp_path, capsys):
        code = main(["warm", "--workloads", "999.nope",
                     "--cache-dir", str(tmp_path / "cache")])
        assert code == 2
        assert "unknown workload" in capsys.readouterr().out


class TestJsonExport:
    def test_analyze_json(self, source_file, capsys):
        import json
        code = main(["analyze", source_file, "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 1
        assert payload["summary"]["num_loads"] > 0
        assert isinstance(payload["loads"], list)

    def test_analyze_json_static(self, source_file, capsys):
        import json
        main(["analyze", source_file, "--json", "--static"])
        payload = json.loads(capsys.readouterr().out)
        assert "rho" not in payload["summary"]

    def test_analyze_json_to_file(self, source_file, tmp_path,
                                  capsys):
        import json
        destination = tmp_path / "report.json"
        code = main(["analyze", source_file,
                     "--json", str(destination)])
        assert code == 0
        assert capsys.readouterr().out == ""
        main(["analyze", source_file, "--json"])
        stdout_payload = capsys.readouterr().out
        # the file and stdout forms carry the identical document
        assert destination.read_text() == stdout_payload
        payload = json.loads(destination.read_text())
        assert payload["schema_version"] == 1


class TestVerify:
    def test_verify_clean(self, source_file, capsys):
        code = main(["verify", source_file])
        assert code == 0
        assert "0 issue(s)" in capsys.readouterr().out

    def test_verify_optimized(self, source_file, capsys):
        assert main(["verify", source_file, "-O"]) == 0
