#!/usr/bin/env python
"""Service smoke probe: start a real server process, exercise it, stop it.

Run from the repository root (CI does)::

    PYTHONPATH=src python scripts/service_smoke.py
    PYTHONPATH=src python scripts/service_smoke.py --cluster

Spawns ``python -m repro serve`` as a subprocess on an ephemeral port,
waits for its listening banner, then checks with a client that

1. ``health`` answers ok,
2. one ``analyze`` round trip is byte-identical to the in-process
   pipeline,
3. the repeat request is served from the cache,
4. ``metrics`` reports the traffic,
5. the ``shutdown`` op terminates the process cleanly (exit code 0).

``--cluster`` runs the same probe against ``python -m repro cluster``
fronting two spawned workers, then SIGKILLs one worker mid-run and
asserts every subsequent request still succeeds (failover) and the
router reports the ejection.

Exits non-zero on the first failed check.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api import analyze_program               # noqa: E402
from repro.export import report_to_dict             # noqa: E402
from repro.service.client import ServiceClient      # noqa: E402

SOURCE = r"""
int a[512];
int main(int n) {
    int i; int s;
    s = 0;
    for (i = 0; i < 512; i = i + 1)
        a[i] = i;
    for (i = 0; i < 512; i = i + 1)
        s = s + a[i];
    print_int(s + n);
    return 0;
}
"""


def main() -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", "0", "--no-disk-cache"],
        stdout=subprocess.PIPE, text=True, env=env, cwd=REPO_ROOT)
    try:
        banner = proc.stdout.readline().strip()
        print(f"smoke: {banner}")
        prefix = "repro service listening on "
        assert banner.startswith(prefix), f"unexpected banner: {banner!r}"
        host, port = banner[len(prefix):].rsplit(":", 1)

        with ServiceClient(host, int(port), timeout=120.0) as client:
            health = client.health()
            assert health["status"] == "ok", health
            print(f"smoke: health ok "
                  f"(v{health['version']}, "
                  f"protocol {health['protocol_version']})")

            served = client.analyze(SOURCE)
            local = report_to_dict(analyze_program(SOURCE))
            assert json.dumps(served) == json.dumps(local), \
                "served analyze diverges from in-process pipeline"
            print(f"smoke: analyze round trip identical "
                  f"({served['summary']['num_loads']} loads, "
                  f"{served['summary']['num_delinquent']} delinquent)")

            repeat = client.request("analyze", {"source": SOURCE})
            assert repeat["cached"] == "memory", repeat.get("cached")
            print("smoke: repeat request served from memory cache")

            metrics = client.metrics()
            assert metrics["requests"]["by_op"].get("analyze") == 2, \
                metrics["requests"]
            print(f"smoke: metrics ok "
                  f"(p50 analyze "
                  f"{metrics['latency']['analyze']['p50_ms']}ms)")

            client.shutdown()

        proc.wait(timeout=30)
        assert proc.returncode == 0, \
            f"server exited with {proc.returncode}"
        print("smoke: clean shutdown — all checks passed")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


def cluster_main() -> int:
    import signal

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "cluster", "--port", "0",
         "--workers", "2", "--spawn", "--no-disk-cache",
         "--probe-interval", "0.3"],
        stdout=subprocess.PIPE, text=True, env=env, cwd=REPO_ROOT)
    try:
        banner = proc.stdout.readline().strip()
        print(f"smoke: {banner}")
        prefix = "repro cluster listening on "
        assert banner.startswith(prefix), f"unexpected banner: {banner!r}"
        address = banner[len(prefix):].split(" ")[0]
        host, port = address.rsplit(":", 1)

        with ServiceClient(host, int(port), timeout=120.0) as client:
            health = client.health()
            assert health["status"] == "ok", health
            assert health["role"] == "router", health
            assert health["workers"]["healthy"] == 2, health["workers"]
            print(f"smoke: router health ok "
                  f"({health['workers']['healthy']} healthy workers, "
                  f"{health['ring']['vnodes']} vnodes)")

            served = client.analyze(SOURCE)
            local = report_to_dict(analyze_program(SOURCE))
            assert json.dumps(served) == json.dumps(local), \
                "routed analyze diverges from in-process pipeline"
            print("smoke: routed analyze identical to in-process")

            repeat = client.request("analyze", {"source": SOURCE})
            assert repeat["cached"] == "memory", repeat.get("cached")
            print("smoke: repeat request hit the warm worker's cache")

            status = client.call("cluster", {"action": "status"})
            pids = [worker["pid"] for worker in status["workers"]]
            assert all(pid for pid in pids), status["workers"]
            victim = pids[0]
            os.kill(victim, signal.SIGKILL)
            print(f"smoke: killed worker pid {victim}")

            errors = 0
            for index in range(8):
                variant = SOURCE + "\n" * (index + 1)
                try:
                    client.analyze(variant)
                except Exception as exc:   # noqa: BLE001 - count all
                    errors += 1
                    print(f"smoke: request {index} FAILED: {exc}")
            assert errors == 0, f"{errors} request(s) failed after kill"
            print("smoke: 8/8 requests succeeded during failover")

            deadline = time.time() + 30
            while time.time() < deadline:
                status = client.call("cluster", {"action": "status"})
                healthy = sum(1 for worker in status["workers"]
                              if worker["healthy"])
                if healthy == 1:
                    break
                time.sleep(0.2)
            assert healthy == 1, status["workers"]
            print(f"smoke: dead worker ejected "
                  f"(failovers={status['router']['failovers']}, "
                  f"ejections={status['router']['ejections']})")

            metrics = client.metrics()
            assert metrics["cluster"]["workers"]["reporting"] == 1, \
                metrics["cluster"]["workers"]
            assert metrics["cluster"]["requests"]["total"] > 0, \
                metrics["cluster"]["requests"]
            print("smoke: cluster metrics aggregation ok")

            client.shutdown()

        proc.wait(timeout=30)
        assert proc.returncode == 0, \
            f"router exited with {proc.returncode}"
        print("smoke: clean cluster shutdown — all checks passed")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


if __name__ == "__main__":
    sys.exit(cluster_main() if "--cluster" in sys.argv else main())
