#!/usr/bin/env python
"""Campaign smoke probe: run, SIGKILL mid-flight, resume, verify.

Run from the repository root (CI does)::

    PYTHONPATH=src python scripts/campaign_smoke.py

Exercises the ``python -m repro campaign`` CLI end to end:

1. launches a two-table campaign subprocess against a scratch cache
   directory and SIGKILLs it as soon as the manifest records progress,
2. resumes with ``--resume`` while the ``REPRO_CAMPAIGN_FORBID``
   tripwire lists every completed cell — any attempt to recompute one
   raises, so a clean exit *proves* zero redundant work,
3. checks ``--status`` reports the finished ledger with no stale
   cells,
4. re-runs the whole campaign in a second scratch directory without
   interruption and asserts the rendered tables are byte-identical.

Exits non-zero on the first failed check.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.campaign import Manifest, campaign_dir      # noqa: E402

SCALE = "0.03"
TABLES = "6,10"


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return env


def _campaign_cmd(cache: Path, *extra: str) -> list:
    return [sys.executable, "-m", "repro", "campaign",
            "--tables", TABLES, "--scale", SCALE, "--jobs", "1",
            "--cache-dir", str(cache), *extra]


def main() -> int:
    scratch = Path(tempfile.mkdtemp(prefix="campaign-smoke-"))
    killed_cache = scratch / "killed"
    clean_cache = scratch / "clean"
    manifest = Manifest(campaign_dir(killed_cache))

    # 1. start the campaign and kill it once the first cell lands
    child = subprocess.Popen(_campaign_cmd(killed_cache),
                             env=_env(), cwd=REPO_ROOT,
                             stdout=subprocess.DEVNULL,
                             stderr=subprocess.DEVNULL)
    try:
        deadline = time.time() + 300
        while time.time() < deadline:
            if child.poll() is not None:
                break
            if len(manifest.latest()) >= 1:
                child.send_signal(signal.SIGKILL)
                break
            time.sleep(0.05)
        child.wait(timeout=60)
    finally:
        if child.poll() is None:
            child.kill()
            child.wait()
    completed = manifest.latest()
    assert completed, "campaign was killed before any cell landed"
    interrupted = child.returncode != 0
    print(f"smoke: killed campaign with {len(completed)} cell(s) "
          f"recorded (interrupted={interrupted})")

    # 2. resume with the tripwire armed on every completed cell
    forbid = scratch / "forbid.txt"
    forbid.write_text("\n".join(sorted(completed)) + "\n")
    env = _env()
    env["REPRO_CAMPAIGN_FORBID"] = str(forbid)
    resumed = subprocess.run(
        _campaign_cmd(killed_cache, "--resume"),
        env=env, cwd=REPO_ROOT, capture_output=True, text=True)
    assert resumed.returncode == 0, \
        f"resume failed (tripwire?):\n{resumed.stderr}"
    print("smoke: resume completed without recomputing any "
          "finished cell")

    # 3. the ledger is complete and current
    status = subprocess.run(
        _campaign_cmd(killed_cache, "--status"),
        env=_env(), cwd=REPO_ROOT, capture_output=True, text=True)
    assert status.returncode == 0, status.stderr
    summary = json.loads(status.stdout)
    assert summary["stale_cells"] == 0, summary
    assert summary["by_kind"].get("table") == 2, summary
    print(f"smoke: status ok ({summary['cells']} cells, "
          f"{summary['recorded_wall_s']}s recorded)")

    # 4. byte-identical tables vs an uninterrupted campaign
    fresh = subprocess.run(_campaign_cmd(clean_cache),
                           env=_env(), cwd=REPO_ROOT,
                           capture_output=True, text=True)
    assert fresh.returncode == 0, fresh.stderr
    for number in (6, 10):
        name = f"table{number:02d}.txt"
        resumed_text = (campaign_dir(killed_cache) / "tables"
                        / name).read_text()
        fresh_text = (campaign_dir(clean_cache) / "tables"
                      / name).read_text()
        assert resumed_text == fresh_text, \
            f"{name} diverges between resumed and clean campaigns"
    print("smoke: resumed tables byte-identical to a clean run — "
          "all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
