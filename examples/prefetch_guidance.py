"""Use delinquent-load identification to drive software prefetching.

The paper's motivation: "Performing a prefetch for every load instruction
... will be too costly"; identification lets you prefetch only where it
pays.  This example models an ideal next-access prefetcher: for each
*selected* static load, the block of its next dynamic access is touched
``DISTANCE`` accesses ahead of time.  It then compares three policies:

* prefetch nothing (baseline miss count),
* prefetch only the heuristic's Delta (few prefetch ops, most misses
  removed),
* prefetch every load (all misses removed — at many times the overhead).

Run:  python examples/prefetch_guidance.py
"""

from collections import defaultdict

from repro import (
    BASELINE_CONFIG, DelinquencyClassifier, Machine, build_load_infos,
    compile_source,
)
from repro.cache.model import Cache
from repro.machine.trace import LOAD
from repro.profiling.profile import BlockProfile

DISTANCE = 16      # prefetch lead, in memory accesses

SOURCE = r"""
struct node { int value; int pad0; int pad1; int pad2;
              int pad3; int pad4; int pad5; struct node *next; };
struct node *head;
int total;

int main() {
    struct node *p;
    int i;
    struct node *n;
    head = NULL;
    srand(3);
    for (i = 0; i < 6000; i = i + 1) {
        n = (struct node*) malloc(sizeof(struct node));
        n->value = rand();
        n->next = head;
        head = n;
    }
    total = 0;
    for (i = 0; i < 12; i = i + 1) {
        p = head;
        while (p != NULL) {
            total = total + p->value;
            p = p->next;
        }
    }
    print_int(total & 65535);
    return 0;
}
"""


def simulate_with_prefetch(trace, prefetch_pcs):
    """Replay with an ideal lookahead prefetcher for selected PCs."""
    cache = Cache(BASELINE_CONFIG)
    pcs, addrs, kinds = trace.pcs, trace.addresses, trace.kinds
    n = len(pcs)
    misses = 0
    load_count = 0
    prefetches = 0
    for i in range(n):
        # issue prefetches for selected loads DISTANCE ahead
        j = i + DISTANCE
        if j < n and pcs[j] in prefetch_pcs and kinds[j] == LOAD:
            cache.access(addrs[j])
            prefetches += 1
        if kinds[i] == LOAD:
            load_count += 1
            if not cache.access(addrs[i]):
                misses += 1
        else:
            cache.access(addrs[i])
    return misses, prefetches, load_count


def main() -> None:
    print("compiling and running the list-walking workload ...")
    program = compile_source(SOURCE)
    machine = Machine(program)
    result = machine.run()
    profile = BlockProfile.from_execution(program, result)

    infos = build_load_infos(program)
    heuristic = DelinquencyClassifier().classify(
        infos, profile.load_exec_counts(), profile.hotspot_loads())
    delta = heuristic.delinquent_set
    all_loads = set(program.load_addresses())

    print(f"|Lambda| = {len(all_loads)}, heuristic Delta = {len(delta)} "
          f"loads\n")
    rows = [
        ("no prefetching", set()),
        ("prefetch Delta only", delta),
        ("prefetch every load", all_loads),
    ]
    print(f"{'policy':24s} {'load misses':>12} {'prefetch ops':>14}")
    baseline = None
    for label, selected in rows:
        misses, ops, _ = simulate_with_prefetch(result.trace, selected)
        if baseline is None:
            baseline = misses
        saved = 1 - misses / baseline if baseline else 0.0
        print(f"{label:24s} {misses:>12,} {ops:>14,}"
              f"   ({saved:.0%} of misses removed)")

    print("\nThe Delta-only policy removes almost all removable misses "
          "at a fraction of the prefetch traffic — the paper's case for "
          "precise static identification.")


if __name__ == "__main__":
    main()
