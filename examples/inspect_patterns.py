"""Inspect the post-compilation analysis the heuristic is built on.

Shows the full static pipeline for one function: the objdump-style
disassembly, and for every load the reconstructed address patterns in the
paper's notation with their classification features — useful when adding
new heuristics or debugging why a load scores the way it does.

Run:  python examples/inspect_patterns.py [--optimize]
"""

import sys

from repro import build_load_infos, compile_source, disassemble
from repro.heuristic.classifier import DelinquencyClassifier

SOURCE = r"""
struct particle { float x; float v; struct particle *partner; };

float field[512];
struct particle *swarm;

void step(int n) {
    int i;
    struct particle *p;
    for (i = 0; i < n; i = i + 1) {
        p = swarm + i;
        p->v = p->v + field[(int)(p->x) & 511];
        if (p->partner != NULL)
            p->v = p->v + p->partner->v * 0.5;
        p->x = p->x + p->v;
    }
}

int main() {
    int i;
    swarm = (struct particle*) calloc(2048, sizeof(struct particle));
    for (i = 0; i < 512; i = i + 1)
        field[i] = (float) i / 512.0;
    for (i = 0; i < 20; i = i + 1)
        step(2048);
    print_int(1);
    return 0;
}
"""


def main() -> None:
    optimize = "--optimize" in sys.argv
    program = compile_source(SOURCE, optimize=optimize)
    infos = build_load_infos(program)
    classifier = DelinquencyClassifier(use_frequency=False)
    scored = classifier.classify(infos)

    info = program.symtab.functions["step"]
    print(f"=== disassembly of step() "
          f"({'-O' if optimize else 'unoptimized'}) ===")
    listing = disassemble(program, with_encoding=False)
    for line in listing.splitlines():
        address = int(line.split(":")[0].split()[0], 16) \
            if ":" in line or "<" in line else None
        if address is not None and info.start <= address < info.end:
            print(line)

    print("\n=== address patterns of step()'s loads ===")
    for address in sorted(infos):
        load = infos[address]
        if load.function != "step":
            continue
        verdict = scored.loads[address]
        flag = "DELINQUENT" if verdict.is_delinquent else "-"
        print(f"\n{address:#x}  {load.instruction.text():28s} "
              f"phi={verdict.score:+.2f}  {flag}")
        for pattern, feats in zip(load.patterns, load.features):
            notes = []
            if feats.sp_count:
                notes.append(f"sp x{feats.sp_count}")
            if feats.gp_count:
                notes.append(f"gp x{feats.gp_count}")
            if feats.deref_depth:
                notes.append(f"deref {feats.deref_depth}")
            if feats.has_mul or feats.has_shift:
                notes.append("mul/shift")
            if feats.has_recurrence:
                notes.append("recurrent")
            print(f"    {str(pattern):52s} [{', '.join(notes) or '-'}]")


if __name__ == "__main__":
    main()
