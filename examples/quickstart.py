"""Quickstart: find the delinquent loads in a small C program.

Compiles a MiniC program with the bundled compiler, statically classifies
every load with the paper's heuristic (address patterns -> aggregate
classes -> phi score), then validates the prediction against a cache-
simulated run: the flagged ~10% of loads should cover ~90%+ of misses.

Run:  python examples/quickstart.py
"""

from repro import analyze_program

SOURCE = r"""
struct node { int key; int value; struct node *next; };

struct node **buckets;   /* hash table of chains */
int found;

int lookup(int key) {
    struct node *p;
    p = buckets[(key * 2654435761) % 4096 & 4095];
    while (p != NULL) {
        if (p->key == key)
            return p->value;
        p = p->next;
    }
    return -1;
}

void insert(int key, int value) {
    struct node *n;
    int h;
    n = (struct node*) malloc(sizeof(struct node));
    h = (key * 2654435761) % 4096 & 4095;
    n->key = key;
    n->value = value;
    n->next = buckets[h];
    buckets[h] = n;
}

int main() {
    int i;
    srand(1);
    buckets = (struct node**) calloc(4096, 4);
    for (i = 0; i < 8000; i = i + 1)
        insert(rand() * 32768 + rand(), i);
    found = 0;
    for (i = 0; i < 20000; i = i + 1)
        if (lookup(rand() * 32768 + rand()) >= 0)
            found = found + 1;
    print_int(found);
    return 0;
}
"""


def main() -> None:
    print("compiling, analyzing and simulating ...")
    report = analyze_program(SOURCE)

    program = report.program
    print(f"\nprogram: {len(program.instructions)} instructions, "
          f"|Lambda| = {program.num_loads()} static loads")
    print(f"executed {report.execution.steps:,} instructions, "
          f"{report.cache_stats.total_load_accesses:,} loads, "
          f"{report.cache_stats.total_load_misses:,} load misses "
          f"({report.cache_stats.config.describe()} data cache)")

    delta = report.delinquent_loads
    print(f"\nheuristic flags {len(delta)} loads as possibly delinquent:"
          f"  pi = {report.pi:.1%},  coverage rho = {report.rho:.1%}\n")

    ranked = sorted(delta,
                    key=lambda a: -report.cache_stats.load_misses.get(a, 0))
    for address in ranked[:5]:
        print(report.describe_load(address))
        print()


if __name__ == "__main__":
    main()
