"""Compare the paper's heuristic against the OKN and BDH baselines.

Reproduces the Section 8.5 comparison on a pointer-chasing scenario: all
three schemes reach high coverage, but the baselines flag several times
more static loads (higher pi), which is exactly the false-positive
problem the paper's heuristic solves.

Run:  python examples/compare_baselines.py [workload ...]
"""

import sys

from repro import DelinquencyClassifier, Session, coverage, precision
from repro.baselines import bdh, okn

DEFAULT_WORKLOADS = ("181.mcf", "129.compress", "197.parser", "179.art")


def evaluate(session: Session, name: str) -> None:
    m = session.measurement(name)
    heuristic = DelinquencyClassifier().classify(
        m.load_infos, m.load_exec, m.profile.hotspot_loads())
    okn_result = okn.classify(m.load_infos, m.program)
    bdh_result = bdh.classify(m.program, m.load_infos)

    print(f"\n{name}  (|Lambda| = {m.num_loads}, "
          f"{m.total_load_misses:,} load misses)")
    print(f"  {'scheme':12s} {'|Delta|':>8} {'pi':>8} {'rho':>8}")
    for label, delta in (
            ("heuristic", heuristic.delinquent_set),
            ("OKN", okn_result.delinquent_set),
            ("BDH", bdh_result.delinquent_set)):
        pi = precision(delta, m.num_loads)
        rho = coverage(delta, m.load_misses)
        print(f"  {label:12s} {len(delta):>8} {pi:>8.1%} {rho:>8.1%}")

    histogram = bdh_result.counts()
    top = sorted(histogram.items(), key=lambda kv: -kv[1])[:4]
    print("  BDH class mix:", ", ".join(f"{k}:{v}" for k, v in top))


def main() -> None:
    names = sys.argv[1:] or list(DEFAULT_WORKLOADS)
    session = Session(scale=0.3)
    for name in names:
        evaluate(session, name)


if __name__ == "__main__":
    main()
