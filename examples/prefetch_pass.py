"""Delta-guided software prefetching as a real binary transformation.

Unlike examples/prefetch_guidance.py (which models an ideal prefetcher on
the trace), this example uses the actual pipeline the paper motivates:

1. compile a workload,
2. statically identify the possibly delinquent loads,
3. rewrite the *binary*, inserting `pref` instructions before exactly
   those loads (repro.prefetch + repro.rewrite),
4. re-run and compare three policies under a stall-cycle model.

Run:  python examples/prefetch_pass.py [workload]
"""

import sys

from repro.compiler.driver import compile_source
from repro.heuristic.classifier import DelinquencyClassifier
from repro.machine.simulator import Machine
from repro.patterns.builder import build_load_infos
from repro.prefetch.evaluate import compare_policies
from repro.profiling.profile import BlockProfile
from repro.workloads.registry import get

DEFAULT = "183.equake"


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else DEFAULT
    print(f"compiling {name} ...")
    program = compile_source(get(name).generate("input1", scale=0.3))

    print("profiling and classifying ...")
    result = Machine(program).run()
    profile = BlockProfile.from_execution(program, result)
    infos = build_load_infos(program)
    heuristic = DelinquencyClassifier().classify(
        infos, profile.load_exec_counts(), profile.hotspot_loads())
    delta = heuristic.delinquent_set
    print(f"|Lambda| = {program.num_loads()}, Delta = {len(delta)} "
          f"loads flagged\n")

    print("rewriting and measuring the three policies ...")
    comparison = compare_policies(program, delta)
    print()
    print(comparison.render())
    print(f"\nDelta-guided prefetching removes "
          f"{comparison.miss_reduction(comparison.delta):.0%} of load "
          f"misses with {comparison.delta.prefetch_ops:,} prefetches; "
          f"prefetching every load costs "
          f"{comparison.all_loads.prefetch_ops:,}.")


if __name__ == "__main__":
    main()
