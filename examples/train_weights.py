"""Retrain the aggregate-class weights on your own workload mix.

Walks the full Section 7 pipeline: profile a set of benchmarks under the
training cache, compute m/n/strength per class, decide class natures,
derive W(F) for the positive classes and the negative AG8/AG9 weights —
then compare classification quality between the paper's weights and the
retrained ones.

Run:  python examples/train_weights.py
"""

from repro import (
    DelinquencyClassifier, PAPER_WEIGHTS, Session, TRAINING_CONFIG,
    coverage, precision,
)
from repro.heuristic.training import BenchmarkTrainingData, train_weights

TRAIN_ON = ("181.mcf", "129.compress", "197.parser", "179.art",
            "147.vortex")
EVALUATE_ON = ("022.li", "072.sc")


def collect(session, name):
    m = session.measurement(name, cache_config=TRAINING_CONFIG)
    return m, BenchmarkTrainingData.collect(
        name=name, load_infos=m.load_infos, exec_counts=m.load_exec,
        load_misses=m.load_misses,
        hotspot_loads=m.profile.hotspot_loads())


def main() -> None:
    session = Session(scale=0.3)
    print(f"profiling {len(TRAIN_ON)} training workloads ...")
    training_data = []
    measurements = {}
    for name in TRAIN_ON:
        measurement, data = collect(session, name)
        measurements[name] = measurement
        training_data.append(data)

    report = train_weights(training_data)
    print(f"\n{'class':6s} {'paper':>8} {'retrained':>10}  nature")
    for class_name in (f"AG{i}" for i in range(1, 10)):
        evaluation = report.evaluations.get(class_name)
        nature = evaluation.nature if evaluation else "negative (rule)"
        print(f"{class_name:6s} {PAPER_WEIGHTS[class_name]:>+8.2f} "
              f"{report.weights[class_name]:>+10.2f}  {nature}")

    print("\nheld-out evaluation (pi / rho):")
    for name in EVALUATE_ON:
        m = session.measurement(name, cache_config=TRAINING_CONFIG)
        for label, weights in (("paper", PAPER_WEIGHTS),
                               ("retrained", report.weights)):
            clf = DelinquencyClassifier(weights=weights)
            result = clf.classify(m.load_infos, m.load_exec,
                                  m.profile.hotspot_loads())
            delta = result.delinquent_set
            print(f"  {name:14s} {label:10s} "
                  f"{precision(delta, m.num_loads):>6.1%} / "
                  f"{coverage(delta, m.load_misses):>6.1%}")


if __name__ == "__main__":
    main()
