"""Command-line interface.

    python -m repro run PROG.c [--optimize] [--args N ...]
    python -m repro analyze PROG.c [--optimize] [--static] [--delta D]
                                   [--json [FILE]] [--remote HOST:PORT]
    python -m repro tlb PROG.c [--geometry P,E[,A] ...] [--threshold T]
    python -m repro redundancy PROG.c [--top N] [--json [FILE]]
    python -m repro disasm PROG.c [--optimize]
    python -m repro asm PROG.c [--optimize]
    python -m repro verify PROG.c [--optimize]
    python -m repro warm [--jobs N] [--scale S] [--workloads W,...]
    python -m repro tables [--tables 1,7,11] [--scale S] [--report F]
    python -m repro campaign [--tables 1,7] [--jobs N | --remote H:P]
                             [--resume] [--status]
    python -m repro cache gc [--limit SIZE] [--dry-run]
    python -m repro serve [--port P] [--workers N] [--stats]
    python -m repro cluster --workers N [--spawn] [--port P]

``run`` executes the program on the bundled simulator; ``analyze`` runs
the paper's delinquent-load identification and prints the flagged loads
with their address patterns (``--json`` emits the ``repro.export``
schema, ``--remote`` sends the request to a running service instead of
analyzing in-process); ``disasm``/``asm`` show the generated code.
``warm`` pre-executes the experiment suite across worker processes and
fills the on-disk result cache; ``tables`` forwards to the experiment
runner; ``serve`` starts the long-lived delinquency-analysis service
(see :mod:`repro.service`); ``cluster`` fronts N such servers with a
cache-aware consistent-hash router (see :mod:`repro.cluster`).
"""

from __future__ import annotations

import argparse
import sys


def _read(path: str) -> str:
    with open(path) as handle:
        return handle.read()


def cmd_run(args: argparse.Namespace) -> int:
    from repro.compiler.driver import compile_source
    from repro.machine.simulator import run_program
    program = compile_source(_read(args.source), optimize=args.optimize)
    result = run_program(program, args=tuple(args.args),
                         trace_memory=False)
    for value in result.output:
        print(value)
    return result.exit_code


def _emit_json(text: str, destination: str) -> None:
    """``--json`` output: stdout for ``-``, else a file."""
    if destination == "-":
        print(text)
    else:
        with open(destination, "w") as handle:
            handle.write(text + "\n")


def _print_payload_summary(payload: dict) -> None:
    """Human-readable summary of an exported report payload.

    Mirrors the in-process ``analyze`` output but works from the JSON
    schema alone, so remote responses need no compiled program.
    """
    summary = payload["summary"]
    print(f"|Lambda| = {summary['num_loads']} static loads; "
          f"|Delta| = {summary['num_delinquent']} possibly delinquent "
          f"(pi = {summary['pi']:.1%})")
    if "rho" in summary:
        print(f"measured coverage rho = {summary['rho']:.1%}")
    print()
    flagged = [entry for entry in payload["loads"]
               if entry["delinquent"]]
    for entry in sorted(flagged, key=lambda e: -e["phi"]):
        print(f"load at {entry['address']} in {entry['function']}: "
              f"{entry['instruction']}")
        print(f"  phi = {entry['phi']:.2f} (possibly delinquent)")
        print(f"  classes: {', '.join(entry['classes']) or '(none)'}")
        for pattern in entry["patterns"]:
            print(f"  pattern: {pattern}")
        if "misses" in entry:
            print(f"  observed: {entry['misses']} misses / "
                  f"{entry['accesses']} accesses")
        print()


def _analyze_remote(args: argparse.Namespace) -> int:
    import json

    from repro.service.client import ServiceClient, ServiceError
    source = _read(args.source)
    params = {"source": source, "optimize": args.optimize,
              "delta": args.delta}
    op = "classify" if args.static else "analyze"
    try:
        with ServiceClient.connect(args.remote) as client:
            payload = client.call(op, params)
    except ValueError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    except (ServiceError, ConnectionError, OSError) as exc:
        print(f"repro: service error: {exc}", file=sys.stderr)
        return 3
    if args.json is not None:
        _emit_json(json.dumps(payload, indent=2), args.json)
    else:
        _print_payload_summary(payload)
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    if args.remote:
        return _analyze_remote(args)
    from repro.api import analyze_program
    from repro.heuristic.static_frequency import static_exec_counts
    report = analyze_program(
        _read(args.source), optimize=args.optimize,
        execute=not (args.static or args.analytic), delta=args.delta)
    if args.analytic:
        # Trace-free "observed" numbers: predicted per-PC misses from
        # the analytic reuse engine stand in for the measured ones, so
        # coverage (rho) is available with zero machine executions.
        from repro.analytic import predict_profile
        from repro.cache.config import BASELINE_CONFIG
        profile = predict_profile(report.program,
                                  block_size=BASELINE_CONFIG.block_size)
        report.cache_stats = profile.evaluate(BASELINE_CONFIG)
        note = "confident" if profile.confident \
            else "LOW - misses below are rough estimates"
        print(f"analytic prediction: coverage {profile.coverage:.1%} "
              f"({note})")
    if args.static:
        # re-classify with statically estimated frequencies
        from repro.heuristic.classifier import DelinquencyClassifier
        classifier = DelinquencyClassifier(delta=args.delta)
        report.heuristic = classifier.classify(
            report.load_infos,
            exec_counts=static_exec_counts(report.program))
    if args.json is not None:
        from repro.export import report_to_json
        _emit_json(report_to_json(report), args.json)
        return 0
    loads = report.program.num_loads()
    delta_set = report.delinquent_loads
    print(f"|Lambda| = {loads} static loads; "
          f"|Delta| = {len(delta_set)} possibly delinquent "
          f"(pi = {report.pi:.1%})")
    if report.rho is not None:
        print(f"measured coverage rho = {report.rho:.1%}")
    print()
    scores = report.heuristic.scores()
    for address in sorted(delta_set, key=lambda a: -scores[a]):
        print(report.describe_load(address))
        print()
    return 0


def _predict_configs(args: argparse.Namespace):
    from repro.cache.config import (BASELINE_CONFIG, CacheConfig,
                                    associativity_sweep, size_sweep)
    configs = []
    if args.sweep:
        configs = list(dict.fromkeys(associativity_sweep()
                                     + size_sweep()))
    for text in args.config:
        parts = [int(p) for p in text.split(",")]
        if not 1 <= len(parts) <= 3:
            raise ValueError(f"bad --config {text!r}; expected "
                             "SIZE[,ASSOC[,BLOCK_SIZE]]")
        configs.append(CacheConfig(
            size=parts[0],
            assoc=parts[1] if len(parts) > 1 else 1,
            block_size=parts[2] if len(parts) > 2 else 32))
    return configs or [BASELINE_CONFIG]


def cmd_predict(args: argparse.Namespace) -> int:
    """Per-PC miss prediction for a geometry grid, zero executions."""
    import json

    from repro.service.protocol import cache_config_to_dict
    source = _read(args.source)
    try:
        configs = _predict_configs(args)
    except ValueError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    if args.remote:
        from repro.service.client import ServiceClient, ServiceError
        try:
            with ServiceClient.connect(args.remote) as client:
                payload = client.predict(
                    source, optimize=args.optimize,
                    configs=[cache_config_to_dict(c) for c in configs],
                    fallback=not args.no_fallback)
        except (ValueError, ServiceError, ConnectionError,
                OSError) as exc:
            print(f"repro: service error: {exc}", file=sys.stderr)
            return 3
    else:
        from repro.pipeline.session import Session
        session = Session()
        session.add_source("cli-predict", source)
        pred = session.predict_stats("cli-predict",
                                     optimize=args.optimize,
                                     configs=configs,
                                     fallback=not args.no_fallback)
        payload = {
            "analytic": pred.analytic,
            "coverage": pred.coverage,
            "low_confidence_pcs": {f"{pc:#x}": list(r) for pc, r
                                   in sorted(
                                       pred.low_confidence_pcs.items())},
            "results": [{
                "config": cache_config_to_dict(stats.config),
                "description": stats.config.describe(),
                "total_load_misses": stats.total_load_misses,
                "total_load_accesses": sum(
                    stats.load_accesses.values()),
                "load_misses": {f"{a:#x}": m for a, m in
                                sorted(stats.load_misses.items())},
                "load_accesses": {f"{a:#x}": m for a, m in
                                  sorted(stats.load_accesses.items())},
            } for stats in pred.stats],
        }
    if args.json is not None:
        _emit_json(json.dumps(payload, indent=2), args.json)
        return 0
    mode = "analytic (no execution)" if payload.get("analytic") \
        else "measured fallback (low static confidence)"
    print(f"prediction mode: {mode}; "
          f"coverage {payload.get('coverage', 0.0):.1%}")
    low = payload.get("low_confidence_pcs") or {}
    if low:
        flagged = ", ".join(f"{pc} ({'/'.join(reasons)})"
                            for pc, reasons in sorted(low.items()))
        print(f"low-confidence loads: {flagged}")
    print()
    for entry in payload["results"]:
        print(f"{entry['description']}: "
              f"{entry['total_load_misses']} predicted load misses / "
              f"{entry['total_load_accesses']} accesses")
        top = sorted(entry["load_misses"].items(),
                     key=lambda kv: -kv[1])[:args.top]
        for pc, misses in top:
            accesses = entry["load_accesses"].get(pc, 0)
            print(f"  {pc}: {misses} / {accesses}")
    return 0


def _tlb_geometries(args: argparse.Namespace) -> list:
    """TLB geometries from ``--geometry`` / the single-geometry flags."""
    from repro.tlb import TlbConfig
    configs = []
    for text in args.geometry:
        parts = [int(p) for p in text.split(",")]
        if not 2 <= len(parts) <= 3:
            raise ValueError(f"bad --geometry {text!r}; expected "
                             "PAGE_SIZE,ENTRIES[,ASSOC]")
        configs.append(TlbConfig(
            page_size=parts[0], entries=parts[1],
            assoc=parts[2] if len(parts) > 2 else 0))
    if not configs:
        configs.append(TlbConfig(page_size=args.page_size,
                                 entries=args.entries,
                                 assoc=args.assoc))
    return configs


def cmd_tlb(args: argparse.Namespace) -> int:
    """Page-granular dTLB simulation plus the PCAX cross-tab."""
    import json

    source = _read(args.source)
    try:
        geometries = [c.to_dict() for c in _tlb_geometries(args)]
    except ValueError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    request = {"source": source, "optimize": args.optimize,
               "geometries": geometries, "threshold": args.threshold}
    if args.remote:
        from repro.service.client import ServiceClient, ServiceError
        try:
            with ServiceClient.connect(args.remote) as client:
                payload = client.tlb(source, optimize=args.optimize,
                                     geometries=geometries,
                                     threshold=args.threshold)
        except (ValueError, ServiceError, ConnectionError,
                OSError) as exc:
            print(f"repro: service error: {exc}", file=sys.stderr)
            return 3
    else:
        # same compute path the service runs, so local and remote
        # answers are byte-identical (and share the trace store)
        from repro.service.ops import run_tlb
        from repro.service.protocol import (ProtocolError,
                                            _normalize_tlb)
        try:
            payload = run_tlb(_normalize_tlb(request))
        except ProtocolError as exc:
            print(f"repro: error: {exc.message}", file=sys.stderr)
            return 2
    if args.json is not None:
        _emit_json(json.dumps(payload, indent=2), args.json)
        return 0
    for entry in payload["results"]:
        print(f"{entry['description']}: "
              f"{entry['total_misses']} misses / "
              f"{entry['total_accesses']} accesses "
              f"({entry['miss_rate']:.2%})")
        top = sorted(entry["load_misses"].items(),
                     key=lambda kv: -kv[1])[:args.top]
        for pc, misses in top:
            accesses = entry["load_accesses"].get(pc, 0)
            print(f"  {pc}: {misses} / {accesses}")
    pcax = payload["pcax"]
    print()
    print(f"PCAX @ {pcax['page_size']}B pages "
          f"(threshold {pcax['threshold']:.0%}): "
          f"{len(pcax['friendly'])} translation-predictable loads, "
          f"{len(pcax['delinquent'])} delinquent")
    cross = pcax["crosstab"]
    print(f"  both: {cross['both']}  "
          f"delinquent-only: {cross['delinquent_only']}  "
          f"friendly-only: {cross['friendly_only']}  "
          f"neither: {cross['neither']}")
    return 0


def cmd_redundancy(args: argparse.Namespace) -> int:
    """Per-PC redundant-load counts plus the AG-class cross-tab."""
    import json

    source = _read(args.source)
    if args.remote:
        from repro.service.client import ServiceClient, ServiceError
        try:
            with ServiceClient.connect(args.remote) as client:
                payload = client.redundancy(source,
                                            optimize=args.optimize)
        except (ValueError, ServiceError, ConnectionError,
                OSError) as exc:
            print(f"repro: service error: {exc}", file=sys.stderr)
            return 3
    else:
        from repro.service.ops import run_redundancy
        from repro.service.protocol import _normalize_redundancy
        payload = run_redundancy(_normalize_redundancy(
            {"source": source, "optimize": args.optimize}))
    if args.json is not None:
        _emit_json(json.dumps(payload, indent=2), args.json)
        return 0
    print(f"{payload['total_redundant']} redundant loads / "
          f"{payload['total_loads']} total ({payload['ratio']:.2%}); "
          f"{payload['total_reload_after_store']} reload after store")
    ranked = sorted(payload["loads"].items(),
                    key=lambda kv: -kv[1]["redundant"])[:args.top]
    for pc, row in ranked:
        print(f"  {pc}: {row['redundant']} / {row['accesses']} "
              f"redundant ({row['reload_after_store']} after store)")
    classes = {name: row for name, row in payload["classes"].items()
               if row["loads"]}
    if classes:
        print()
        for name, row in sorted(classes.items()):
            print(f"  {name}: {row['redundant']} / {row['loads']} "
                  f"redundant across {row['pcs']} loads")
    return 0


def cmd_disasm(args: argparse.Namespace) -> int:
    from repro.asm.disassembler import disassemble
    from repro.compiler.driver import compile_source
    program = compile_source(_read(args.source), optimize=args.optimize)
    print(disassemble(program))
    return 0


def cmd_asm(args: argparse.Namespace) -> int:
    from repro.compiler.driver import generate_assembly
    print(generate_assembly(_read(args.source), optimize=args.optimize))
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    from repro.asm.verify import verify_program
    from repro.compiler.driver import compile_source
    program = compile_source(_read(args.source), optimize=args.optimize)
    issues = verify_program(program)
    for issue in issues:
        print(issue)
    print(f"{len(issues)} issue(s) in "
          f"{len(program.instructions)} instructions")
    return 1 if issues else 0


def cmd_warm(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.pipeline.session import Session, standard_warm_plan
    cache_dir = Path(args.cache_dir) if args.cache_dir else None
    session = Session(scale=args.scale, cache_dir=cache_dir)
    plan = standard_warm_plan()
    if args.workloads != "all":
        wanted = {name.strip() for name in args.workloads.split(",")}
        plan = [run for run in plan if run[0] in wanted]
        missing = wanted - {run[0] for run in plan}
        if missing:
            print(f"unknown workload(s): {', '.join(sorted(missing))}")
            return 2
    report = session.warm(plan, jobs=args.jobs)
    print(f"warm: {report.describe()}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.service.server import ServerConfig, run_server
    config = ServerConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_size=args.queue_size,
        batch_window=args.batch_window / 1000.0,
        batch_max=args.batch_max,
        timeout=args.timeout,
        cache_entries=args.cache_entries,
        cache_dir=Path(args.cache_dir) if args.cache_dir else None,
        use_disk_cache=not args.no_disk_cache,
    )
    run_server(config, stats=args.stats)
    return 0


def cmd_cluster(args: argparse.Namespace) -> int:
    from repro.cluster import RouterConfig, run_router, spawn_workers

    config = RouterConfig(
        host=args.host,
        port=args.port,
        replicas=args.replicas,
        probe_interval=args.probe_interval,
        upstream_timeout=args.timeout,
    )
    spec = args.workers
    spawned = []
    processes = {}
    try:
        if args.spawn or spec.isdigit():
            count = int(spec) if spec.isdigit() else 2
            if count < 1:
                print("repro: error: --workers must be >= 1",
                      file=sys.stderr)
                return 2
            spawned = spawn_workers(
                count, pool_workers=args.worker_pool,
                disk_cache=not args.no_disk_cache,
                cache_dir=args.cache_dir)
            upstreams = tuple(worker.address for worker in spawned)
            processes = {worker.address: worker for worker in spawned}
        else:
            upstreams = tuple(address.strip()
                              for address in spec.split(",")
                              if address.strip())
            if not any(":" in address for address in upstreams):
                print("repro: error: --workers takes a count (with "
                      "--spawn) or comma-separated HOST:PORT "
                      "addresses", file=sys.stderr)
                return 2
        run_router(config, upstreams, processes, stats=args.stats)
    finally:
        for worker in spawned:
            worker.stop()
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.fuzz import run_fuzz, run_self_check

    def say(text: str) -> None:
        print(text, file=sys.stderr)

    oracle_names = None
    if args.oracles != "all":
        oracle_names = tuple(
            name.strip() for name in args.oracles.split(",")
            if name.strip())

    if args.self_check:
        payload = run_self_check(seed=args.seed, progress=say)
        _emit_json(json.dumps(payload, indent=2), args.report)
        say(f"self-check {'passed' if payload['ok'] else 'FAILED'}: "
            f"mutation caught={payload['caught']}, shrunk to "
            f"{payload['shrunk_rows']} rows, clean after "
            f"restore={payload['clean_after_restore']}")
        return 0 if payload["ok"] else 1

    cases = args.cases
    if cases is None and args.time is None:
        cases = 200     # the default budget when neither is given
    report = run_fuzz(
        seed=args.seed,
        cases=cases,
        time_budget=args.time,
        oracle_names=oracle_names,
        shrink=not args.no_shrink,
        corpus_dir=Path(args.corpus_dir) if args.corpus_dir else None,
        progress=say)
    payload = report.to_dict()
    _emit_json(json.dumps(payload, indent=2), args.report)
    say(f"fuzz: {report.cases_run} cases, "
        f"{sum(report.oracle_runs.values())} oracle runs, "
        f"{len(report.divergences)} divergence(s), "
        f"{len(report.errors)} harness error(s) "
        f"in {report.elapsed_seconds:.1f}s")
    return 0 if report.ok else 1


def cmd_cache_gc(args: argparse.Namespace) -> int:
    from pathlib import Path
    from repro.pipeline.session import default_cache_dir
    from repro.store.gc import collect_garbage, parse_size
    root = Path(args.cache_dir) if args.cache_dir \
        else default_cache_dir()
    try:
        limit = parse_size(args.limit)
    except ValueError as error:
        print(f"cache gc: {error}", file=sys.stderr)
        return 2
    report = collect_garbage(root, limit, dry_run=args.dry_run)
    print(report.describe())
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.campaign import Campaign, campaign_dir, code_digest
    from repro.campaign.manifest import Manifest
    from repro.pipeline.session import Session

    cache_dir = Path(args.cache_dir) if args.cache_dir else None
    if args.status:
        base = campaign_dir(cache_dir)
        manifest = Manifest(base)
        print(json.dumps(manifest.status(
            current_code=code_digest()), indent=2))
        return 0
    numbers = None
    if args.tables != "all":
        try:
            numbers = [int(x) for x in args.tables.split(",")]
        except ValueError:
            print(f"repro: error: bad --tables {args.tables!r}",
                  file=sys.stderr)
            return 2
    session = Session(scale=args.scale, cache_dir=cache_dir,
                      use_disk_cache=not args.no_disk_cache)
    try:
        campaign = Campaign(session, numbers=numbers)
    except ValueError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    result = campaign.run(jobs=args.jobs, remote=args.remote,
                          resume=args.resume, echo=print)
    if args.echo_tables:
        for number in sorted(result.tables):
            print(result.tables[number])
            print()
    print(f"campaign: {result.describe()}")
    store = result.profile_store
    if store:
        print(f"profile store: {json.dumps(store, sort_keys=True)}")
    print(f"tables + manifest under {campaign.directory}")
    return 0


def cmd_tables(args: argparse.Namespace) -> int:
    from repro.experiments.runner import main as tables_main
    forwarded = ["--tables", args.tables, "--scale", str(args.scale)]
    if args.report:
        forwarded += ["--report", args.report]
    if args.no_disk_cache:
        forwarded.append("--no-disk-cache")
    return tables_main(forwarded)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Static identification of delinquent loads "
                    "(CGO 2004 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_source(p):
        p.add_argument("source", help="MiniC source file")
        p.add_argument("--optimize", "-O", action="store_true",
                       help="compile with optimizations")

    p_run = sub.add_parser("run", help="compile and execute")
    add_source(p_run)
    p_run.add_argument("--args", nargs="*", type=int, default=[],
                       help="integer arguments passed to main")
    p_run.set_defaults(func=cmd_run)

    p_an = sub.add_parser("analyze",
                          help="identify possibly delinquent loads")
    add_source(p_an)
    p_an.add_argument("--delta", type=float, default=0.10,
                      help="delinquency threshold (default 0.10)")
    p_an.add_argument("--static", action="store_true",
                      help="purely static: no execution; frequency "
                           "classes use the static estimator")
    p_an.add_argument("--analytic", action="store_true",
                      help="no execution either, but attach per-load "
                           "miss counts predicted by the analytic "
                           "reuse engine (enables rho trace-free)")
    p_an.add_argument("--json", nargs="?", const="-", default=None,
                      metavar="FILE",
                      help="emit the full analysis as JSON "
                           "(repro.export schema) to stdout, or to "
                           "FILE when given")
    p_an.add_argument("--remote", default=None, metavar="HOST:PORT",
                      help="send the request to a running "
                           "'repro serve' instance instead of "
                           "analyzing in-process")
    p_an.set_defaults(func=cmd_analyze)

    p_pred = sub.add_parser(
        "predict",
        help="predict per-load misses for a cache-geometry grid "
             "without executing (analytic reuse engine)")
    add_source(p_pred)
    p_pred.add_argument("--config", action="append", default=[],
                        metavar="SIZE[,ASSOC[,BLOCK]]",
                        help="cache geometry to evaluate (repeatable; "
                             "default: the paper's baseline cache)")
    p_pred.add_argument("--sweep", action="store_true",
                        help="evaluate the paper's associativity + "
                             "size sweep grid (tables 8/9)")
    p_pred.add_argument("--no-fallback", action="store_true",
                        help="answer analytically even when static "
                             "coverage is below the confidence "
                             "threshold (never run the workload)")
    p_pred.add_argument("--top", type=int, default=5,
                        help="per-config loads to print (default 5)")
    p_pred.add_argument("--json", nargs="?", const="-", default=None,
                        metavar="FILE",
                        help="emit the prediction as JSON to stdout, "
                             "or to FILE when given")
    p_pred.add_argument("--remote", default=None, metavar="HOST:PORT",
                        help="send the request to a running "
                             "'repro serve' instance")
    p_pred.set_defaults(func=cmd_predict)

    p_tlb = sub.add_parser(
        "tlb",
        help="simulate dTLB geometries at page granularity and "
             "cross-tabulate delinquent vs PCAX-friendly loads")
    add_source(p_tlb)
    p_tlb.add_argument("--geometry", action="append", default=[],
                       metavar="PAGE_SIZE,ENTRIES[,ASSOC]",
                       help="TLB geometry to evaluate (repeatable; "
                            "ASSOC 0 = fully associative)")
    p_tlb.add_argument("--page-size", type=int, default=4096,
                       help="page size in bytes when no --geometry is "
                            "given (default 4096)")
    p_tlb.add_argument("--entries", type=int, default=64,
                       help="TLB entries when no --geometry is given "
                            "(default 64)")
    p_tlb.add_argument("--assoc", type=int, default=0,
                       help="TLB associativity when no --geometry is "
                            "given (default 0 = fully associative)")
    p_tlb.add_argument("--threshold", type=float, default=0.9,
                       help="PCAX friendliness bar: minimum predicted "
                            "fraction of page translations "
                            "(default 0.9)")
    p_tlb.add_argument("--top", type=int, default=5,
                       help="per-geometry loads to print (default 5)")
    p_tlb.add_argument("--json", nargs="?", const="-", default=None,
                       metavar="FILE",
                       help="emit the result as JSON to stdout, or to "
                            "FILE when given")
    p_tlb.add_argument("--remote", default=None, metavar="HOST:PORT",
                       help="send the request to a running "
                            "'repro serve' instance")
    p_tlb.set_defaults(func=cmd_tlb)

    p_red = sub.add_parser(
        "redundancy",
        help="count same-address reloads (and reloads after stores) "
             "per load PC, cross-tabulated against the AG classes")
    add_source(p_red)
    p_red.add_argument("--top", type=int, default=5,
                       help="loads to print (default 5)")
    p_red.add_argument("--json", nargs="?", const="-", default=None,
                       metavar="FILE",
                       help="emit the result as JSON to stdout, or to "
                            "FILE when given")
    p_red.add_argument("--remote", default=None, metavar="HOST:PORT",
                       help="send the request to a running "
                            "'repro serve' instance")
    p_red.set_defaults(func=cmd_redundancy)

    p_dis = sub.add_parser("disasm", help="show the disassembly")
    add_source(p_dis)
    p_dis.set_defaults(func=cmd_disasm)

    p_asm = sub.add_parser("asm", help="show the generated assembly")
    add_source(p_asm)
    p_asm.set_defaults(func=cmd_asm)

    p_ver = sub.add_parser("verify",
                           help="structurally verify the generated code")
    add_source(p_ver)
    p_ver.set_defaults(func=cmd_verify)

    p_warm = sub.add_parser(
        "warm",
        help="pre-execute and cache-simulate the experiment suite "
             "in parallel (fills .repro_cache)")
    p_warm.add_argument("--jobs", "-j", type=int, default=None,
                        help="worker processes (default: $REPRO_JOBS, "
                             "then the CPU count)")
    p_warm.add_argument("--scale", type=float, default=1.0,
                        help="workload size multiplier (default 1.0)")
    p_warm.add_argument("--workloads", default="all",
                        help="comma-separated workload names "
                             "(default: all 18)")
    p_warm.add_argument("--cache-dir", default=None,
                        help="result-cache directory "
                             "(default: .repro_cache)")
    p_warm.set_defaults(func=cmd_warm)

    p_cache = sub.add_parser(
        "cache", help="manage the on-disk result/trace cache")
    cache_sub = p_cache.add_subparsers(dest="cache_command",
                                       required=True)
    p_gc = cache_sub.add_parser(
        "gc", help="bound .repro_cache by size with LRU eviction")
    p_gc.add_argument("--limit", default="512M",
                      help="size budget, e.g. 100K / 512M / 2G "
                           "(default 512M)")
    p_gc.add_argument("--cache-dir", default=None,
                      help="cache directory (default: the shared "
                           ".repro_cache)")
    p_gc.add_argument("--dry-run", action="store_true",
                      help="report what would be evicted without "
                           "deleting anything")
    p_gc.set_defaults(func=cmd_cache_gc)

    p_tab = sub.add_parser("tables",
                           help="regenerate the paper's tables")
    p_tab.add_argument("--tables", default="all")
    p_tab.add_argument("--scale", type=float, default=1.0)
    p_tab.add_argument("--report", default=None)
    p_tab.add_argument("--no-disk-cache", action="store_true")
    p_tab.set_defaults(func=cmd_tables)

    p_camp = sub.add_parser(
        "campaign",
        help="regenerate the experiment grid through the DAG-aware "
             "campaign engine (parallel, resumable, provenance-"
             "recorded; see repro.campaign)")
    p_camp.add_argument("--tables", default="all",
                        help="comma-separated table numbers "
                             "(default: all)")
    p_camp.add_argument("--scale", type=float, default=1.0,
                        help="workload size multiplier (default 1.0)")
    p_camp.add_argument("--jobs", "-j", type=int, default=None,
                        help="worker processes (default: $REPRO_JOBS, "
                             "then the CPU count)")
    p_camp.add_argument("--remote", default=None, metavar="HOST:PORT",
                        help="dispatch run cells to a running "
                             "'repro serve'/'repro cluster' endpoint "
                             "instead of a local process pool")
    p_camp.add_argument("--resume", action="store_true",
                        help="skip cells whose manifest entry matches "
                             "the current code digest and whose "
                             "artifacts are still warm")
    p_camp.add_argument("--status", action="store_true",
                        help="print a summary of the campaign "
                             "manifest and exit")
    p_camp.add_argument("--echo-tables", action="store_true",
                        help="print every rendered table to stdout")
    p_camp.add_argument("--cache-dir", default=None,
                        help="result-cache directory "
                             "(default: .repro_cache)")
    p_camp.add_argument("--no-disk-cache", action="store_true",
                        help="disable the on-disk result cache")
    p_camp.set_defaults(func=cmd_campaign)

    p_srv = sub.add_parser(
        "serve",
        help="run the long-lived delinquency-analysis service "
             "(JSON-lines over TCP; see repro.service)")
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port", type=int, default=8642,
                       help="TCP port (0: pick an ephemeral port; "
                            "default 8642)")
    p_srv.add_argument("--workers", type=int, default=None,
                       help="worker processes (default: CPU count; "
                            "0: run requests on one thread)")
    p_srv.add_argument("--queue-size", type=int, default=64,
                       help="pending-request bound before requests "
                            "are rejected as overloaded (default 64)")
    p_srv.add_argument("--batch-window", type=float, default=2.0,
                       help="milliseconds the dispatcher waits to "
                            "batch concurrent requests (default 2)")
    p_srv.add_argument("--batch-max", type=int, default=8,
                       help="max requests per batch (default 8)")
    p_srv.add_argument("--timeout", type=float, default=120.0,
                       help="default per-request timeout, seconds "
                            "(default 120)")
    p_srv.add_argument("--cache-entries", type=int, default=256,
                       help="in-memory result-cache capacity "
                            "(default 256)")
    p_srv.add_argument("--cache-dir", default=None,
                       help="disk result-cache directory (default: "
                            ".repro_cache/service)")
    p_srv.add_argument("--no-disk-cache", action="store_true",
                       help="disable the disk cache tier")
    p_srv.add_argument("--stats", action="store_true",
                       help="dump the final metrics snapshot as JSON "
                            "on shutdown")
    p_srv.set_defaults(func=cmd_serve)

    p_cl = sub.add_parser(
        "cluster",
        help="front N analysis workers with a cache-aware "
             "consistent-hash router (see repro.cluster)")
    p_cl.add_argument("--workers", default="2",
                      help="worker count to spawn locally (a number, "
                           "default 2) or comma-separated HOST:PORT "
                           "addresses of already-running servers")
    p_cl.add_argument("--spawn", action="store_true",
                      help="spawn the workers as local 'repro serve' "
                           "subprocesses (implied when --workers is "
                           "a number)")
    p_cl.add_argument("--host", default="127.0.0.1")
    p_cl.add_argument("--port", type=int, default=8652,
                      help="router TCP port (0: pick an ephemeral "
                           "port; default 8652)")
    p_cl.add_argument("--replicas", type=int, default=64,
                      help="virtual nodes per worker on the hash "
                           "ring (default 64)")
    p_cl.add_argument("--probe-interval", type=float, default=1.0,
                      help="seconds between worker health probes "
                           "(default 1)")
    p_cl.add_argument("--worker-pool", type=int, default=0,
                      help="worker processes per spawned server "
                           "(default 0: one thread each)")
    p_cl.add_argument("--cache-dir", default=None,
                      help="disk result-cache directory for spawned "
                           "workers (shared across them)")
    p_cl.add_argument("--no-disk-cache", action="store_true",
                      help="disable the disk cache tier on spawned "
                           "workers")
    p_cl.add_argument("--timeout", type=float, default=120.0,
                      help="upstream round-trip timeout floor, "
                           "seconds (default 120)")
    p_cl.add_argument("--stats", action="store_true",
                      help="dump the final cluster status snapshot "
                           "as JSON on shutdown")
    p_cl.set_defaults(func=cmd_cluster)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing of the redundant fast paths "
             "(see repro.fuzz and docs/testing.md)")
    p_fuzz.add_argument("--seed", type=int, default=0,
                        help="base seed; the same seed replays the "
                             "same cases (default 0)")
    p_fuzz.add_argument("--cases", type=int, default=None,
                        help="number of cases to generate (default "
                             "200 unless --time is given)")
    p_fuzz.add_argument("--time", type=float, default=None,
                        help="time budget in seconds (combinable "
                             "with --cases; first limit wins)")
    p_fuzz.add_argument("--oracles", default="all",
                        help="comma-separated oracle names "
                             "(default: all of engines, replay, "
                             "streaming, service, pipeline, "
                             "invariants)")
    p_fuzz.add_argument("--report", default="-",
                        help="where to write the JSON report "
                             "('-': stdout, default)")
    p_fuzz.add_argument("--corpus-dir", default=None,
                        help="write shrunk reproducers of any "
                             "divergence into this directory "
                             "(e.g. tests/corpus)")
    p_fuzz.add_argument("--no-shrink", action="store_true",
                        help="report raw failing specs without "
                             "minimizing them")
    p_fuzz.add_argument("--self-check", action="store_true",
                        help="inject an off-by-one into the compiled "
                             "replay and verify the harness catches "
                             "and shrinks it")
    p_fuzz.set_defaults(func=cmd_fuzz)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except OSError as exc:
        # a missing source file (or any I/O failure) is a user error,
        # not a crash: no traceback, diagnostic on stderr, exit 2
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
