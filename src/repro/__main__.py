"""Command-line interface.

    python -m repro run PROG.c [--optimize] [--args N ...]
    python -m repro analyze PROG.c [--optimize] [--static] [--delta D]
    python -m repro disasm PROG.c [--optimize]
    python -m repro asm PROG.c [--optimize]
    python -m repro verify PROG.c [--optimize]
    python -m repro warm [--jobs N] [--scale S] [--workloads W,...]
    python -m repro tables [--tables 1,7,11] [--scale S] [--report F]

``run`` executes the program on the bundled simulator; ``analyze`` runs
the paper's delinquent-load identification and prints the flagged loads
with their address patterns; ``disasm``/``asm`` show the generated code.
``warm`` pre-executes the experiment suite across worker processes and
fills the on-disk result cache; ``tables`` forwards to the experiment
runner.
"""

from __future__ import annotations

import argparse
import sys


def _read(path: str) -> str:
    with open(path) as handle:
        return handle.read()


def cmd_run(args: argparse.Namespace) -> int:
    from repro.compiler.driver import compile_source
    from repro.machine.simulator import run_program
    program = compile_source(_read(args.source), optimize=args.optimize)
    result = run_program(program, args=tuple(args.args),
                         trace_memory=False)
    for value in result.output:
        print(value)
    return result.exit_code


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.api import analyze_program
    from repro.heuristic.static_frequency import static_exec_counts
    report = analyze_program(
        _read(args.source), optimize=args.optimize,
        execute=not args.static, delta=args.delta)
    if args.static:
        # re-classify with statically estimated frequencies
        from repro.heuristic.classifier import DelinquencyClassifier
        classifier = DelinquencyClassifier(delta=args.delta)
        report.heuristic = classifier.classify(
            report.load_infos,
            exec_counts=static_exec_counts(report.program))
    if args.json:
        from repro.export import report_to_json
        print(report_to_json(report))
        return 0
    loads = report.program.num_loads()
    delta_set = report.delinquent_loads
    print(f"|Lambda| = {loads} static loads; "
          f"|Delta| = {len(delta_set)} possibly delinquent "
          f"(pi = {report.pi:.1%})")
    if report.rho is not None:
        print(f"measured coverage rho = {report.rho:.1%}")
    print()
    scores = report.heuristic.scores()
    for address in sorted(delta_set, key=lambda a: -scores[a]):
        print(report.describe_load(address))
        print()
    return 0


def cmd_disasm(args: argparse.Namespace) -> int:
    from repro.asm.disassembler import disassemble
    from repro.compiler.driver import compile_source
    program = compile_source(_read(args.source), optimize=args.optimize)
    print(disassemble(program))
    return 0


def cmd_asm(args: argparse.Namespace) -> int:
    from repro.compiler.driver import generate_assembly
    print(generate_assembly(_read(args.source), optimize=args.optimize))
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    from repro.asm.verify import verify_program
    from repro.compiler.driver import compile_source
    program = compile_source(_read(args.source), optimize=args.optimize)
    issues = verify_program(program)
    for issue in issues:
        print(issue)
    print(f"{len(issues)} issue(s) in "
          f"{len(program.instructions)} instructions")
    return 1 if issues else 0


def cmd_warm(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.pipeline.session import Session, standard_warm_plan
    cache_dir = Path(args.cache_dir) if args.cache_dir else None
    session = Session(scale=args.scale, cache_dir=cache_dir)
    plan = standard_warm_plan()
    if args.workloads != "all":
        wanted = {name.strip() for name in args.workloads.split(",")}
        plan = [run for run in plan if run[0] in wanted]
        missing = wanted - {run[0] for run in plan}
        if missing:
            print(f"unknown workload(s): {', '.join(sorted(missing))}")
            return 2
    report = session.warm(plan, jobs=args.jobs)
    print(f"warm: {report.describe()}")
    return 0


def cmd_tables(args: argparse.Namespace) -> int:
    from repro.experiments.runner import main as tables_main
    forwarded = ["--tables", args.tables, "--scale", str(args.scale)]
    if args.report:
        forwarded += ["--report", args.report]
    if args.no_disk_cache:
        forwarded.append("--no-disk-cache")
    return tables_main(forwarded)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Static identification of delinquent loads "
                    "(CGO 2004 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_source(p):
        p.add_argument("source", help="MiniC source file")
        p.add_argument("--optimize", "-O", action="store_true",
                       help="compile with optimizations")

    p_run = sub.add_parser("run", help="compile and execute")
    add_source(p_run)
    p_run.add_argument("--args", nargs="*", type=int, default=[],
                       help="integer arguments passed to main")
    p_run.set_defaults(func=cmd_run)

    p_an = sub.add_parser("analyze",
                          help="identify possibly delinquent loads")
    add_source(p_an)
    p_an.add_argument("--delta", type=float, default=0.10,
                      help="delinquency threshold (default 0.10)")
    p_an.add_argument("--static", action="store_true",
                      help="purely static: no execution; frequency "
                           "classes use the static estimator")
    p_an.add_argument("--json", action="store_true",
                      help="emit the full analysis as JSON "
                           "(repro.export schema)")
    p_an.set_defaults(func=cmd_analyze)

    p_dis = sub.add_parser("disasm", help="show the disassembly")
    add_source(p_dis)
    p_dis.set_defaults(func=cmd_disasm)

    p_asm = sub.add_parser("asm", help="show the generated assembly")
    add_source(p_asm)
    p_asm.set_defaults(func=cmd_asm)

    p_ver = sub.add_parser("verify",
                           help="structurally verify the generated code")
    add_source(p_ver)
    p_ver.set_defaults(func=cmd_verify)

    p_warm = sub.add_parser(
        "warm",
        help="pre-execute and cache-simulate the experiment suite "
             "in parallel (fills .repro_cache)")
    p_warm.add_argument("--jobs", "-j", type=int, default=None,
                        help="worker processes (default: $REPRO_JOBS, "
                             "then the CPU count)")
    p_warm.add_argument("--scale", type=float, default=1.0,
                        help="workload size multiplier (default 1.0)")
    p_warm.add_argument("--workloads", default="all",
                        help="comma-separated workload names "
                             "(default: all 18)")
    p_warm.add_argument("--cache-dir", default=None,
                        help="result-cache directory "
                             "(default: .repro_cache)")
    p_warm.set_defaults(func=cmd_warm)

    p_tab = sub.add_parser("tables",
                           help="regenerate the paper's tables")
    p_tab.add_argument("--tables", default="all")
    p_tab.add_argument("--scale", type=float, default=1.0)
    p_tab.add_argument("--report", default=None)
    p_tab.add_argument("--no-disk-cache", action="store_true")
    p_tab.set_defaults(func=cmd_tables)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
