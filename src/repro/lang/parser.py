"""Recursive-descent parser for MiniC."""

from __future__ import annotations

from typing import Optional

from repro.lang import astnodes as ast
from repro.lang.lexer import Token, tokenize
from repro.lang.types import (
    CHAR, FLOAT, INT, VOID, ArrayType, PointerType, StructType, Type,
)


class ParseError(Exception):
    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


_TYPE_STARTERS = frozenset(("int", "char", "float", "void", "struct"))

# Binary operator precedence, loosest first.
_PRECEDENCE = [
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", ">", "<=", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
]


class Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0
        self.structs: dict[str, StructType] = {}

    # -- token plumbing --------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def expect(self, kind: str) -> Token:
        token = self.current
        if token.kind != kind:
            raise ParseError(f"expected {kind!r}, found {token.text!r}",
                             token.line)
        return self.advance()

    def accept(self, kind: str) -> Optional[Token]:
        if self.current.kind == kind:
            return self.advance()
        return None

    # -- types ------------------------------------------------------
    def at_type(self) -> bool:
        return self.current.kind in _TYPE_STARTERS

    def parse_base_type(self) -> Type:
        token = self.advance()
        if token.kind == "int":
            base: Type = INT
        elif token.kind == "char":
            base = CHAR
        elif token.kind == "float":
            base = FLOAT
        elif token.kind == "void":
            base = VOID
        elif token.kind == "struct":
            name = self.expect("ident").text
            if name not in self.structs:
                self.structs[name] = StructType(name)
            base = self.structs[name]
        else:
            raise ParseError(f"expected a type, found {token.text!r}",
                             token.line)
        while self.accept("*"):
            base = PointerType(base)
        return base

    def parse_array_suffix(self, base: Type) -> Type:
        sizes: list[int] = []
        while self.accept("["):
            size_token = self.expect("intlit")
            sizes.append(size_token.value)
            self.expect("]")
        for size in reversed(sizes):
            base = ArrayType(base, size)
        return base

    # -- top level ---------------------------------------------------
    def parse_unit(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit(line=1)
        while self.current.kind != "eof":
            if (self.current.kind == "struct"
                    and self.peek().kind == "ident"
                    and self.peek(2).kind == "{"):
                unit.structs.append(self.parse_struct_decl())
                continue
            line = self.current.line
            base = self.parse_base_type()
            name = self.expect("ident").text
            if self.current.kind == "(":
                unit.functions.append(self.parse_function(base, name, line))
            else:
                unit.globals.extend(self.parse_global_tail(base, name, line))
        return unit

    def parse_struct_decl(self) -> ast.StructDecl:
        line = self.current.line
        self.expect("struct")
        name = self.expect("ident").text
        struct = self.structs.setdefault(name, StructType(name))
        if struct.complete:
            raise ParseError(f"struct {name} redefined", line)
        self.expect("{")
        members: list[tuple[str, Type]] = []
        while not self.accept("}"):
            mtype = self.parse_base_type()
            while True:
                mname = self.expect("ident").text
                full = self.parse_array_suffix(mtype)
                if (isinstance(full, (StructType,))
                        and not full.complete):
                    raise ParseError(
                        f"member {mname} has incomplete type", line)
                members.append((mname, full))
                if not self.accept(","):
                    break
            self.expect(";")
        self.expect(";")
        struct.set_fields(members)
        return ast.StructDecl(line=line, name=name, members=members)

    def parse_global_tail(self, base: Type, first_name: str,
                          line: int) -> list[ast.VarDecl]:
        decls: list[ast.VarDecl] = []
        name = first_name
        while True:
            var_type = self.parse_array_suffix(base)
            init: Optional[ast.Expr] = None
            if self.accept("="):
                init = self.parse_initializer()
            decls.append(ast.VarDecl(line=line, type=var_type, name=name,
                                     init=init, is_global=True))
            if not self.accept(","):
                break
            name = self.expect("ident").text
        self.expect(";")
        return decls

    def parse_initializer(self) -> ast.Expr:
        if self.current.kind == "{":
            # Array initializer: a brace list parsed into a Call-like node
            # is overkill; reuse Call with a reserved name.
            line = self.advance().line
            elements: list[ast.Expr] = []
            while not self.accept("}"):
                elements.append(self.parse_expr())
                if self.current.kind != "}":
                    self.expect(",")
            return ast.Call(line=line, name="__initlist__", args=elements)
        return self.parse_expr()

    def parse_function(self, ret_type: Type, name: str,
                       line: int) -> ast.FuncDecl:
        self.expect("(")
        params: list[ast.Param] = []
        if not self.accept(")"):
            if self.current.kind == "void" and self.peek().kind == ")":
                self.advance()
            else:
                while True:
                    ptype = self.parse_base_type()
                    pname = self.expect("ident").text
                    # Array parameters decay to pointers.
                    decayed = self.parse_array_suffix(ptype)
                    if isinstance(decayed, ArrayType):
                        decayed = decayed.decayed()
                    params.append(ast.Param(line=self.current.line,
                                            type=decayed, name=pname))
                    if not self.accept(","):
                        break
            self.expect(")")
        if self.accept(";"):
            return ast.FuncDecl(line=line, ret_type=ret_type, name=name,
                                params=params, body=None)
        body = self.parse_block()
        return ast.FuncDecl(line=line, ret_type=ret_type, name=name,
                            params=params, body=body)

    # -- statements ---------------------------------------------------
    def parse_block(self) -> ast.Block:
        line = self.expect("{").line
        statements: list[ast.Stmt] = []
        while not self.accept("}"):
            statements.append(self.parse_statement())
        return ast.Block(line=line, statements=statements)

    def parse_statement(self) -> ast.Stmt:
        token = self.current
        if token.kind == "{":
            return self.parse_block()
        if self.at_type():
            return self.parse_local_decl()
        if token.kind == "if":
            return self.parse_if()
        if token.kind == "while":
            return self.parse_while()
        if token.kind == "for":
            return self.parse_for()
        if token.kind == "return":
            self.advance()
            value = None if self.current.kind == ";" else self.parse_expr()
            self.expect(";")
            return ast.Return(line=token.line, value=value)
        if token.kind == "break":
            self.advance()
            self.expect(";")
            return ast.Break(line=token.line)
        if token.kind == "continue":
            self.advance()
            self.expect(";")
            return ast.Continue(line=token.line)
        stmt = self.parse_simple_statement()
        self.expect(";")
        return stmt

    def parse_local_decl(self) -> ast.Stmt:
        line = self.current.line
        base = self.parse_base_type()
        decls: list[ast.Stmt] = []
        while True:
            name = self.expect("ident").text
            var_type = self.parse_array_suffix(base)
            init = None
            if self.accept("="):
                init = self.parse_initializer()
            decls.append(ast.VarDecl(line=line, type=var_type, name=name,
                                     init=init))
            if not self.accept(","):
                break
        self.expect(";")
        if len(decls) == 1:
            return decls[0]
        return ast.Block(line=line, statements=decls)

    def parse_simple_statement(self) -> ast.Stmt:
        """Assignment or expression statement (no trailing semicolon)."""
        line = self.current.line
        expr = self.parse_expr()
        if self.accept("="):
            value = self.parse_expr()
            return ast.Assign(line=line, target=expr, value=value)
        return ast.ExprStmt(line=line, expr=expr)

    def parse_if(self) -> ast.If:
        line = self.expect("if").line
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        then = self.parse_statement()
        orelse = self.parse_statement() if self.accept("else") else None
        return ast.If(line=line, cond=cond, then=then, orelse=orelse)

    def parse_while(self) -> ast.While:
        line = self.expect("while").line
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        body = self.parse_statement()
        return ast.While(line=line, cond=cond, body=body)

    def parse_for(self) -> ast.For:
        line = self.expect("for").line
        self.expect("(")
        init = None if self.current.kind == ";" \
            else self.parse_simple_statement()
        self.expect(";")
        cond = None if self.current.kind == ";" else self.parse_expr()
        self.expect(";")
        step = None if self.current.kind == ")" \
            else self.parse_simple_statement()
        self.expect(")")
        body = self.parse_statement()
        return ast.For(line=line, init=init, cond=cond, step=step, body=body)

    # -- expressions ---------------------------------------------------
    def parse_expr(self) -> ast.Expr:
        return self._parse_binary(0)

    def _parse_binary(self, level: int) -> ast.Expr:
        if level >= len(_PRECEDENCE):
            return self.parse_unary()
        left = self._parse_binary(level + 1)
        operators = _PRECEDENCE[level]
        while self.current.kind in operators:
            op = self.advance()
            right = self._parse_binary(level + 1)
            left = ast.Binary(line=op.line, op=op.kind, left=left,
                              right=right)
        return left

    def parse_unary(self) -> ast.Expr:
        token = self.current
        if token.kind == "-":
            self.advance()
            return ast.Unary(line=token.line, op="-",
                             operand=self.parse_unary())
        if token.kind == "!":
            self.advance()
            return ast.Unary(line=token.line, op="!",
                             operand=self.parse_unary())
        if token.kind == "~":
            self.advance()
            return ast.Unary(line=token.line, op="~",
                             operand=self.parse_unary())
        if token.kind == "*":
            self.advance()
            return ast.Deref(line=token.line, operand=self.parse_unary())
        if token.kind == "&":
            self.advance()
            return ast.AddressOf(line=token.line, operand=self.parse_unary())
        if token.kind == "sizeof":
            self.advance()
            self.expect("(")
            target = self.parse_base_type()
            target = self.parse_array_suffix(target)
            self.expect(")")
            return ast.SizeOf(line=token.line, target=target)
        if token.kind == "(" and self.peek().kind in _TYPE_STARTERS:
            self.advance()
            target = self.parse_base_type()
            self.expect(")")
            return ast.Cast(line=token.line, target=target,
                            operand=self.parse_unary())
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            token = self.current
            if token.kind == "[":
                self.advance()
                index = self.parse_expr()
                self.expect("]")
                expr = ast.Index(line=token.line, base=expr, index=index)
            elif token.kind == ".":
                self.advance()
                name = self.expect("ident").text
                expr = ast.Member(line=token.line, base=expr, name=name,
                                  arrow=False)
            elif token.kind == "->":
                self.advance()
                name = self.expect("ident").text
                expr = ast.Member(line=token.line, base=expr, name=name,
                                  arrow=True)
            else:
                return expr

    def parse_primary(self) -> ast.Expr:
        token = self.current
        if token.kind == "intlit":
            self.advance()
            return ast.IntLit(line=token.line, value=token.value)
        if token.kind == "floatlit":
            self.advance()
            return ast.FloatLit(line=token.line, value=token.value)
        if token.kind == "charlit":
            self.advance()
            return ast.CharLit(line=token.line, value=token.value)
        if token.kind == "NULL":
            self.advance()
            return ast.IntLit(line=token.line, value=0)
        if token.kind == "ident":
            self.advance()
            if self.current.kind == "(":
                self.advance()
                args: list[ast.Expr] = []
                if not self.accept(")"):
                    while True:
                        args.append(self.parse_expr())
                        if not self.accept(","):
                            break
                    self.expect(")")
                return ast.Call(line=token.line, name=token.text, args=args)
            return ast.Var(line=token.line, name=token.text)
        if token.kind == "(":
            self.advance()
            expr = self.parse_expr()
            self.expect(")")
            return expr
        raise ParseError(f"unexpected token {token.text!r}", token.line)


def parse(source: str) -> ast.TranslationUnit:
    """Parse MiniC ``source`` into a :class:`TranslationUnit`."""
    return Parser(tokenize(source)).parse_unit()
