"""Semantic analysis for MiniC: name resolution and type checking.

Annotates every expression with its type (``expr.ty``), every ``Var`` with
its resolved symbol (``expr.symbol``), and every function with the flat
list of its locals (``func.all_locals``) that the frame builder consumes.
Implicit int/float conversions are made explicit by inserting ``Cast``
nodes so codegen never guesses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.lang import astnodes as ast
from repro.lang.types import (
    CHAR, FLOAT, INT, VOID, ArrayType, FloatType, PointerType, StructType,
    Type, common_arithmetic, is_assignable,
)


class SemanticError(Exception):
    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


@dataclass
class Symbol:
    name: str
    type: Type
    kind: str              # "global" | "local" | "param"


@dataclass
class FunctionSig:
    name: str
    ret_type: Type
    param_types: list[Type]
    is_builtin: bool = False
    variadic: bool = False


BUILTINS: dict[str, FunctionSig] = {
    "malloc": FunctionSig("malloc", PointerType(CHAR), [INT],
                          is_builtin=True),
    "calloc": FunctionSig("calloc", PointerType(CHAR), [INT, INT],
                          is_builtin=True),
    "free": FunctionSig("free", VOID, [PointerType(CHAR)], is_builtin=True),
    "print_int": FunctionSig("print_int", VOID, [INT], is_builtin=True),
    "print_char": FunctionSig("print_char", VOID, [INT], is_builtin=True),
    "rand": FunctionSig("rand", INT, [], is_builtin=True),
    "srand": FunctionSig("srand", VOID, [INT], is_builtin=True),
    "read_int": FunctionSig("read_int", INT, [], is_builtin=True),
}


def _decay(ty: Type) -> Type:
    return ty.decayed() if isinstance(ty, ArrayType) else ty


class Analyzer:
    def __init__(self, unit: ast.TranslationUnit):
        self.unit = unit
        self.globals: dict[str, Symbol] = {}
        self.functions: dict[str, FunctionSig] = dict(BUILTINS)
        self._scopes: list[dict[str, Symbol]] = []
        self._current: Optional[ast.FuncDecl] = None
        self._locals: list[ast.VarDecl] = []
        self._loop_depth = 0

    # ------------------------------------------------------------------
    def analyze(self) -> ast.TranslationUnit:
        for decl in self.unit.globals:
            if decl.name in self.globals:
                raise SemanticError(f"global {decl.name!r} redefined",
                                    decl.line)
            if decl.type.is_void:
                raise SemanticError(f"global {decl.name!r} has void type",
                                    decl.line)
            self._check_complete(decl.type, decl.line)
            self.globals[decl.name] = Symbol(decl.name, decl.type, "global")
            if decl.init is not None:
                self._check_const_init(decl.type, decl.init)
        for func in self.unit.functions:
            if func.name in BUILTINS:
                raise SemanticError(
                    f"function {func.name!r} shadows a builtin", func.line)
            sig = FunctionSig(func.name, func.ret_type,
                              [p.type for p in func.params])
            existing = self.functions.get(func.name)
            if existing is not None and existing.param_types != sig.param_types:
                raise SemanticError(
                    f"conflicting declarations of {func.name!r}", func.line)
            self.functions[func.name] = sig
        for func in self.unit.functions:
            if func.body is not None:
                self._check_function(func)
        return self.unit

    def _check_complete(self, ty: Type, line: int) -> None:
        if isinstance(ty, StructType) and not ty.complete:
            raise SemanticError(f"incomplete type struct {ty.name}", line)
        if isinstance(ty, ArrayType):
            self._check_complete(ty.elem, line)

    def _check_const_init(self, ty: Type, init: ast.Expr) -> None:
        if isinstance(init, ast.Call) and init.name == "__initlist__":
            if not isinstance(ty, ArrayType):
                raise SemanticError("brace initializer on non-array",
                                    init.line)
            if len(init.args) > ty.count:
                raise SemanticError("too many initializer elements",
                                    init.line)
            for element in init.args:
                self._check_const_init(ty.elem, element)
            init.ty = ty
            return
        value = const_value(init)
        if value is None:
            raise SemanticError("global initializer must be constant",
                                init.line)
        init.ty = FLOAT if isinstance(value, float) else INT

    # -- scopes ------------------------------------------------------
    def _push(self) -> None:
        self._scopes.append({})

    def _pop(self) -> None:
        self._scopes.pop()

    def _declare(self, symbol: Symbol, line: int) -> None:
        scope = self._scopes[-1]
        if symbol.name in scope:
            raise SemanticError(f"{symbol.name!r} redeclared", line)
        for outer in self._scopes[:-1]:
            if symbol.name in outer:
                raise SemanticError(
                    f"{symbol.name!r} shadows an outer local "
                    "(not supported)", line)
        scope[symbol.name] = symbol

    def _lookup(self, name: str, line: int) -> Symbol:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        if name in self.globals:
            return self.globals[name]
        raise SemanticError(f"undefined variable {name!r}", line)

    # -- functions -----------------------------------------------------
    def _check_function(self, func: ast.FuncDecl) -> None:
        self._current = func
        self._locals = []
        self._push()
        for param in func.params:
            if param.type.is_void:
                raise SemanticError("void parameter", param.line)
            self._declare(Symbol(param.name, param.type, "param"),
                          param.line)
        self._check_block(func.body)
        self._pop()
        func.all_locals = self._locals  # type: ignore[attr-defined]
        self._current = None

    def _check_block(self, block: ast.Block) -> None:
        self._push()
        for stmt in block.statements:
            self._check_stmt(stmt)
        self._pop()

    # -- statements ---------------------------------------------------
    def _check_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self._check_block(stmt)
        elif isinstance(stmt, ast.VarDecl):
            self._check_local_decl(stmt)
        elif isinstance(stmt, ast.Assign):
            self._check_assign(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._require_scalar(self._check_expr(stmt.cond), stmt.line)
            self._check_stmt(stmt.then)
            if stmt.orelse is not None:
                self._check_stmt(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._require_scalar(self._check_expr(stmt.cond), stmt.line)
            self._loop_depth += 1
            self._check_stmt(stmt.body)
            self._loop_depth -= 1
        elif isinstance(stmt, ast.For):
            if stmt.init is not None:
                self._check_stmt(stmt.init)
            if stmt.cond is not None:
                self._require_scalar(self._check_expr(stmt.cond), stmt.line)
            if stmt.step is not None:
                self._check_stmt(stmt.step)
            self._loop_depth += 1
            self._check_stmt(stmt.body)
            self._loop_depth -= 1
        elif isinstance(stmt, ast.Return):
            self._check_return(stmt)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            if self._loop_depth == 0:
                raise SemanticError("break/continue outside a loop",
                                    stmt.line)
        else:  # pragma: no cover
            raise SemanticError(f"unknown statement {type(stmt).__name__}",
                                stmt.line)

    def _check_local_decl(self, decl: ast.VarDecl) -> None:
        if decl.type.is_void:
            raise SemanticError(f"local {decl.name!r} has void type",
                                decl.line)
        self._check_complete(decl.type, decl.line)
        self._declare(Symbol(decl.name, decl.type, "local"), decl.line)
        self._locals.append(decl)
        if decl.init is not None:
            if isinstance(decl.init, ast.Call) \
                    and decl.init.name == "__initlist__":
                raise SemanticError(
                    "brace initializers are only supported on globals",
                    decl.line)
            value_ty = self._check_expr(decl.init)
            if not is_assignable(decl.type, _decay(value_ty)):
                raise SemanticError(
                    f"cannot initialize {decl.type} with {value_ty}",
                    decl.line)
            decl.init = self._coerce(decl.init, decl.type)

    def _check_assign(self, stmt: ast.Assign) -> None:
        target_ty = self._check_expr(stmt.target)
        if not self._is_lvalue(stmt.target):
            raise SemanticError("assignment target is not an lvalue",
                                stmt.line)
        if isinstance(target_ty, (ArrayType, StructType)):
            raise SemanticError(f"cannot assign to {target_ty}", stmt.line)
        value_ty = self._check_expr(stmt.value)
        if not is_assignable(target_ty, _decay(value_ty)):
            raise SemanticError(
                f"cannot assign {value_ty} to {target_ty}", stmt.line)
        stmt.value = self._coerce(stmt.value, target_ty)

    def _check_return(self, stmt: ast.Return) -> None:
        assert self._current is not None
        ret = self._current.ret_type
        if stmt.value is None:
            if not ret.is_void:
                raise SemanticError("missing return value", stmt.line)
            return
        if ret.is_void:
            raise SemanticError("return with value in void function",
                                stmt.line)
        value_ty = self._check_expr(stmt.value)
        if not is_assignable(ret, _decay(value_ty)):
            raise SemanticError(f"cannot return {value_ty} as {ret}",
                                stmt.line)
        stmt.value = self._coerce(stmt.value, ret)

    # -- expressions ---------------------------------------------------
    def _require_scalar(self, ty: Type, line: int) -> None:
        if not _decay(ty).is_scalar:
            raise SemanticError(f"scalar required, found {ty}", line)

    def _is_lvalue(self, expr: ast.Expr) -> bool:
        return isinstance(expr, (ast.Var, ast.Index, ast.Member, ast.Deref))

    def _coerce(self, expr: ast.Expr, target: Type) -> ast.Expr:
        """Insert an explicit Cast when int-ness and float-ness differ."""
        source = _decay(expr.ty)
        if isinstance(target, FloatType) != isinstance(source, FloatType):
            if target.is_arithmetic and source.is_arithmetic:
                cast = ast.Cast(line=expr.line,
                                target=FLOAT if isinstance(target, FloatType)
                                else INT,
                                operand=expr)
                cast.ty = cast.target
                return cast
        return expr

    def _check_expr(self, expr: ast.Expr) -> Type:
        ty = self._expr_type(expr)
        expr.ty = ty
        return ty

    def _expr_type(self, expr: ast.Expr) -> Type:
        if isinstance(expr, ast.IntLit):
            return INT
        if isinstance(expr, ast.FloatLit):
            return FLOAT
        if isinstance(expr, ast.CharLit):
            return INT
        if isinstance(expr, ast.Var):
            symbol = self._lookup(expr.name, expr.line)
            expr.symbol = symbol  # type: ignore[attr-defined]
            return symbol.type
        if isinstance(expr, ast.Binary):
            return self._binary_type(expr)
        if isinstance(expr, ast.Unary):
            operand = _decay(self._check_expr(expr.operand))
            if expr.op == "!":
                self._require_scalar(operand, expr.line)
                return INT
            if not operand.is_arithmetic:
                raise SemanticError(f"bad operand for {expr.op}", expr.line)
            if expr.op == "~" and isinstance(operand, FloatType):
                raise SemanticError("~ requires an integer", expr.line)
            return FLOAT if isinstance(operand, FloatType) else INT
        if isinstance(expr, ast.Deref):
            operand = _decay(self._check_expr(expr.operand))
            if not operand.is_pointer:
                raise SemanticError("dereference of non-pointer", expr.line)
            return operand.target
        if isinstance(expr, ast.AddressOf):
            operand_ty = self._check_expr(expr.operand)
            if not self._is_lvalue(expr.operand):
                raise SemanticError("& requires an lvalue", expr.line)
            if isinstance(operand_ty, ArrayType):
                return PointerType(operand_ty.elem)
            return PointerType(operand_ty)
        if isinstance(expr, ast.Index):
            base = _decay(self._check_expr(expr.base))
            if not base.is_pointer:
                raise SemanticError("indexing a non-array", expr.line)
            index_ty = _decay(self._check_expr(expr.index))
            if not index_ty.is_integer:
                raise SemanticError("array index must be an integer",
                                    expr.line)
            return base.target
        if isinstance(expr, ast.Member):
            base = self._check_expr(expr.base)
            if expr.arrow:
                base = _decay(base)
                if not (base.is_pointer
                        and isinstance(base.target, StructType)):
                    raise SemanticError("-> on non-pointer-to-struct",
                                        expr.line)
                struct = base.target
            else:
                if not isinstance(base, StructType):
                    raise SemanticError(". on non-struct", expr.line)
                struct = base
            fld = struct.field(expr.name)
            if fld is None:
                raise SemanticError(
                    f"struct {struct.name} has no member {expr.name!r}",
                    expr.line)
            expr.field = fld  # type: ignore[attr-defined]
            return fld.type
        if isinstance(expr, ast.Call):
            return self._call_type(expr)
        if isinstance(expr, ast.Cast):
            operand = _decay(self._check_expr(expr.operand))
            target = expr.target
            if target.is_arithmetic and operand.is_arithmetic:
                return target
            if target.is_pointer and (operand.is_pointer
                                      or operand.is_integer):
                return target
            if target.is_integer and operand.is_pointer:
                return target
            raise SemanticError(f"invalid cast {operand} -> {target}",
                                expr.line)
        if isinstance(expr, ast.SizeOf):
            return INT
        raise SemanticError(  # pragma: no cover
            f"unknown expression {type(expr).__name__}", expr.line)

    def _binary_type(self, expr: ast.Binary) -> Type:
        left = _decay(self._check_expr(expr.left))
        right = _decay(self._check_expr(expr.right))
        op = expr.op
        if op in ("&&", "||"):
            self._require_scalar(left, expr.line)
            self._require_scalar(right, expr.line)
            return INT
        if op in ("==", "!=", "<", ">", "<=", ">="):
            if left.is_pointer or right.is_pointer:
                return INT
            if left.is_arithmetic and right.is_arithmetic:
                common = common_arithmetic(left, right)
                expr.left = self._coerce(expr.left, common)
                expr.right = self._coerce(expr.right, common)
                return INT
            raise SemanticError(f"bad comparison operands", expr.line)
        if op in ("<<", ">>", "%", "&", "|", "^"):
            if not (left.is_integer and right.is_integer):
                raise SemanticError(f"{op} requires integers", expr.line)
            return INT
        if op == "+":
            if left.is_pointer and right.is_integer:
                return left
            if left.is_integer and right.is_pointer:
                return right
        if op == "-":
            if left.is_pointer and right.is_integer:
                return left
            if left.is_pointer and right.is_pointer:
                return INT
        if op in ("+", "-", "*", "/"):
            if left.is_arithmetic and right.is_arithmetic:
                common = common_arithmetic(left, right)
                expr.left = self._coerce(expr.left, common)
                expr.right = self._coerce(expr.right, common)
                return common
        raise SemanticError(f"bad operands for {op}: {left}, {right}",
                            expr.line)

    def _call_type(self, expr: ast.Call) -> Type:
        sig = self.functions.get(expr.name)
        if sig is None:
            raise SemanticError(f"undefined function {expr.name!r}",
                                expr.line)
        if len(expr.args) != len(sig.param_types):
            raise SemanticError(
                f"{expr.name} expects {len(sig.param_types)} arguments, "
                f"got {len(expr.args)}", expr.line)
        for position, (arg, param_ty) in enumerate(
                zip(expr.args, sig.param_types)):
            arg_ty = _decay(self._check_expr(arg))
            if not is_assignable(param_ty, arg_ty):
                raise SemanticError(
                    f"argument {position + 1} of {expr.name}: cannot pass "
                    f"{arg_ty} as {param_ty}", expr.line)
            expr.args[position] = self._coerce(arg, param_ty)
        expr.sig = sig  # type: ignore[attr-defined]
        return sig.ret_type


def const_value(expr: ast.Expr):
    """Evaluate a constant expression, or None if not constant."""
    if isinstance(expr, (ast.IntLit, ast.CharLit)):
        return expr.value
    if isinstance(expr, ast.FloatLit):
        return expr.value
    if isinstance(expr, ast.SizeOf):
        return expr.target.size
    if isinstance(expr, ast.Unary):
        inner = const_value(expr.operand)
        if inner is None:
            return None
        if expr.op == "-":
            return -inner
        if expr.op == "~" and isinstance(inner, int):
            return ~inner
        if expr.op == "!":
            return 0 if inner else 1
    if isinstance(expr, ast.Binary):
        left = const_value(expr.left)
        right = const_value(expr.right)
        if left is None or right is None:
            return None
        try:
            return _CONST_OPS[expr.op](left, right)
        except (KeyError, ZeroDivisionError, TypeError):
            return None
    if isinstance(expr, ast.Cast):
        inner = const_value(expr.operand)
        if inner is None:
            return None
        if isinstance(expr.target, FloatType):
            return float(inner)
        return int(inner)
    return None


_CONST_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b if isinstance(a, float) or isinstance(b, float)
    else int(a / b),
    "%": lambda a, b: a - int(a / b) * b,
    "<<": lambda a, b: a << b,
    ">>": lambda a, b: a >> b,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "<": lambda a, b: int(a < b),
    ">": lambda a, b: int(a > b),
    "<=": lambda a, b: int(a <= b),
    ">=": lambda a, b: int(a >= b),
}


def analyze(unit: ast.TranslationUnit) -> ast.TranslationUnit:
    """Run semantic analysis, annotating the tree in place."""
    return Analyzer(unit).analyze()
