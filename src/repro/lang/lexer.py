"""Lexer for MiniC."""

from __future__ import annotations

from dataclasses import dataclass

KEYWORDS = frozenset((
    "int", "char", "float", "void", "struct", "if", "else", "while", "for",
    "return", "break", "continue", "sizeof", "NULL",
))

# Longest-match-first punctuation.
_PUNCT = (
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "->",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
    "(", ")", "{", "}", "[", "]", ";", ",", ".",
)


class LexError(Exception):
    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


@dataclass(frozen=True)
class Token:
    kind: str          # "ident" | "intlit" | "floatlit" | "charlit" | kw | punct | "eof"
    text: str
    line: int
    value: object = None


def tokenize(source: str) -> list[Token]:
    """Tokenize MiniC ``source``, raising :class:`LexError` on bad input."""
    tokens: list[Token] = []
    pos = 0
    line = 1
    length = len(source)
    while pos < length:
        char = source[pos]
        if char == "\n":
            line += 1
            pos += 1
            continue
        if char in " \t\r":
            pos += 1
            continue
        if source.startswith("//", pos):
            end = source.find("\n", pos)
            pos = length if end == -1 else end
            continue
        if source.startswith("/*", pos):
            end = source.find("*/", pos + 2)
            if end == -1:
                raise LexError("unterminated block comment", line)
            line += source.count("\n", pos, end)
            pos = end + 2
            continue
        if char.isalpha() or char == "_":
            start = pos
            while pos < length and (source[pos].isalnum()
                                    or source[pos] == "_"):
                pos += 1
            text = source[start:pos]
            kind = text if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line))
            continue
        if char.isdigit() or (char == "." and pos + 1 < length
                              and source[pos + 1].isdigit()):
            start = pos
            is_float = False
            if source.startswith("0x", pos) or source.startswith("0X", pos):
                pos += 2
                while pos < length and (source[pos].isdigit()
                                        or source[pos] in "abcdefABCDEF"):
                    pos += 1
                text = source[start:pos]
                tokens.append(Token("intlit", text, line, value=int(text, 16)))
                continue
            while pos < length and source[pos].isdigit():
                pos += 1
            if pos < length and source[pos] == ".":
                is_float = True
                pos += 1
                while pos < length and source[pos].isdigit():
                    pos += 1
            if pos < length and source[pos] in "eE":
                is_float = True
                pos += 1
                if pos < length and source[pos] in "+-":
                    pos += 1
                while pos < length and source[pos].isdigit():
                    pos += 1
            text = source[start:pos]
            if is_float:
                tokens.append(Token("floatlit", text, line, value=float(text)))
            else:
                tokens.append(Token("intlit", text, line, value=int(text)))
            continue
        if char == "'":
            end = pos + 1
            if end < length and source[end] == "\\":
                end += 1
            end += 1
            if end >= length or source[end] != "'":
                raise LexError("malformed character literal", line)
            raw = source[pos + 1:end]
            value = ord(raw.encode().decode("unicode_escape"))
            tokens.append(Token("charlit", source[pos:end + 1], line,
                                value=value))
            pos = end + 1
            continue
        for punct in _PUNCT:
            if source.startswith(punct, pos):
                tokens.append(Token(punct, punct, line))
                pos += len(punct)
                break
        else:
            raise LexError(f"unexpected character {char!r}", line)
    tokens.append(Token("eof", "", line))
    return tokens
