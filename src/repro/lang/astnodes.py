"""Abstract syntax tree for MiniC.

Expression nodes carry a ``ty`` attribute (a :class:`repro.lang.types.Type`)
filled in by semantic analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.lang.types import Type


@dataclass
class Node:
    line: int = 0


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------

@dataclass
class Expr(Node):
    ty: Optional[Type] = None


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class FloatLit(Expr):
    value: float = 0.0


@dataclass
class CharLit(Expr):
    value: int = 0


@dataclass
class Var(Expr):
    name: str = ""


@dataclass
class Binary(Expr):
    op: str = ""
    left: Expr = None
    right: Expr = None


@dataclass
class Unary(Expr):
    op: str = ""           # "-", "!", "~"
    operand: Expr = None


@dataclass
class Deref(Expr):
    operand: Expr = None


@dataclass
class AddressOf(Expr):
    operand: Expr = None


@dataclass
class Index(Expr):
    base: Expr = None
    index: Expr = None


@dataclass
class Member(Expr):
    base: Expr = None
    name: str = ""
    arrow: bool = False     # p->f vs s.f


@dataclass
class Call(Expr):
    name: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class Cast(Expr):
    target: Type = None
    operand: Expr = None


@dataclass
class SizeOf(Expr):
    target: Type = None


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------

@dataclass
class Stmt(Node):
    pass


@dataclass
class Block(Stmt):
    statements: list[Stmt] = field(default_factory=list)


@dataclass
class VarDecl(Stmt):
    type: Type = None
    name: str = ""
    init: Optional[Expr] = None
    # Filled by sema/codegen: storage class and location.
    is_global: bool = False


@dataclass
class Assign(Stmt):
    target: Expr = None
    value: Expr = None


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None


@dataclass
class If(Stmt):
    cond: Expr = None
    then: Stmt = None
    orelse: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Expr = None
    body: Stmt = None


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None       # Assign or VarDecl-free Assign
    cond: Optional[Expr] = None
    step: Optional[Stmt] = None       # Assign
    body: Stmt = None


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# --------------------------------------------------------------------------
# Top level
# --------------------------------------------------------------------------

@dataclass
class Param(Node):
    type: Type = None
    name: str = ""


@dataclass
class FuncDecl(Node):
    ret_type: Type = None
    name: str = ""
    params: list[Param] = field(default_factory=list)
    body: Optional[Block] = None


@dataclass
class StructDecl(Node):
    name: str = ""
    # (name, type) pairs; types resolved by the parser via the type table.
    members: list[tuple[str, Type]] = field(default_factory=list)


@dataclass
class TranslationUnit(Node):
    structs: list[StructDecl] = field(default_factory=list)
    globals: list[VarDecl] = field(default_factory=list)
    functions: list[FuncDecl] = field(default_factory=list)
