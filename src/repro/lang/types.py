"""MiniC type system.

MiniC is the C subset the synthetic workloads are written in: ``int``,
``char``, ``float``, ``void``, pointers, fixed-size (possibly nested)
arrays, and named structs.  Word size is 4 bytes; structs are padded to
4-byte alignment like the MIPS ABI the paper's compiler targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


class Type:
    """Base class for MiniC types."""

    size: int = 0

    @property
    def is_scalar(self) -> bool:
        return isinstance(self, (IntType, CharType, FloatType, PointerType))

    @property
    def is_arithmetic(self) -> bool:
        return isinstance(self, (IntType, CharType, FloatType))

    @property
    def is_integer(self) -> bool:
        return isinstance(self, (IntType, CharType))

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_array(self) -> bool:
        return isinstance(self, ArrayType)

    @property
    def is_struct(self) -> bool:
        return isinstance(self, StructType)

    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    @property
    def alignment(self) -> int:
        return 1 if isinstance(self, CharType) else 4


@dataclass(frozen=True)
class IntType(Type):
    size: int = 4

    def __str__(self) -> str:
        return "int"


@dataclass(frozen=True)
class CharType(Type):
    size: int = 1

    def __str__(self) -> str:
        return "char"


@dataclass(frozen=True)
class FloatType(Type):
    size: int = 4

    def __str__(self) -> str:
        return "float"


@dataclass(frozen=True)
class VoidType(Type):
    size: int = 0

    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class PointerType(Type):
    target: Type = field(default_factory=IntType)
    size: int = 4

    def __str__(self) -> str:
        return f"{self.target}*"


@dataclass(frozen=True)
class ArrayType(Type):
    elem: Type = field(default_factory=IntType)
    count: int = 0

    @property
    def size(self) -> int:  # type: ignore[override]
        return self.elem.size * self.count

    @property
    def alignment(self) -> int:
        return self.elem.alignment

    def decayed(self) -> PointerType:
        return PointerType(self.elem)

    def __str__(self) -> str:
        return f"{self.elem}[{self.count}]"


@dataclass(frozen=True)
class StructField:
    name: str
    type: Type
    offset: int


class StructType(Type):
    """A named struct; mutable so self-referential types can be built."""

    def __init__(self, name: str):
        self.name = name
        self.fields: dict[str, StructField] = {}
        self._size = 0
        self.complete = False

    def set_fields(self, members: list[tuple[str, Type]]) -> None:
        offset = 0
        for fname, ftype in members:
            align = ftype.alignment
            offset = (offset + align - 1) & ~(align - 1)
            self.fields[fname] = StructField(fname, ftype, offset)
            offset += ftype.size
        self._size = (offset + 3) & ~3
        self.complete = True

    @property
    def size(self) -> int:  # type: ignore[override]
        return self._size

    def field(self, name: str) -> Optional[StructField]:
        return self.fields.get(name)

    def __str__(self) -> str:
        return f"struct {self.name}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, StructType) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("struct", self.name))


INT = IntType()
CHAR = CharType()
FLOAT = FloatType()
VOID = VoidType()


def is_assignable(target: Type, value: Type) -> bool:
    """Whether a value of type ``value`` may be assigned to ``target``."""
    if target.is_arithmetic and value.is_arithmetic:
        return True
    if target.is_pointer and value.is_pointer:
        return True  # permissive, like pre-ANSI C (void* interop)
    if target.is_pointer and value.is_integer:
        return True  # NULL / integer constants
    if target.is_integer and value.is_pointer:
        return True
    return False


def common_arithmetic(left: Type, right: Type) -> Type:
    """Usual arithmetic conversions (char promotes to int)."""
    if isinstance(left, FloatType) or isinstance(right, FloatType):
        return FLOAT
    return INT
