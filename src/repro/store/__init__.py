"""Persistent, content-addressed storage for execution artifacts.

The package currently holds one store: the chunked columnar trace store
(:mod:`repro.store.tracestore`), which persists memory-access streams so
a workload is executed at most once per (source, input, optimize,
engine-contract) key, plus the cache garbage collector
(:mod:`repro.store.gc`) that bounds every on-disk cache tier by size.
"""

from repro.store.tracestore import (TraceStore, TraceStoreCorrupt,
                                    TraceStoreWriter, trace_key)

__all__ = ["TraceStore", "TraceStoreCorrupt", "TraceStoreWriter",
           "trace_key"]
