"""Size-bounded garbage collection for the on-disk cache directory.

``.repro_cache/`` accumulates four tiers of content-addressed entries,
none of which ever expire on their own:

* ``pipeline`` — per-(run, config) simulation payloads in the root
  (``<workload>-<digest>.json``);
* ``service`` — served responses (``svc-<key>.json``, also root);
* ``stackdist`` — stack-distance profiles (``stackdist/sd-*.json``);
* ``traces`` — the chunked trace store (``traces/tr-*.json`` meta +
  ``traces/tr-*.bin`` columns, evicted as a pair).

:func:`collect_garbage` bounds the whole directory by total size with
LRU eviction: entries are ranked by mtime (trace store reads touch
their entry, so recently streamed traces survive) and the oldest are
deleted until the budget holds.  Undecodable or incomplete entries —
orphaned trace bins, meta without a bin, malformed JSON, stale ``.tmp``
leftovers from dead writers — are *reported and removed first*; every
tier re-creates missing entries on demand, so removal is always safe.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

#: Minimum age (seconds) before a ``*.tmp`` file counts as stale.
#: Writers publish via per-PID temp files renamed into place; a gc
#: pass racing a live writer must not delete the temp out from under
#: it.  Anything older than this grace window belongs to a dead
#: writer.
TMP_GRACE_SECONDS = 900.0


@dataclass
class GcEntry:
    """One evictable unit: a cache entry and every file backing it."""

    tier: str
    name: str
    paths: tuple[Path, ...]
    size: int
    mtime: float


@dataclass
class GcReport:
    """What a :func:`collect_garbage` pass found and did."""

    limit: int
    dry_run: bool
    scanned: int = 0                 # total bytes across live entries
    kept: int = 0                    # bytes remaining after eviction
    evicted: list[GcEntry] = field(default_factory=list)
    corrupt: list[tuple[str, str, str]] = field(default_factory=list)

    @property
    def evicted_bytes(self) -> int:
        return sum(entry.size for entry in self.evicted)

    def describe(self) -> str:
        verb = "would evict" if self.dry_run else "evicted"
        lines = [f"scanned {self.scanned} bytes, limit {self.limit}: "
                 f"{verb} {len(self.evicted)} entr"
                 f"{'y' if len(self.evicted) == 1 else 'ies'} "
                 f"({self.evicted_bytes} bytes), {self.kept} bytes kept"]
        for tier, name, reason in self.corrupt:
            lines.append(f"corrupt [{tier}] {name}: {reason}")
        for entry in self.evicted:
            lines.append(f"{verb} [{entry.tier}] {entry.name} "
                         f"({entry.size} bytes)")
        return "\n".join(lines)


def _stat(paths: tuple[Path, ...]) -> tuple[int, float]:
    size = 0
    mtime = 0.0
    for path in paths:
        stat = path.stat()
        size += stat.st_size
        mtime = max(mtime, stat.st_mtime)
    return size, mtime


def _json_ok(path: Path) -> bool:
    try:
        json.loads(path.read_text())
        return True
    except (OSError, ValueError):
        return False


def scan_entries(root: Path, tmp_grace: float = TMP_GRACE_SECONDS
                 ) -> tuple[list[GcEntry],
                            list[tuple[str, str, str, tuple]]]:
    """Every live entry plus every corrupt/stale item under ``root``.

    Corrupt items come back as ``(tier, name, reason, paths)`` so the
    caller can delete them (or just report, under ``--dry-run``).
    ``*.tmp`` files younger than ``tmp_grace`` seconds are a concurrent
    writer's work in progress and are left alone.
    """
    root = Path(root)
    entries: list[GcEntry] = []
    corrupt: list[tuple[str, str, str, tuple]] = []
    if not root.is_dir():
        return entries, corrupt

    def add(tier: str, name: str, paths: tuple[Path, ...]) -> None:
        try:
            size, mtime = _stat(paths)
        except OSError:
            return                   # vanished mid-scan: nothing to do
        entries.append(GcEntry(tier, name, paths, size, mtime))

    for path in root.glob("*.json"):
        tier = "service" if path.name.startswith("svc-") else "pipeline"
        if _json_ok(path):
            add(tier, path.name, (path,))
        else:
            corrupt.append((tier, path.name, "malformed JSON", (path,)))

    stackdist = root / "stackdist"
    if stackdist.is_dir():
        for path in stackdist.glob("sd-*.json"):
            if _json_ok(path):
                add("stackdist", path.name, (path,))
            else:
                corrupt.append(("stackdist", path.name,
                                "malformed JSON", (path,)))

    traces = root / "traces"
    if traces.is_dir():
        bins = {path.name[:-4]: path for path in traces.glob("tr-*.bin")}
        for meta in traces.glob("tr-*.json"):
            stem = meta.name[:-5]
            bin_path = bins.pop(stem, None)
            if bin_path is None:
                corrupt.append(("traces", meta.name, "meta without bin",
                                (meta,)))
            elif not _json_ok(meta):
                corrupt.append(("traces", stem, "malformed meta",
                                (meta, bin_path)))
            else:
                add("traces", stem, (meta, bin_path))
        for stem, bin_path in bins.items():
            corrupt.append(("traces", bin_path.name, "bin without meta",
                            (bin_path,)))

    fresh_after = time.time() - tmp_grace
    for pattern in ("*.tmp", "stackdist/*.tmp", "traces/*.tmp"):
        for path in root.glob(pattern):
            try:
                if path.stat().st_mtime > fresh_after:
                    continue         # a live writer's work in progress
            except OSError:
                continue             # renamed/removed mid-scan
            corrupt.append((path.parent.name if path.parent != root
                            else "pipeline", path.name,
                            "stale temp file", (path,)))
    return entries, corrupt


def _remove(paths: tuple[Path, ...]) -> None:
    for path in paths:
        try:
            path.unlink()
        except OSError:
            pass


def collect_garbage(root: Path, limit: int,
                    dry_run: bool = False,
                    tmp_grace: float = TMP_GRACE_SECONDS) -> GcReport:
    """Bound the cache directory to ``limit`` bytes, oldest-first.

    Corrupt items are always (reported and, unless ``dry_run``)
    removed; live entries are then evicted in LRU order until the
    total size fits the budget.
    """
    entries, corrupt_items = scan_entries(root, tmp_grace=tmp_grace)
    report = GcReport(limit=limit, dry_run=dry_run)
    for tier, name, reason, paths in corrupt_items:
        report.corrupt.append((tier, name, reason))
        if not dry_run:
            _remove(paths)
    report.scanned = sum(entry.size for entry in entries)
    total = report.scanned
    for entry in sorted(entries, key=lambda e: e.mtime):
        if total <= limit:
            break
        report.evicted.append(entry)
        total -= entry.size
        if not dry_run:
            _remove(entry.paths)
    report.kept = total
    return report


def parse_size(text: str) -> int:
    """``'512M'``/``'2G'``/``'100K'``/plain bytes to an int."""
    text = text.strip().upper()
    factor = 1
    for suffix, scale in (("K", 1 << 10), ("M", 1 << 20),
                          ("G", 1 << 30)):
        if text.endswith(suffix):
            factor = scale
            text = text[:-1]
            break
    try:
        value = float(text)
    except ValueError:
        raise ValueError(f"unparseable size {text!r}") from None
    if value < 0:
        raise ValueError("size must be non-negative")
    return int(value * factor)
