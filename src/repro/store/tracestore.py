"""Delta-encoded, zlib-compressed columnar trace store.

One entry persists one complete memory-access stream as a sequence of
framed chunks, so later sweeps and analyses stream it back from disk
with bounded RSS instead of re-executing the program.  Entries are
content-addressed: the caller keys them by a hash of everything that
determines the trace (source digest, input, optimization level, engine
contract), so a key hit *is* the trace and no validation re-run is
needed.

On-disk layout, per entry ``key``:

``tr-<key>.bin``
    A sequence of frames, one per :class:`TraceChunk`.  Each frame is a
    16-byte little-endian header ``(rows, pc_len, addr_len, kind_len)``
    followed by the three column blobs.  The pc and address columns are
    delta-encoded first — ``d[0] = x[0]``, ``d[i] = (x[i] - x[i-1]) &
    0xFFFFFFFF`` — which turns the dominant patterns (straight-line pc
    runs, strided array walks) into tiny repeating values, then
    zlib-compressed; the kind column compresses well raw.  Columns are
    little-endian ``uint32``/``uint8`` regardless of host byteswap.

``tr-<key>.json``
    The metadata sidecar: schema version, row count, canonical rolling
    digest, per-PC load/store access counts, kind totals, and the
    execution facts (block entry counts, steps, exit code, program
    output) that let consumers skip execution entirely on a hit.

Write protocol: frames go to a per-PID temp file, the bin is published
with ``os.replace``, and the meta sidecar is written (atomically) last
— so a meta file's existence implies a complete bin, and concurrent
writers of the same key are safe (last writer wins with identical
content).  Readers decode lazily; any mismatch (short frame, bad zlib
stream, row-count drift) raises :class:`TraceStoreCorrupt` so the
caller can delete the entry and fall back to re-execution.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import sys
import zlib
from array import array
from collections import Counter
from itertools import accumulate, chain
from operator import sub
from pathlib import Path
from typing import Iterator, Optional

from repro.machine.trace import (DEFAULT_CHUNK_ACCESSES, LOAD, PREFETCH,
                                 ChunkStream, MemoryTrace,
                                 RollingTraceDigest, TraceChunk)

_SCHEMA = 1
_FRAME = struct.Struct("<IIII")      # rows, pc blob, addr blob, kind blob
_MASK32 = 0xFFFF_FFFF
_SWAP = sys.byteorder == "big"


def trace_key(source: str, optimize: bool, max_steps: int) -> str:
    """Content key of one workload's trace.

    Hashes everything that determines the access stream: the program
    text (workload inputs are baked into the generated source), the
    optimization level, the step budget, and the store schema.  The
    execution engine is deliberately excluded — both engines are
    bit-identical by contract, so entries written under either are
    interchangeable.  The pipeline session and the service share this
    key, so a workload executed by one is a store hit for the other.
    """
    text = "|".join(("trace", str(_SCHEMA), source, str(bool(optimize)),
                     str(max_steps)))
    return hashlib.sha1(text.encode()).hexdigest()


class TraceStoreCorrupt(Exception):
    """A stored trace entry failed to decode.

    Raised lazily while streaming a blob back; the entry should be
    deleted and the workload re-executed.
    """


def _le(column: array) -> array:
    if _SWAP:
        column = array(column.typecode, column)
        column.byteswap()
    return column


def _delta_blob(column: array) -> bytes:
    """Delta-encode a uint32 column and deflate it.

    The subtraction and masking run entirely through C-level ``map``
    calls — no Python-level loop touches the rows.
    """
    deltas = array("I", map(_MASK32.__and__,
                            map(sub, column, chain((0,), column))))
    return zlib.compress(_le(deltas).tobytes(), 6)


def _undelta_blob(blob: bytes, rows: int) -> array:
    deltas = array("I")
    deltas.frombytes(zlib.decompress(blob))
    if _SWAP:
        deltas.byteswap()
    if len(deltas) != rows:
        raise TraceStoreCorrupt("column length mismatch")
    # Masked prefix sum inverts the delta encoding; ``accumulate`` and
    # ``map`` keep the reconstruction at C speed.
    return array("I", map(_MASK32.__and__, accumulate(deltas)))


class TraceStoreWriter:
    """Incremental writer for one entry; usable as a streaming sink.

    Feed it chunks (``writer(chunk)`` — e.g. directly as
    ``Machine.run_streaming``'s sink), then :meth:`close` with the
    execution facts to publish the entry, or :meth:`abort` to discard.
    While writing it tallies everything the meta sidecar needs — the
    rolling digest, kind totals, per-PC access counts — so persisting
    costs no extra pass over the trace.
    """

    def __init__(self, store: "TraceStore", key: str,
                 chunk_accesses: int = DEFAULT_CHUNK_ACCESSES):
        self._store = store
        self._key = key
        self._chunk_accesses = chunk_accesses
        self._digest = RollingTraceDigest()
        self._pc_counts: Counter = Counter()
        self._kind_of: dict[int, int] = {}
        self._loads = 0
        self._stores = 0
        self._prefetches = 0
        self._temp = store._bin(key).with_name(
            store._bin(key).name + f".{os.getpid()}.tmp")
        store.root.mkdir(parents=True, exist_ok=True)
        self._file = open(self._temp, "wb")

    def __call__(self, chunk: TraceChunk) -> None:
        pc_blob = _delta_blob(chunk.pcs)
        addr_blob = _delta_blob(chunk.addresses)
        kind_blob = zlib.compress(chunk.kinds.tobytes(), 6)
        self._file.write(_FRAME.pack(len(chunk), len(pc_blob),
                                     len(addr_blob), len(kind_blob)))
        self._file.write(pc_blob)
        self._file.write(addr_blob)
        self._file.write(kind_blob)
        self._digest.update(chunk)
        self._pc_counts.update(chunk.pcs)
        self._kind_of.update(zip(chunk.pcs, chunk.kinds))
        self._loads += chunk.load_count
        self._stores += chunk.store_count
        self._prefetches += chunk.prefetch_count

    def abort(self) -> None:
        self._file.close()
        try:
            self._temp.unlink()
        except OSError:
            pass

    def close(self, *, block_counts: Optional[dict[int, int]] = None,
              steps: int = 0, exit_code: int = 0,
              output: Optional[list[int]] = None) -> dict:
        """Publish the entry: bin first, meta sidecar last."""
        self._file.close()
        loads: dict[int, int] = {}
        stores: dict[int, int] = {}
        for pc, count in self._pc_counts.items():
            kind = self._kind_of[pc]
            if kind == LOAD:
                loads[pc] = count
            elif kind != PREFETCH:
                stores[pc] = count
        meta = {
            "schema": _SCHEMA,
            "rows": self._digest.rows,
            "digest": self._digest.hexdigest(),
            "chunk_accesses": self._chunk_accesses,
            "load_count": self._loads,
            "store_count": self._stores,
            "prefetch_count": self._prefetches,
            "load_accesses": {str(pc): n for pc, n in loads.items()},
            "store_accesses": {str(pc): n for pc, n in stores.items()},
            "block_counts": {str(pc): n
                             for pc, n in (block_counts or {}).items()},
            "steps": steps,
            "exit_code": exit_code,
            "output": list(output or []),
        }
        os.replace(self._temp, self._store._bin(self._key))
        meta_path = self._store._meta(self._key)
        temp_meta = meta_path.with_name(
            meta_path.name + f".{os.getpid()}.tmp")
        temp_meta.write_text(json.dumps(meta))
        os.replace(temp_meta, meta_path)
        return meta


class TraceStore:
    """Directory of persisted trace entries, keyed by content hash."""

    def __init__(self, root: Path):
        self.root = Path(root)

    def _bin(self, key: str) -> Path:
        return self.root / f"tr-{key}.bin"

    def _meta(self, key: str) -> Path:
        return self.root / f"tr-{key}.json"

    def contains(self, key: str) -> bool:
        return self._meta(key).exists() and self._bin(key).exists()

    def meta(self, key: str) -> Optional[dict]:
        """The meta sidecar, or None if absent/undecodable."""
        try:
            payload = json.loads(self._meta(key).read_text())
        except (OSError, ValueError):
            return None
        if (not isinstance(payload, dict)
                or payload.get("schema") != _SCHEMA
                or not self._bin(key).exists()):
            return None
        return payload

    def writer(self, key: str,
               chunk_accesses: int = DEFAULT_CHUNK_ACCESSES
               ) -> TraceStoreWriter:
        return TraceStoreWriter(self, key, chunk_accesses)

    def _read_chunks(self, key: str, rows: int) -> Iterator[TraceChunk]:
        try:
            file = open(self._bin(key), "rb")
        except OSError as error:
            raise TraceStoreCorrupt(f"missing bin for {key}") from error
        start = 0
        with file:
            while True:
                header = file.read(_FRAME.size)
                if not header:
                    break
                if len(header) != _FRAME.size:
                    raise TraceStoreCorrupt("short frame header")
                count, pc_len, addr_len, kind_len = _FRAME.unpack(header)
                body = file.read(pc_len + addr_len + kind_len)
                if len(body) != pc_len + addr_len + kind_len:
                    raise TraceStoreCorrupt("short frame body")
                try:
                    pcs = _undelta_blob(body[:pc_len], count)
                    addresses = _undelta_blob(
                        body[pc_len:pc_len + addr_len], count)
                    kinds = array("B")
                    kinds.frombytes(
                        zlib.decompress(body[pc_len + addr_len:]))
                except zlib.error as error:
                    raise TraceStoreCorrupt("bad blob") from error
                if len(kinds) != count:
                    raise TraceStoreCorrupt("column length mismatch")
                yield TraceChunk(pcs, addresses, kinds, start)
                start += count
        if start != rows:
            raise TraceStoreCorrupt(
                f"row count mismatch: bin has {start}, meta says {rows}")

    def open(self, key: str) -> Optional[ChunkStream]:
        """A re-openable stream over a stored entry, or None on miss.

        Decoding is lazy, so corruption surfaces as
        :class:`TraceStoreCorrupt` during iteration, not here.  Reading
        touches the entry's mtime, which is the LRU signal the cache
        garbage collector evicts by.
        """
        meta = self.meta(key)
        if meta is None:
            return None
        try:
            os.utime(self._bin(key))
        except OSError:
            pass
        rows = int(meta["rows"])
        return ChunkStream(
            lambda: self._read_chunks(key, rows),
            length=rows,
            digest=meta["digest"],
            prefetch_count=int(meta["prefetch_count"]),
            load_accesses={int(pc): n for pc, n
                           in meta["load_accesses"].items()},
            store_accesses={int(pc): n for pc, n
                            in meta["store_accesses"].items()},
        )

    def delete(self, key: str) -> None:
        for path in (self._bin(key), self._meta(key)):
            try:
                path.unlink()
            except OSError:
                pass

    def put_trace(self, key: str, trace: MemoryTrace, *,
                  chunk_accesses: int = DEFAULT_CHUNK_ACCESSES,
                  block_counts: Optional[dict[int, int]] = None,
                  steps: int = 0, exit_code: int = 0,
                  output: Optional[list[int]] = None) -> dict:
        """Persist an already-materialized trace in one call."""
        writer = self.writer(key, chunk_accesses)
        try:
            for chunk in trace.chunks(chunk_accesses):
                writer(chunk)
        except BaseException:
            writer.abort()
            raise
        return writer.close(block_counts=block_counts, steps=steps,
                            exit_code=exit_code, output=output)

    def keys(self) -> list[str]:
        if not self.root.is_dir():
            return []
        return sorted(path.name[3:-5]
                      for path in self.root.glob("tr-*.json"))
