"""Redundant-load detection over memory traces.

*Redundant Loads: A Software Inefficiency Indicator* calls a dynamic
load **redundant** when the value it fetches is already available from
the most recent access to the same address:

* **reload** — the previous access to the address was a load: the
  value sits (logically) in a register already;
* **reload-after-store** — the previous access was a store: the value
  was just produced and forwarded through memory instead of a
  register (the "dead reload" shape compilers miss across aliasing or
  call boundaries).

Both are counted as redundant; ``reload_after_store`` is also broken
out on its own.  The first access to an address is never redundant,
stores reset nothing except becoming the new "previous access", and
prefetches are transparent (they neither consume nor produce the
value, so they neither make a later load redundant nor break a
reload chain).

Two independent implementations live here on purpose:

* :func:`analyze_redundancy` — the production analyzer: one streaming
  pass folding per-address state over
  :func:`repro.cache.model.chunk_columns`, so it accepts materialized
  traces and chunked streams bit-identically and never needs the
  whole trace in RAM.
* :func:`naive_redundancy` — the oracle's reference: for every load,
  scan *backwards* through the materialized rows for the previous
  access to that address.  Quadratic, obviously correct, and sharing
  no state-machine code with the analyzer — exactly what a
  differential oracle wants to diff against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.model import TraceSource, chunk_columns
from repro.machine.trace import LOAD, PREFETCH, STORE, MemoryTrace

_LAST_LOAD = 0
_LAST_STORE = 1


@dataclass
class LoadRedundancy:
    """Redundancy counts for one load PC."""

    accesses: int = 0
    redundant: int = 0
    reload_after_store: int = 0

    @property
    def fresh(self) -> int:
        """Loads that actually had to touch memory for a new value."""
        return self.accesses - self.redundant

    @property
    def ratio(self) -> float:
        return self.redundant / self.accesses if self.accesses else 0.0


@dataclass
class RedundancyStats:
    """Per-PC redundancy for one trace."""

    loads: dict[int, LoadRedundancy] = field(default_factory=dict)

    @property
    def total_loads(self) -> int:
        return sum(load.accesses for load in self.loads.values())

    @property
    def total_redundant(self) -> int:
        return sum(load.redundant for load in self.loads.values())

    @property
    def total_reload_after_store(self) -> int:
        return sum(load.reload_after_store
                   for load in self.loads.values())

    @property
    def ratio(self) -> float:
        total = self.total_loads
        return self.total_redundant / total if total else 0.0

    def pcs_by_redundant(self) -> list[tuple[int, LoadRedundancy]]:
        """``(pc, counts)`` sorted most-redundant-first, then by PC."""
        return sorted(self.loads.items(),
                      key=lambda kv: (-kv[1].redundant, kv[0]))


def analyze_redundancy(source: TraceSource) -> RedundancyStats:
    """One streaming pass; per-address last-access-kind state."""
    last: dict[int, int] = {}
    accesses: dict[int, int] = {}
    redundant: dict[int, int] = {}
    after_store: dict[int, int] = {}
    for pcs, addresses, kinds in chunk_columns(source):
        for pc, address, kind in zip(pcs, addresses, kinds):
            if kind == PREFETCH:
                continue
            if kind == STORE:
                last[address] = _LAST_STORE
                continue
            accesses[pc] = accesses.get(pc, 0) + 1
            previous = last.get(address)
            if previous is not None:
                redundant[pc] = redundant.get(pc, 0) + 1
                if previous == _LAST_STORE:
                    after_store[pc] = after_store.get(pc, 0) + 1
            last[address] = _LAST_LOAD
    loads = {pc: LoadRedundancy(
                 accesses=count,
                 redundant=redundant.get(pc, 0),
                 reload_after_store=after_store.get(pc, 0))
             for pc, count in accesses.items()}
    return RedundancyStats(loads=loads)


def naive_redundancy(trace: MemoryTrace) -> RedundancyStats:
    """Backward-scanning reference implementation (quadratic).

    For each load, walk backwards to the nearest earlier non-prefetch
    access of the same address and classify from its kind.  Use only
    on bounded traces (the fuzz oracle caps the row count).
    """
    pcs = trace.pcs
    addresses = trace.addresses
    kinds = trace.kinds
    stats = RedundancyStats()
    for index in range(len(pcs)):
        if kinds[index] != LOAD:
            continue
        pc = pcs[index]
        load = stats.loads.setdefault(pc, LoadRedundancy())
        load.accesses += 1
        address = addresses[index]
        for back in range(index - 1, -1, -1):
            if addresses[back] != address or kinds[back] == PREFETCH:
                continue
            load.redundant += 1
            if kinds[back] == STORE:
                load.reload_after_store += 1
            break
    return stats
