"""Cross-tabulating redundancy against the paper's AG classes.

The paper's aggregate classes (AG1..AG9, see
:mod:`repro.heuristic.classes`) partition loads by *static* address
features and execution frequency; redundancy is a purely *dynamic*
property.  Attributing each load PC's dynamic redundancy counts to the
classes it belongs to asks the paper's question sideways: are the
loads the heuristic's features single out also the ones reloading
values they already had?
"""

from __future__ import annotations

from typing import Mapping

from repro.heuristic.classes import AGGREGATE_CLASSES, \
    frequency_category
from repro.redundancy.analyzer import RedundancyStats


def ag_crosstab(stats: RedundancyStats,
                load_infos: Mapping[int, object],
                load_exec: Mapping[int, int]) -> dict[str, dict]:
    """Per-class dynamic load / redundant / reload-after-store totals.

    A load PC can belong to several classes (the classes overlap by
    design), so columns do not sum to the trace totals.  PCs absent
    from ``load_infos`` (e.g. synthetic trace cases with no program)
    are skipped.
    """
    totals = {cls.name: {"loads": 0, "redundant": 0,
                         "reload_after_store": 0, "pcs": 0}
              for cls in AGGREGATE_CLASSES}
    for pc, load in stats.loads.items():
        info = load_infos.get(pc)
        if info is None:
            continue
        category = frequency_category(load_exec.get(pc, 0))
        for cls in AGGREGATE_CLASSES:
            member = (any(cls.matches_pattern(f) for f in info.features)
                      if cls.pattern_member is not None
                      else cls.matches_frequency(category))
            if not member:
                continue
            row = totals[cls.name]
            row["loads"] += load.accesses
            row["redundant"] += load.redundant
            row["reload_after_store"] += load.reload_after_store
            row["pcs"] += 1
    return totals
