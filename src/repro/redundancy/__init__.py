"""Redundant-load scenario family.

The analyzer (:mod:`repro.redundancy.analyzer`) detects same-address
reloads and dead reload-after-store chains per PC in one streaming
pass; the cross-tab (:mod:`repro.redundancy.crosstab`) attributes the
dynamic counts to the paper's AG classes.
"""

from repro.redundancy.analyzer import (LoadRedundancy, RedundancyStats,
                                       analyze_redundancy,
                                       naive_redundancy)
from repro.redundancy.crosstab import ag_crosstab

__all__ = [
    "LoadRedundancy",
    "RedundancyStats",
    "ag_crosstab",
    "analyze_redundancy",
    "naive_redundancy",
]
