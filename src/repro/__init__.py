"""repro — reproduction of *Static Identification of Delinquent Loads*
(Panait, Sasturkar, Wong; CGO 2004).

The package implements the paper's static delinquent-load heuristic and
every substrate it depends on: a MiniC compiler targeting a MIPS-like
ISA, an assembler/disassembler, an instruction-level simulator with a
set-associative data-cache model, basic-block profiling, address-pattern
analysis, the weight-training machinery, the OKN/BDH baselines, eighteen
synthetic SPEC-counterpart workloads, and one experiment per paper table.

Quickstart::

    from repro import analyze_program

    report = analyze_program(open("prog.c").read())
    print(sorted(report.delinquent_loads))
    print(report.pi, report.rho)
"""

from repro.api import AnalysisReport, analyze_program
from repro.asm.assembler import assemble
from repro.asm.disassembler import disassemble
from repro.asm.verify import Issue, verify_program
from repro.asm.program import Program
from repro.cache.config import (
    BASELINE_CONFIG, TRAINING_CONFIG, CacheConfig,
)
from repro.cache.hierarchy import (
    HierarchyConfig, HierarchyStats, simulate_trace_hierarchy,
)
from repro.cache.model import Cache, CacheStats, simulate_trace
from repro.compiler.driver import compile_source, generate_assembly
from repro.heuristic.classes import (
    DEFAULT_DELTA, PAPER_WEIGHTS, Weights,
)
from repro.heuristic.classifier import (
    DelinquencyClassifier, HeuristicResult,
)
from repro.heuristic.delta_tuning import TunedDelta, tune_delta
from repro.heuristic.static_frequency import (
    StaticFrequencyEstimator, static_exec_counts,
)
from repro.heuristic.training import (
    BenchmarkTrainingData, TrainingReport, train_weights,
)
from repro.export import (
    load_report_json, report_to_dict, report_to_json, write_report_json,
)
from repro.machine.debugger import Debugger
from repro.machine.simulator import ExecutionResult, Machine, run_program
from repro.metrics.measures import coverage, ideal_delta, precision, xi
from repro.metrics.validation import (
    ConfusionMatrix, against_ideal, confusion,
)
from repro.patterns.builder import LoadInfo, build_load_infos
from repro.pipeline.session import Measurement, Session
from repro.rewrite.inserter import RewriteResult, insert_instructions
from repro.prefetch.evaluate import (
    PrefetchComparison, compare_policies,
)
from repro.prefetch.pass_ import apply_prefetching, plan_prefetches
from repro.profiling.combined import combined_delta
from repro.profiling.profile import BlockProfile
from repro.profiling.sampling import sampled_profile

__version__ = "1.0.0"

__all__ = [
    "AnalysisReport", "analyze_program",
    "assemble", "disassemble", "Program",
    "Issue", "verify_program",
    "BASELINE_CONFIG", "TRAINING_CONFIG", "CacheConfig",
    "Cache", "CacheStats", "simulate_trace",
    "compile_source", "generate_assembly",
    "DEFAULT_DELTA", "PAPER_WEIGHTS", "Weights",
    "DelinquencyClassifier", "HeuristicResult",
    "BenchmarkTrainingData", "TrainingReport", "train_weights",
    "ExecutionResult", "Machine", "run_program",
    "coverage", "ideal_delta", "precision", "xi",
    "LoadInfo", "build_load_infos",
    "Measurement", "Session",
    "combined_delta", "BlockProfile", "sampled_profile",
    "HierarchyConfig", "HierarchyStats", "simulate_trace_hierarchy",
    "TunedDelta", "tune_delta",
    "StaticFrequencyEstimator", "static_exec_counts",
    "Debugger",
    "load_report_json", "report_to_dict", "report_to_json",
    "write_report_json",
    "ConfusionMatrix", "against_ideal", "confusion",
    "PrefetchComparison", "compare_policies",
    "apply_prefetching", "plan_prefetches",
    "RewriteResult", "insert_instructions",
    "__version__",
]
