"""High-level convenience API.

``analyze_program`` runs the whole pipeline on one MiniC source string:
compile, statically classify every load, optionally execute under a cache
model, and report precision/coverage — the one-call version of what the
table experiments do per benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.asm.program import Program
from repro.cache.config import BASELINE_CONFIG, CacheConfig
from repro.cache.model import CacheStats, simulate_trace
from repro.compiler.driver import compile_source
from repro.heuristic.classes import DEFAULT_DELTA, PAPER_WEIGHTS, Weights
from repro.heuristic.classifier import DelinquencyClassifier, \
    HeuristicResult
from repro.machine.simulator import ExecutionResult, Machine
from repro.metrics.measures import coverage, precision
from repro.patterns.builder import LoadInfo, build_load_infos
from repro.profiling.profile import BlockProfile


@dataclass
class AnalysisReport:
    """Outcome of :func:`analyze_program`."""

    program: Program
    load_infos: dict[int, LoadInfo]
    heuristic: HeuristicResult
    execution: Optional[ExecutionResult] = None
    cache_stats: Optional[CacheStats] = None
    profile: Optional[BlockProfile] = None

    @property
    def delinquent_loads(self) -> set[int]:
        return self.heuristic.delinquent_set

    @property
    def pi(self) -> float:
        return precision(self.delinquent_loads, self.program.num_loads())

    @property
    def rho(self) -> Optional[float]:
        if self.cache_stats is None:
            return None
        return coverage(self.delinquent_loads,
                        self.cache_stats.load_misses)

    def describe_load(self, address: int) -> str:
        """Human-readable summary of one load's classification.

        Raises :class:`ValueError` when ``address`` is not one of the
        program's load instructions.
        """
        info = self.load_infos.get(address)
        if info is None:
            valid = ", ".join(f"{a:#x}"
                              for a in sorted(self.load_infos))
            raise ValueError(
                f"{address:#x} is not a load address; "
                f"valid load addresses: {valid or '(none)'}")
        classified = self.heuristic.loads[address]
        lines = [
            f"load at {address:#x} in {info.function}: "
            f"{info.instruction.text()}",
            f"  phi = {classified.score:.2f} "
            f"({'possibly delinquent' if classified.is_delinquent else 'not delinquent'})",
            f"  classes: {', '.join(sorted(classified.classes)) or '(none)'}",
        ]
        for pattern in info.patterns:
            lines.append(f"  pattern: {pattern}")
        if self.cache_stats is not None:
            misses = self.cache_stats.load_misses.get(address, 0)
            accesses = self.cache_stats.load_accesses.get(address, 0)
            lines.append(f"  observed: {misses} misses / "
                         f"{accesses} accesses")
        return "\n".join(lines)


def analyze_program(source: str, *,
                    optimize: bool = False,
                    execute: bool = True,
                    cache: CacheConfig = BASELINE_CONFIG,
                    weights: Weights = PAPER_WEIGHTS,
                    delta: float = DEFAULT_DELTA,
                    use_frequency: Optional[bool] = None,
                    max_steps: int = 300_000_000) -> AnalysisReport:
    """Compile and analyze one MiniC program.

    With ``execute=True`` (default) the program runs under the cache
    model, enabling coverage (rho) and the frequency classes AG8/AG9;
    with ``execute=False`` the classification is purely static (the
    paper's "without AG8 and AG9" configuration).
    """
    program = compile_source(source, optimize=optimize)
    load_infos = build_load_infos(program)

    execution: Optional[ExecutionResult] = None
    cache_stats: Optional[CacheStats] = None
    profile: Optional[BlockProfile] = None
    exec_counts = None
    hotspots = None
    if execute:
        machine = Machine(program, trace_memory=True, max_steps=max_steps)
        execution = machine.run()
        cache_stats = simulate_trace(execution.trace, cache)
        profile = BlockProfile.from_execution(program, execution)
        exec_counts = profile.load_exec_counts()
        hotspots = profile.hotspot_loads()

    if use_frequency is None:
        use_frequency = execute
    classifier = DelinquencyClassifier(weights=weights, delta=delta,
                                       use_frequency=use_frequency)
    heuristic = classifier.classify(load_infos, exec_counts, hotspots)
    return AnalysisReport(
        program=program,
        load_infos=load_infos,
        heuristic=heuristic,
        execution=execution,
        cache_stats=cache_stats,
        profile=profile,
    )
