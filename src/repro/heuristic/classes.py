"""Aggregate classes AG1..AG9 and the heuristic weights (paper Table 5).

Classes AG1..AG7 are *pattern* classes — membership is a predicate over one
address pattern's features.  AG8/AG9 are *frequency* classes over the
load's execution count (criterion H5) and apply to the load as a whole.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.patterns.ap import APFeatures

# Frequency categories (criterion H5).
FREQ_RARE = "rare"            # executed < 100 times
FREQ_SELDOM = "seldom"        # executed 100..999 times
FREQ_FAIR = "fair"            # everything else
FREQ_HOTSPOT = "hotspot"      # inside the 90%-of-cycles basic blocks

RARE_LIMIT = 100
SELDOM_LIMIT = 1000


def frequency_category(exec_count: int, in_hotspot: bool = False) -> str:
    if exec_count < RARE_LIMIT:
        return FREQ_RARE
    if exec_count < SELDOM_LIMIT:
        return FREQ_SELDOM
    return FREQ_HOTSPOT if in_hotspot else FREQ_FAIR


@dataclass(frozen=True)
class AggregateClass:
    """One AG class: name, paper description, and membership test."""

    name: str
    feature: str
    criterion: str                       # H1..H5
    pattern_member: Optional[Callable[[APFeatures], bool]] = None
    frequency_member: Optional[Callable[[str], bool]] = None

    def matches_pattern(self, feats: APFeatures) -> bool:
        return bool(self.pattern_member and self.pattern_member(feats))

    def matches_frequency(self, category: str) -> bool:
        return bool(self.frequency_member and self.frequency_member(category))


def _only_sp(feats: APFeatures) -> bool:
    return (feats.sp_count >= 2 and feats.gp_count == 0
            and feats.param_count == 0 and feats.ret_count == 0)


AGGREGATE_CLASSES: tuple[AggregateClass, ...] = (
    AggregateClass(
        "AG1", "sp and gp each used at least once", "H1",
        pattern_member=lambda f: f.sp_count >= 1 and f.gp_count >= 1),
    AggregateClass(
        "AG2", "only sp, used two times or more", "H1",
        pattern_member=_only_sp),
    AggregateClass(
        "AG3", "multiplication or shift present", "H2",
        pattern_member=lambda f: f.has_mul or f.has_shift),
    AggregateClass(
        "AG4", "dereferenced once", "H3",
        pattern_member=lambda f: f.deref_depth == 1),
    AggregateClass(
        "AG5", "dereferenced twice", "H3",
        pattern_member=lambda f: f.deref_depth == 2),
    AggregateClass(
        "AG6", "dereferenced three or more times", "H3",
        pattern_member=lambda f: f.deref_depth >= 3),
    AggregateClass(
        "AG7", "recurrent address pattern", "H4",
        pattern_member=lambda f: f.has_recurrence),
    AggregateClass(
        "AG8", "seldom executed (100..999 times)", "H5",
        frequency_member=lambda c: c == FREQ_SELDOM),
    AggregateClass(
        "AG9", "rarely executed (< 100 times)", "H5",
        frequency_member=lambda c: c == FREQ_RARE),
)

CLASSES_BY_NAME = {cls.name: cls for cls in AGGREGATE_CLASSES}

PATTERN_CLASS_NAMES = tuple(c.name for c in AGGREGATE_CLASSES
                            if c.pattern_member is not None)
FREQUENCY_CLASS_NAMES = tuple(c.name for c in AGGREGATE_CLASSES
                              if c.frequency_member is not None)


@dataclass(frozen=True)
class Weights:
    """Weight vector over the aggregate classes."""

    values: tuple[tuple[str, float], ...]

    @classmethod
    def from_dict(cls, mapping: dict[str, float]) -> "Weights":
        unknown = set(mapping) - set(CLASSES_BY_NAME)
        if unknown:
            raise ValueError(f"unknown classes: {sorted(unknown)}")
        return cls(tuple(sorted(mapping.items())))

    def as_dict(self) -> dict[str, float]:
        return dict(self.values)

    def __getitem__(self, name: str) -> float:
        return dict(self.values).get(name, 0.0)


#: Paper Table 5: the weights the authors trained on eleven SPEC
#: benchmarks.  Used as the out-of-the-box default; :mod:`training`
#: recomputes them for our synthetic suite.
PAPER_WEIGHTS = Weights.from_dict({
    "AG1": 0.28,
    "AG2": 0.33,
    "AG3": 0.47,
    "AG4": 0.16,
    "AG5": 0.67,
    "AG6": 1.72,
    "AG7": 0.10,
    "AG8": -0.20,
    "AG9": -0.40,
})

#: Paper Section 7.3: default delinquency threshold.
DEFAULT_DELTA = 0.10
