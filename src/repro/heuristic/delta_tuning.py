"""Per-benchmark delinquency-threshold tuning (the paper's Section 8.6).

Table 13 shows the impact of raising delta "varies significantly" across
benchmarks — for some, a higher delta sheds false positives at no
coverage cost; for others coverage collapses.  The paper concludes:
"This points to the possibility of using a different delta value for
different benchmarks.  Further investigation is warranted."

This module is that investigation: given phi scores and (training-run)
miss counts, pick the delta maximizing a precision/coverage utility

    U(delta) = rho(delta) - lam * pi(delta)

over a candidate grid.  With lam = 1 a percentage point of precision is
worth one of coverage; larger lam prefers sharper sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.metrics.measures import coverage, precision

DEFAULT_CANDIDATES = tuple(round(0.05 * k, 2) for k in range(1, 21))


@dataclass(frozen=True)
class TunedDelta:
    delta: float
    pi: float
    rho: float
    utility: float


def sweep(scores: Mapping[int, float],
          load_misses: Mapping[int, int],
          num_loads: int,
          candidates: Sequence[float] = DEFAULT_CANDIDATES,
          lam: float = 1.0) -> list[TunedDelta]:
    """Evaluate every candidate delta; loads with phi > delta form Delta."""
    results: list[TunedDelta] = []
    for delta in candidates:
        chosen = {address for address, score in scores.items()
                  if score > delta}
        pi = precision(chosen, num_loads)
        rho = coverage(chosen, load_misses)
        results.append(TunedDelta(delta=delta, pi=pi, rho=rho,
                                  utility=rho - lam * pi))
    return results


def tune_delta(scores: Mapping[int, float],
               load_misses: Mapping[int, int],
               num_loads: int,
               candidates: Sequence[float] = DEFAULT_CANDIDATES,
               lam: float = 1.0) -> TunedDelta:
    """The utility-maximizing threshold (ties break toward higher delta,
    i.e. the sharper set)."""
    results = sweep(scores, load_misses, num_loads, candidates, lam)
    return max(results, key=lambda r: (r.utility, r.delta))
