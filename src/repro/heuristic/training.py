"""Weight training (Sections 7.1-7.3 of the paper).

For a class F and benchmark j under cache configuration C the paper
defines::

    m_j(F, C) = M(F, C) / sum_{i in F} E(i)      (miss probability)
    n_j(F, C) = M(F, C) / M(P(I), C)             (share of all misses)
    r         = m_j / n_j                        (strength index)

A benchmark is *irrelevant* to F when both m and n fall below thresholds.
A class is **positive** when r >= 1/20 on every relevant benchmark,
**negative** when n < 0.5% everywhere, **neutral** otherwise.  Positive
weights are ``W(F) = mean over relevant j of m_j/n_j``; the negative
classes AG8/AG9 get ``-(mean of the positive weights excluding the
largest and smallest)`` and half of it, as Section 7.3 prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.heuristic.classes import (
    AGGREGATE_CLASSES, PATTERN_CLASS_NAMES, Weights,
)
from repro.heuristic.criteria import class_membership
from repro.patterns.builder import LoadInfo

#: Relevance thresholds: a benchmark is irrelevant to a class when both
#: m and n are below these (the paper leaves the exact values unstated;
#: 1% reproduces every relevance call in its Table 4 walkthrough).
M_THRESHOLD = 0.01
N_THRESHOLD = 0.01

#: Negative classes: n below this on every benchmark (Section 7.1).
NEGATIVE_N_THRESHOLD = 0.005

#: Positive classes: strength index bound (Section 7.1).
MIN_STRENGTH = 1.0 / 20.0


@dataclass
class BenchmarkTrainingData:
    """Per-benchmark observables the training formulas consume."""

    name: str
    class_members: dict[str, set[int]]
    load_exec: dict[int, int]
    load_miss: dict[int, int]
    total_misses: int

    @classmethod
    def collect(cls, name: str,
                load_infos: Mapping[int, LoadInfo],
                exec_counts: Mapping[int, int],
                load_misses: Mapping[int, int],
                hotspot_loads: Optional[set[int]] = None
                ) -> "BenchmarkTrainingData":
        members = class_membership(load_infos, exec_counts, hotspot_loads)
        # Aggregate-class membership rides along under its own names.
        for agg in AGGREGATE_CLASSES:
            member_set: set[int] = set()
            for address, info in load_infos.items():
                if agg.pattern_member is not None:
                    if any(agg.matches_pattern(f) for f in info.features):
                        member_set.add(address)
            if agg.pattern_member is not None:
                members[agg.name] = member_set
        return cls(
            name=name,
            class_members=members,
            load_exec=dict(exec_counts),
            load_miss=dict(load_misses),
            total_misses=sum(load_misses.values()),
        )

    # -- the paper's quantities --------------------------------------
    def m_value(self, class_name: str) -> Optional[float]:
        members = self.class_members.get(class_name)
        if not members:
            return None
        executions = sum(self.load_exec.get(a, 0) for a in members)
        if executions == 0:
            return None
        misses = sum(self.load_miss.get(a, 0) for a in members)
        return misses / executions

    def n_value(self, class_name: str) -> Optional[float]:
        members = self.class_members.get(class_name)
        if not members or self.total_misses == 0:
            return None
        misses = sum(self.load_miss.get(a, 0) for a in members)
        return misses / self.total_misses

    def found(self, class_name: str) -> bool:
        return bool(self.class_members.get(class_name))


@dataclass
class ClassEvaluation:
    """Relevance/nature/weight verdict for one class across benchmarks."""

    name: str
    per_benchmark: dict[str, tuple[float, float]]   # bench -> (m, n)
    found_in: list[str] = field(default_factory=list)
    relevant_in: list[str] = field(default_factory=list)
    nature: str = "neutral"                          # positive|negative|neutral
    weight: float = 0.0

    @property
    def strength(self) -> dict[str, float]:
        return {b: (m / n if n else float("inf"))
                for b, (m, n) in self.per_benchmark.items()}


def evaluate_class(class_name: str,
                   benchmarks: Sequence[BenchmarkTrainingData],
                   m_threshold: float = M_THRESHOLD,
                   n_threshold: float = N_THRESHOLD
                   ) -> ClassEvaluation:
    """Apply the Section 7.1 rules to one class."""
    evaluation = ClassEvaluation(name=class_name, per_benchmark={})
    all_n_small = True
    positive = True
    for bench in benchmarks:
        if not bench.found(class_name):
            continue
        evaluation.found_in.append(bench.name)
        m = bench.m_value(class_name)
        n = bench.n_value(class_name)
        if m is None or n is None:
            continue
        evaluation.per_benchmark[bench.name] = (m, n)
        if n >= NEGATIVE_N_THRESHOLD:
            all_n_small = False
        if m < m_threshold and n < n_threshold:
            continue  # irrelevant to this benchmark
        evaluation.relevant_in.append(bench.name)
        if n == 0 or (m / n) < MIN_STRENGTH:
            positive = False
    if all_n_small and evaluation.found_in:
        evaluation.nature = "negative"
    elif evaluation.relevant_in and positive:
        evaluation.nature = "positive"
        ratios = [
            m / n
            for bench_name, (m, n) in evaluation.per_benchmark.items()
            if bench_name in evaluation.relevant_in and n
        ]
        evaluation.weight = sum(ratios) / len(ratios)
    else:
        evaluation.nature = "neutral"
    return evaluation


@dataclass
class TrainingReport:
    """Outcome of a full training run."""

    weights: Weights
    evaluations: dict[str, ClassEvaluation]
    benchmarks: list[str]

    def evaluation(self, name: str) -> ClassEvaluation:
        return self.evaluations[name]


def train_weights(benchmarks: Sequence[BenchmarkTrainingData],
                  m_threshold: float = M_THRESHOLD,
                  n_threshold: float = N_THRESHOLD) -> TrainingReport:
    """Train aggregate-class weights AG1..AG9 on profiled benchmarks.

    AG1..AG7 are evaluated with the positive-class machinery; AG8/AG9
    receive the negative weights derived from the positive ones.
    """
    evaluations: dict[str, ClassEvaluation] = {}
    weight_map: dict[str, float] = {}
    positive_weights: list[float] = []
    for name in PATTERN_CLASS_NAMES:
        evaluation = evaluate_class(name, benchmarks, m_threshold,
                                    n_threshold)
        evaluations[name] = evaluation
        if evaluation.nature == "positive":
            weight_map[name] = evaluation.weight
            positive_weights.append(evaluation.weight)
        else:
            weight_map[name] = 0.0

    # Section 7.3: negative weights from the trimmed mean of the
    # positive weights.
    if len(positive_weights) > 2:
        trimmed = sorted(positive_weights)[1:-1]
    else:
        trimmed = positive_weights
    base = sum(trimmed) / len(trimmed) if trimmed else 0.4
    weight_map["AG9"] = -round(base, 2)
    weight_map["AG8"] = -round(base / 2, 2)
    return TrainingReport(
        weights=Weights.from_dict(weight_map),
        evaluations=evaluations,
        benchmarks=[b.name for b in benchmarks],
    )


def evaluate_h1_classes(benchmarks: Sequence[BenchmarkTrainingData]
                        ) -> list[ClassEvaluation]:
    """Evaluate every fine H1 class found anywhere (reproduces Table 3)."""
    names: set[str] = set()
    for bench in benchmarks:
        names.update(n for n in bench.class_members if n.startswith("H1:"))
    return [evaluate_class(name, benchmarks) for name in sorted(names)]
