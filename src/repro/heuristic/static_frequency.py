"""Static execution-frequency estimation (the paper's Section 5.2 note).

Criterion H5 uses profiling only *negatively* — to discard rarely/seldom
executed loads — and the paper remarks it is "entirely possible to replace
profiling with static heuristic approximations [15, 14] in identifying
infrequently executed load instructions".  This module implements that
replacement in the spirit of Wu & Larus: a purely static execution-count
estimate from loop nesting and the call graph.

Model
-----
* every natural-loop level multiplies a block's expected count by
  ``LOOP_FACTOR`` (a stand-in for the unknown trip count),
* a function's invocation estimate is the sum over its call sites of the
  caller's estimate times the site's loop factor, propagated to a
  fixpoint with a cap (recursion saturates instead of diverging),
* a load's pseudo-count = function estimate x loop factor of its block.

The pseudo-counts plug directly into
:meth:`repro.heuristic.classifier.DelinquencyClassifier.classify` in
place of measured exec counts: the AG8/AG9 thresholds (100 / 1000) then
discard straight-line code of rarely invoked functions, exactly the
negative use the paper makes of H5.
"""

from __future__ import annotations

from typing import Optional

from repro.asm.program import Program
from repro.cfg.blocks import BlockMap
from repro.cfg.graph import FunctionCFG, build_function_cfgs

LOOP_FACTOR = 1000          # assumed iterations per loop level
COUNT_CAP = 10 ** 12
_MAX_PASSES = 20


def _loop_depths(cfg: FunctionCFG) -> dict[int, int]:
    """Loop nesting depth of every block (leader -> depth)."""
    depths = {leader: 0 for leader in cfg.blocks}
    for loop in cfg.natural_loops():
        for leader in loop.body:
            depths[leader] += 1
    # Merged loops with the same header double-count their shared body;
    # clamp by the number of distinct headers containing the block.
    headers: dict[int, set[int]] = {leader: set() for leader in cfg.blocks}
    for loop in cfg.natural_loops():
        for leader in loop.body:
            headers[leader].add(loop.header)
    return {leader: min(depths[leader], len(headers[leader]))
            for leader in cfg.blocks}


class StaticFrequencyEstimator:
    """Whole-program static execution-count estimates."""

    def __init__(self, program: Program,
                 block_map: Optional[BlockMap] = None,
                 loop_factor: int = LOOP_FACTOR):
        self.program = program
        self.loop_factor = loop_factor
        block_map = block_map or BlockMap(program)
        self._cfgs = build_function_cfgs(program, block_map)
        self._depths: dict[str, dict[int, int]] = {
            name: _loop_depths(cfg) for name, cfg in self._cfgs.items()
        }
        self._function_counts = self._propagate()

    # ------------------------------------------------------------------
    def _call_sites(self) -> list[tuple[str, str, int]]:
        """(caller, callee, site loop depth) for every direct call."""
        sites = []
        for name, cfg in self._cfgs.items():
            depths = self._depths[name]
            for block in cfg:
                for instr in block.instructions:
                    if instr.mnemonic == "jal" and instr.imm is not None:
                        callee = self.program.function_containing(
                            instr.imm)
                        if callee is not None:
                            sites.append((name, callee,
                                          depths[block.start]))
        return sites

    def _propagate(self) -> dict[str, int]:
        counts = {name: 0 for name in self._cfgs}
        entry = self.program.function_containing(self.program.entry)
        if entry in counts:
            counts[entry] = 1
        sites = self._call_sites()
        # Jacobi-style fixpoint: recompute every estimate from the
        # previous iterate so call-graph cycles saturate at COUNT_CAP
        # instead of double-adding within one pass.
        for _ in range(_MAX_PASSES):
            fresh = {name: 0 for name in counts}
            if entry in fresh:
                fresh[entry] = 1
            for caller, callee, depth in sites:
                weight = counts.get(caller, 0) \
                    * (self.loop_factor ** depth)
                fresh[callee] = min(fresh.get(callee, 0) + weight,
                                    COUNT_CAP)
            if entry in fresh and fresh[entry] == 0:
                fresh[entry] = 1
            if fresh == counts:
                break
            counts = fresh
        return counts

    # ------------------------------------------------------------------
    def function_count(self, name: str) -> int:
        return self._function_counts.get(name, 0)

    def block_count(self, function: str, leader: int) -> int:
        depth = self._depths.get(function, {}).get(leader, 0)
        base = self._function_counts.get(function, 0)
        return min(base * (self.loop_factor ** depth), COUNT_CAP)

    def load_pseudo_counts(self) -> dict[int, int]:
        """Pseudo E(i) for every static load, from the static model."""
        counts: dict[int, int] = {}
        for name, cfg in self._cfgs.items():
            for block in cfg:
                estimate = self.block_count(name, block.start)
                for offset, instr in enumerate(block.instructions):
                    if instr.is_load:
                        counts[block.start + 4 * offset] = estimate
        return counts


def static_exec_counts(program: Program,
                       block_map: Optional[BlockMap] = None,
                       loop_factor: int = LOOP_FACTOR) -> dict[int, int]:
    """Convenience wrapper: static pseudo execution counts per load."""
    return StaticFrequencyEstimator(
        program, block_map, loop_factor).load_pseudo_counts()
