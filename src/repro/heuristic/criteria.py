"""Fine-grained decision-criterion classes (Section 5.2 / Table 3).

Each of the five decision criteria H1..H5 induces a family of classes; an
address pattern belongs to at most one class per criterion, and a load
belongs to a class when at least one of its patterns does.  These fine
classes drive the weight-training study (and reproduce Table 3); the
heuristic itself runs on the merged aggregate classes in
:mod:`repro.heuristic.classes`.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.heuristic.classes import frequency_category
from repro.patterns.ap import APFeatures
from repro.patterns.builder import LoadInfo

H1_MAX_COUNT = 6          # occurrence counts clamp here for class naming
H3_MAX_DEREF = 4


def h1_class(feats: APFeatures) -> str:
    """H1: base-register usage.  Classes named by exact sp/gp counts;
    patterns using any other base register fall into 'others'."""
    if feats.param_count or feats.ret_count or feats.other_count:
        return "H1:others"
    sp = min(feats.sp_count, H1_MAX_COUNT)
    gp = min(feats.gp_count, H1_MAX_COUNT)
    if sp == 0 and gp == 0:
        return "H1:none"
    parts = []
    if sp:
        parts.append(f"sp={sp}")
    if gp:
        parts.append(f"gp={gp}")
    return "H1:" + ",".join(parts)


def h2_class(feats: APFeatures) -> str:
    """H2: type of address arithmetic."""
    return "H2:mulshift" if (feats.has_mul or feats.has_shift) \
        else "H2:plain"


def h3_class(feats: APFeatures) -> str:
    """H3: maximum level of dereferencing."""
    return f"H3:deref{min(feats.deref_depth, H3_MAX_DEREF)}"


def h4_class(feats: APFeatures) -> str:
    """H4: recurrence."""
    return "H4:recurrent" if feats.has_recurrence else "H4:nonrecurrent"


def h5_class(exec_count: int, in_hotspot: bool = False) -> str:
    """H5: execution frequency."""
    return "H5:" + frequency_category(exec_count, in_hotspot)


def pattern_classes(feats: APFeatures) -> list[str]:
    """All fine classes one pattern belongs to (one per criterion)."""
    return [h1_class(feats), h2_class(feats), h3_class(feats),
            h4_class(feats)]


def load_classes(info: LoadInfo,
                 exec_count: Optional[int] = None,
                 in_hotspot: bool = False) -> set[str]:
    """Fine classes a load belongs to, via any of its patterns."""
    classes: set[str] = set()
    for feats in info.features:
        classes.update(pattern_classes(feats))
    if exec_count is not None:
        classes.add(h5_class(exec_count, in_hotspot))
    return classes


def class_membership(load_infos: Mapping[int, LoadInfo],
                     exec_counts: Optional[Mapping[int, int]] = None,
                     hotspot_loads: Optional[set[int]] = None
                     ) -> dict[str, set[int]]:
    """Invert :func:`load_classes`: class name -> set of load addresses."""
    members: dict[str, set[int]] = {}
    hotspot_loads = hotspot_loads or set()
    for address, info in load_infos.items():
        count = exec_counts.get(address, 0) if exec_counts is not None \
            else None
        for name in load_classes(info, count, address in hotspot_loads):
            members.setdefault(name, set()).add(address)
    return members
