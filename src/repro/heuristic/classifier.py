"""The delinquency classifier: phi(i) and the threshold test (Sec 7.3).

    phi(i) = max over address patterns j of i of
                 sum_k W(AG_k) * [j in AG_k]

A load is *possibly delinquent* when ``phi(i) > delta``.  The frequency
classes AG8/AG9 are properties of the load (not of a single pattern) and
contribute to every pattern's sum; ``use_frequency=False`` reproduces the
paper's "without AG8 and AG9" columns (Table 11), which need no runtime
profile at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.heuristic.classes import (
    AGGREGATE_CLASSES, DEFAULT_DELTA, FREQ_FAIR, PAPER_WEIGHTS, Weights,
    frequency_category,
)
from repro.patterns.builder import LoadInfo


@dataclass
class ClassifiedLoad:
    """Classification outcome for one static load."""

    address: int
    score: float
    classes: frozenset[str]          # classes contributing to the max pattern
    is_delinquent: bool


@dataclass
class HeuristicResult:
    """Full classifier output over a program."""

    loads: dict[int, ClassifiedLoad]
    delta: float
    weights: Weights

    @property
    def delinquent_set(self) -> set[int]:
        return {a for a, c in self.loads.items() if c.is_delinquent}

    def members_of(self, class_name: str) -> set[int]:
        return {a for a, c in self.loads.items() if class_name in c.classes}

    def scores(self) -> dict[int, float]:
        return {a: c.score for a, c in self.loads.items()}


class DelinquencyClassifier:
    """Applies the weighted-class heuristic to a set of loads."""

    def __init__(self, weights: Weights = PAPER_WEIGHTS,
                 delta: float = DEFAULT_DELTA,
                 use_frequency: bool = True):
        self.weights = weights
        self.delta = delta
        self.use_frequency = use_frequency

    def score_load(self, info: LoadInfo,
                   freq: str = FREQ_FAIR) -> tuple[float, frozenset[str]]:
        """phi(i) and the class set of the maximizing pattern."""
        weights = self.weights
        freq_classes: list[str] = []
        freq_score = 0.0
        if self.use_frequency:
            for cls in AGGREGATE_CLASSES:
                if cls.frequency_member and cls.matches_frequency(freq):
                    freq_classes.append(cls.name)
                    freq_score += weights[cls.name]
        best_score = float("-inf")
        best_classes: frozenset[str] = frozenset(freq_classes)
        feature_sets = info.features or [None]
        for feats in feature_sets:
            classes = list(freq_classes)
            score = freq_score
            if feats is not None:
                for cls in AGGREGATE_CLASSES:
                    if cls.pattern_member and cls.matches_pattern(feats):
                        classes.append(cls.name)
                        score += weights[cls.name]
            if score > best_score:
                best_score = score
                best_classes = frozenset(classes)
        if best_score == float("-inf"):
            best_score = 0.0
        return best_score, best_classes

    def classify(self, load_infos: Mapping[int, LoadInfo],
                 exec_counts: Optional[Mapping[int, int]] = None,
                 hotspot_loads: Optional[set[int]] = None
                 ) -> HeuristicResult:
        """Classify every load.

        ``exec_counts`` supplies E(i) for the frequency classes; when
        omitted (or ``use_frequency=False``) every load counts as fairly
        executed, the paper's profile-free configuration.
        """
        results: dict[int, ClassifiedLoad] = {}
        for address, info in load_infos.items():
            if exec_counts is not None and self.use_frequency:
                count = exec_counts.get(address, 0)
                in_hotspot = bool(hotspot_loads) \
                    and address in (hotspot_loads or set())
                freq = frequency_category(count, in_hotspot)
            else:
                freq = FREQ_FAIR
            score, classes = self.score_load(info, freq)
            results[address] = ClassifiedLoad(
                address=address, score=score, classes=classes,
                is_delinquent=score > self.delta)
        return HeuristicResult(loads=results, delta=self.delta,
                               weights=self.weights)
