"""End-to-end experiment pipeline.

A :class:`Session` memoizes the expensive stages so the fourteen table
experiments can share work:

* **compile** — (workload, input, optimize) -> Program (cheap, memoized);
* **analyze** — static address patterns per program (cheap, memoized);
* **execute** — instruction-level run producing the block profile and the
  memory trace (expensive; traces are held in a small LRU because they
  dominate memory);
* **cache-simulate** — trace x cache-config -> per-load miss counts
  (moderately expensive; results are also persisted to a JSON disk cache
  keyed by a content hash, so re-running a bench suite skips simulation
  entirely).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from repro.asm.program import Program
from repro.cache.config import (BASELINE_CONFIG, TRAINING_CONFIG,
                                CacheConfig)
from repro.cache.model import CacheStats, TraceSource
from repro.cache.stackdist import ProfileStore, simulate_sweep
from repro.compiler.driver import compile_source
from repro.machine.simulator import Machine
from repro.patterns.builder import LoadInfo, build_load_infos
from repro.profiling.profile import BlockProfile
from repro.store.tracestore import (TraceStore, TraceStoreCorrupt,
                                    trace_key)
from repro.workloads.base import Workload
from repro.workloads.registry import get as get_workload

_SCHEMA_VERSION = 4
_TRACE_LRU = 2

#: A warm() work item: a RunKey, a (workload, input, optimize) triple, or
#: the same triple plus an explicit cache-config sequence.
WarmRun = Union["RunKey", tuple]


def default_cache_dir() -> Path:
    """The shared on-disk result cache (``<repo>/.repro_cache``).

    Shared by :class:`Session`'s simulation cache and the service's
    tiered result cache (:mod:`repro.service.cache`), so one warm
    directory serves both the bench suite and a long-lived server.
    """
    return Path(__file__).resolve().parents[3] / ".repro_cache"


def atomic_write_json(path: Path, payload: dict) -> None:
    """Best-effort atomic JSON write (temp file + ``os.replace``).

    Concurrent writers (warm workers, service instances) may race on
    the same entry: each writes a per-PID temp file and atomically
    renames it into place so a reader can never observe a partially
    written entry.  I/O failures are swallowed — caching is an
    optimization, never a correctness requirement.
    """
    temp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        temp.write_text(json.dumps(payload))
        os.replace(temp, path)
    except OSError:
        pass


def _resolve_jobs(jobs: Optional[int]) -> int:
    """Worker-count knob: explicit argument > $REPRO_JOBS > CPU count."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        jobs = int(env) if env else (os.cpu_count() or 1)
    return max(1, jobs)


@dataclass(frozen=True)
class RunKey:
    workload: str
    input_name: str
    optimize: bool


@dataclass
class Measurement:
    """Everything the experiments need for one (run, cache) pair."""

    key: RunKey
    cache_config: CacheConfig
    program: Program
    load_infos: dict[int, LoadInfo]
    profile: BlockProfile
    load_misses: dict[int, int]
    load_exec: dict[int, int]
    steps: int

    @property
    def num_loads(self) -> int:
        return self.program.num_loads()

    @property
    def total_load_misses(self) -> int:
        return sum(self.load_misses.values())


class Session:
    """Shared pipeline state for a set of experiments."""

    def __init__(self, scale: float = 1.0,
                 cache_dir: Optional[Path] = None,
                 use_disk_cache: bool = True,
                 max_steps: int = 300_000_000,
                 engine: Optional[str] = None):
        self.scale = scale
        self.max_steps = max_steps
        self.engine = engine
        self.use_disk_cache = use_disk_cache
        self.cache_dir = Path(cache_dir) if cache_dir is not None \
            else default_cache_dir()
        self._sources: dict[tuple[str, str], str] = {}
        self._programs: dict[RunKey, Program] = {}
        self._analyses: dict[RunKey, dict[int, LoadInfo]] = {}
        self._profiles: dict[RunKey, BlockProfile] = {}
        self._steps: dict[RunKey, int] = {}
        self._traces: OrderedDict = OrderedDict()
        self._stats: dict[tuple[RunKey, CacheConfig], CacheStats] = {}
        self._pcax: dict[tuple, object] = {}
        self._redundancy: dict[RunKey, object] = {}
        # Stack-distance profiles (see cache.stackdist) share the
        # session's cache directory so warmed sweeps survive restarts.
        self._profile_store = ProfileStore(
            disk_dir=(self.cache_dir / "stackdist")
            if use_disk_cache else None)
        # The chunked trace store (see repro.store): executions stream
        # their access trace straight to disk, replays stream it back,
        # so a workload is executed at most once per content key and no
        # whole trace needs to fit in RAM.
        self._trace_store = TraceStore(self.cache_dir / "traces") \
            if use_disk_cache else None

    # -- stages ------------------------------------------------------
    def add_source(self, workload: str, source: str,
                   input_name: str = "input1") -> RunKey:
        """Register literal MiniC text as a synthetic workload.

        Lets callers outside the workload registry (the fuzz harness,
        ad-hoc experiments) drive the full memoized pipeline — compile,
        execute, cache-simulate, disk cache — on arbitrary sources.
        The disk-cache digest hashes the source text itself, so
        synthetic entries can never collide with registry workloads.
        """
        self._sources[(workload, input_name)] = source
        return RunKey(workload, input_name, False)

    def source(self, workload: str, input_name: str = "input1") -> str:
        key = (workload, input_name)
        if key not in self._sources:
            definition: Workload = get_workload(workload)
            self._sources[key] = definition.generate(input_name,
                                                     scale=self.scale)
        return self._sources[key]

    def program(self, workload: str, input_name: str = "input1",
                optimize: bool = False) -> Program:
        key = RunKey(workload, input_name, optimize)
        if key not in self._programs:
            self._programs[key] = compile_source(
                self.source(workload, input_name), optimize=optimize)
        return self._programs[key]

    def load_infos(self, workload: str, input_name: str = "input1",
                   optimize: bool = False) -> dict[int, LoadInfo]:
        key = RunKey(workload, input_name, optimize)
        if key not in self._analyses:
            self._analyses[key] = build_load_infos(
                self.program(workload, input_name, optimize))
        return self._analyses[key]

    def _trace_key(self, key: RunKey) -> str:
        return trace_key(self.source(key.workload, key.input_name),
                         key.optimize, self.max_steps)

    def _execute(self, key: RunKey, streaming: bool = True) -> None:
        """Run the workload once, streaming into the trace store.

        With the store available the access trace goes straight to disk
        in compressed chunks (bounded RSS, reusable by later sessions
        and the service); without it — or with ``streaming=False`` as
        the last-resort fallback when the store misbehaves — the trace
        is materialized into the in-memory LRU as before.
        """
        program = self.program(key.workload, key.input_name, key.optimize)
        machine = Machine(program, trace_memory=True,
                          max_steps=self.max_steps, engine=self.engine)
        writer = None
        if streaming and self._trace_store is not None:
            try:
                writer = self._trace_store.writer(self._trace_key(key))
            except OSError:
                writer = None
        if writer is not None:
            try:
                result = machine.run_streaming(writer)
            except BaseException:
                writer.abort()
                raise
            try:
                writer.close(block_counts=result.block_counts,
                             steps=result.steps,
                             exit_code=result.exit_code,
                             output=result.output)
            except OSError:
                self._trace_store.delete(self._trace_key(key))
        else:
            result = machine.run()
            self._traces[key] = result.trace
            while len(self._traces) > _TRACE_LRU:
                self._traces.popitem(last=False)
        self._profiles[key] = BlockProfile.from_execution(program, result)
        self._steps[key] = result.steps

    def _absorb_trace_meta(self, key: RunKey) -> bool:
        """Adopt profile facts from a trace store hit (no execution)."""
        if self._trace_store is None:
            return False
        meta = self._trace_store.meta(self._trace_key(key))
        if not meta or not meta.get("block_counts"):
            return False
        try:
            block_counts = {int(a): int(c) for a, c
                            in meta["block_counts"].items()}
            steps = int(meta.get("steps", 0))
        except (AttributeError, TypeError, ValueError):
            return False
        program = self.program(key.workload, key.input_name, key.optimize)
        self._profiles[key] = BlockProfile.from_block_counts(
            program, block_counts)
        self._steps[key] = steps
        return True

    def _trace_source(self, key: RunKey) -> TraceSource:
        """The cheapest available access stream for one run.

        Preference order: the in-memory trace LRU, then a chunked
        stream from the on-disk trace store (absorbing the stored block
        profile on the way), then execution — which streams into the
        store when possible, so the next call is a store hit.
        """
        trace = self._traces.get(key)
        if trace is not None:
            self._traces.move_to_end(key)
            return trace
        if self._trace_store is not None:
            stream = self._trace_store.open(self._trace_key(key))
            if stream is not None:
                if key not in self._profiles:
                    self._absorb_trace_meta(key)
                return stream
        self._execute(key)
        trace = self._traces.get(key)
        if trace is not None:
            return trace
        stream = self._trace_store.open(self._trace_key(key))
        if stream is not None:
            return stream
        # The store swallowed the streamed trace (e.g. a failed close):
        # re-execute materialized so the caller always gets a source.
        self._execute(key, streaming=False)
        return self._traces[key]

    def profile(self, workload: str, input_name: str = "input1",
                optimize: bool = False) -> BlockProfile:
        key = RunKey(workload, input_name, optimize)
        if key not in self._profiles:
            loaded = self._load_disk(key, BASELINE_CONFIG,
                                     profile_only=True)
            if not loaded:
                loaded = self._absorb_trace_meta(key)
            if not loaded:
                self._execute(key)
        return self._profiles[key]

    def stats_multi(self, workload: str, input_name: str = "input1",
                    optimize: bool = False,
                    configs: Sequence[CacheConfig] = (BASELINE_CONFIG,)
                    ) -> list[CacheStats]:
        """Per-config stats, simulating every uncached config in ONE
        pass over the trace: LRU geometry sweeps go through the
        stack-distance engine (see :func:`simulate_sweep`), everything
        else through the single-pass multi-config replay."""
        key = RunKey(workload, input_name, optimize)
        missing: list[CacheConfig] = []
        for config in configs:
            if (key, config) in self._stats:
                continue
            if self.use_disk_cache and self._load_disk(key, config):
                continue
            if config not in missing:
                missing.append(config)
        if missing:
            source = self._trace_source(key)
            try:
                stats_list = simulate_sweep(source, missing,
                                            store=self._profile_store)
            except TraceStoreCorrupt:
                # A stored trace failed to decode mid-replay: drop the
                # entry and re-execute materialized (guaranteed to
                # produce a source even if the disk is misbehaving).
                self._trace_store.delete(self._trace_key(key))
                self._execute(key, streaming=False)
                stats_list = simulate_sweep(self._traces[key], missing,
                                            store=self._profile_store)
            for config, stats in zip(missing, stats_list):
                self._stats[(key, config)] = stats
                if self.use_disk_cache:
                    self._store_disk(key, config, stats)
        return [self._stats[(key, config)] for config in configs]

    def stats(self, workload: str, input_name: str = "input1",
              optimize: bool = False,
              cache_config: CacheConfig = BASELINE_CONFIG) -> CacheStats:
        return self.stats_multi(workload, input_name, optimize,
                                (cache_config,))[0]

    # -- scenario families (TLB, PCAX, redundancy) --------------------
    def _over_trace(self, key: RunKey, compute):
        """Run ``compute(source)`` with the corrupt-store fallback
        stats_multi uses: a stored trace that fails to decode
        mid-stream is dropped and the workload re-executed
        materialized."""
        source = self._trace_source(key)
        try:
            return compute(source)
        except TraceStoreCorrupt:
            self._trace_store.delete(self._trace_key(key))
            self._execute(key, streaming=False)
            return compute(self._traces[key])

    def tlb_stats(self, workload: str, input_name: str = "input1",
                  optimize: bool = False,
                  configs: Sequence["TlbConfig"] = ()
                  ) -> list["TlbStats"]:
        """Per-geometry dTLB stats through the shared sweep engine.

        Geometries with one page size cost at most one trace pass, and
        the per-PC distance histograms land in the session's profile
        store (keyed by trace digest and page size), so re-sweeps never
        touch the trace.
        """
        from repro.tlb import TlbConfig, simulate_tlb
        configs = list(configs) or [TlbConfig()]
        key = RunKey(workload, input_name, optimize)
        return self._over_trace(
            key, lambda source: simulate_tlb(
                source, configs, store=self._profile_store))

    def pcax(self, workload: str, input_name: str = "input1",
             optimize: bool = False, page_size: int = 4096,
             threshold: Optional[float] = None) -> "PcaxProfile":
        """PC-indexed translation predictability, one streaming pass."""
        from repro.tlb import DEFAULT_THRESHOLD, pcax_profile
        if threshold is None:
            threshold = DEFAULT_THRESHOLD
        key = RunKey(workload, input_name, optimize)
        memo = (key, page_size, threshold)
        if memo not in self._pcax:
            self._pcax[memo] = self._over_trace(
                key, lambda source: pcax_profile(
                    source, page_size=page_size, threshold=threshold))
        return self._pcax[memo]

    def redundancy(self, workload: str, input_name: str = "input1",
                   optimize: bool = False) -> "RedundancyStats":
        """Per-PC redundant-load counts, one streaming pass."""
        from repro.redundancy import analyze_redundancy
        key = RunKey(workload, input_name, optimize)
        if key not in self._redundancy:
            self._redundancy[key] = self._over_trace(
                key, analyze_redundancy)
        return self._redundancy[key]

    # -- analytic (trace-free) prediction -----------------------------
    def _program_digest(self, key: RunKey) -> str:
        """Content key for analytic profiles: the *program*, not the
        trace — predictions never see an execution."""
        text = "|".join(("analytic-1",
                         self.source(key.workload, key.input_name),
                         str(key.optimize)))
        return hashlib.sha1(text.encode()).hexdigest()

    def analytic_profile(self, workload: str, input_name: str = "input1",
                         optimize: bool = False, block_size: int = 32):
        """Predicted reuse profile, cached in the profile store's
        analytic keyspace (memory tier + ``an-`` disk entries)."""
        from repro.analytic import predict_profile
        key = RunKey(workload, input_name, optimize)
        digest = self._program_digest(key)
        profile = self._profile_store.get_analytic(digest, block_size)
        if profile is None:
            profile = predict_profile(
                self.program(workload, input_name, optimize),
                block_size=block_size)
            self._profile_store.put_analytic(digest, block_size, profile)
        return profile

    def predict_stats(self, workload: str, input_name: str = "input1",
                      optimize: bool = False,
                      configs: Sequence[CacheConfig] = (BASELINE_CONFIG,),
                      fallback: bool = True) -> "Prediction":
        """Per-config stats predicted without executing the workload.

        Every LRU geometry is answered from one analytic profile per
        block size.  When the program's static coverage is below the
        confidence threshold (pointer chasing, unresolved trip counts)
        — or a config's policy is not LRU — the whole request degrades
        to the measured :meth:`stats_multi` path (``fallback=True``,
        the default) or is answered anyway with ``analytic=True`` and
        the low coverage reported (``fallback=False``).
        """
        configs = list(configs)
        profiles: dict[int, object] = {}
        for config in configs:
            if config.block_size not in profiles:
                profiles[config.block_size] = self.analytic_profile(
                    workload, input_name, optimize, config.block_size)
        coverage = min((p.coverage for p in profiles.values()),
                       default=0.0)
        low: dict[int, tuple] = {}
        for p in profiles.values():
            low.update(p.low_confidence_pcs())
        supported = all(c.replacement == "lru" for c in configs)
        confident = supported and all(p.confident
                                      for p in profiles.values())
        if not confident and fallback:
            stats = self.stats_multi(workload, input_name, optimize,
                                     configs)
            return Prediction(stats=list(stats), analytic=False,
                              coverage=coverage, low_confidence_pcs=low)
        stats = [profiles[c.block_size].evaluate(c) for c in configs]
        return Prediction(stats=stats, analytic=True, coverage=coverage,
                          low_confidence_pcs=low)

    def measurement(self, workload: str, input_name: str = "input1",
                    optimize: bool = False,
                    cache_config: CacheConfig = BASELINE_CONFIG
                    ) -> Measurement:
        key = RunKey(workload, input_name, optimize)
        stats = self.stats(workload, input_name, optimize, cache_config)
        profile = self.profile(workload, input_name, optimize)
        return Measurement(
            key=key,
            cache_config=cache_config,
            program=self.program(workload, input_name, optimize),
            load_infos=self.load_infos(workload, input_name, optimize),
            profile=profile,
            load_misses=dict(stats.load_misses),
            load_exec=profile.load_exec_counts(),
            steps=self._steps.get(key, profile.total_cycles),
        )

    # -- disk cache ------------------------------------------------------
    def _digest(self, key: RunKey, config: CacheConfig) -> str:
        # The execution engine is deliberately NOT part of the digest:
        # both engines are bit-identical (same trace, same profile), so
        # entries warmed under either engine are interchangeable.
        text = "|".join((
            str(_SCHEMA_VERSION),
            self.source(key.workload, key.input_name),
            str(key.optimize),
            config.describe(),
            str(self.max_steps),
        ))
        return hashlib.sha1(text.encode()).hexdigest()

    def _disk_path(self, key: RunKey, config: CacheConfig) -> Path:
        safe = key.workload.replace(".", "_")
        return self.cache_dir / f"{safe}-{self._digest(key, config)}.json"

    def _payload(self, key: RunKey,
                 stats: CacheStats) -> Optional[dict]:
        """The JSON-able cache entry for one (run, config) pair."""
        profile = self._profiles.get(key)
        if profile is None:
            return None
        return {
            "version": _SCHEMA_VERSION,
            "steps": self._steps.get(key, 0),
            "load_misses": {str(a): m for a, m in
                            stats.load_misses.items()},
            "load_accesses": {str(a): m for a, m in
                              stats.load_accesses.items()},
            # Store and prefetch columns round-trip per PC (schema 4):
            # earlier schemas persisted only their sums and absorbed
            # neither, so a disk-warm session silently lost store
            # misses — Table 2 rendered differently warm vs. cold.
            "store_misses": {str(a): m for a, m in
                             stats.store_misses.items()},
            "store_accesses": {str(a): m for a, m in
                               stats.store_accesses.items()},
            "prefetch_ops": stats.prefetch_ops,
            "prefetch_fills": stats.prefetch_fills,
            "block_counts": {str(a): c for a, c in
                             profile.block_counts.items()},
            "block_sizes": {str(a): s for a, s in
                            profile.block_sizes.items()},
        }

    def _store_disk(self, key: RunKey, config: CacheConfig,
                    stats: CacheStats) -> None:
        payload = self._payload(key, stats)
        if payload is None:
            return
        atomic_write_json(self._disk_path(key, config), payload)

    def _absorb(self, key: RunKey, config: CacheConfig, payload: dict,
                profile_only: bool = False) -> bool:
        """Merge one cache entry into the in-memory caches.

        Tolerates corrupt or truncated payloads (wrong version, missing
        keys, malformed values) by reporting failure — the caller then
        re-simulates instead of raising.
        """
        try:
            if payload.get("version") != _SCHEMA_VERSION:
                return False
            block_counts = {int(a): c for a, c in
                            payload["block_counts"].items()}
            block_sizes = {int(a): s for a, s in
                           payload["block_sizes"].items()}
            steps = int(payload.get("steps", 0))
            if not profile_only:
                load_accesses = {int(a): m for a, m in
                                 payload["load_accesses"].items()}
                load_misses = {int(a): m for a, m in
                               payload["load_misses"].items()}
                store_accesses = {int(a): m for a, m in
                                  payload["store_accesses"].items()}
                store_misses = {int(a): m for a, m in
                                payload["store_misses"].items()}
                prefetch_ops = int(payload["prefetch_ops"])
                prefetch_fills = int(payload["prefetch_fills"])
        except (AttributeError, KeyError, TypeError, ValueError):
            return False
        program = self.program(key.workload, key.input_name, key.optimize)
        self._profiles[key] = BlockProfile(
            program=program,
            block_counts=block_counts,
            block_sizes=block_sizes,
        )
        self._steps[key] = steps
        if profile_only:
            return True
        self._stats[(key, config)] = CacheStats(
            config=config,
            load_accesses=load_accesses,
            load_misses=load_misses,
            store_accesses=store_accesses,
            store_misses=store_misses,
            prefetch_ops=prefetch_ops,
            prefetch_fills=prefetch_fills,
        )
        return True

    def _load_disk(self, key: RunKey, config: CacheConfig,
                   profile_only: bool = False) -> bool:
        if not self.use_disk_cache:
            return False
        path = self._disk_path(key, config)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return False
        return self._absorb(key, config, payload,
                            profile_only=profile_only)

    # -- the warm stage ----------------------------------------------
    def _is_warm(self, key: RunKey, config: CacheConfig) -> bool:
        if (key, config) in self._stats:
            return True
        return self.use_disk_cache \
            and self._disk_path(key, config).exists()

    def warm(self, runs: Iterable[WarmRun],
             configs: Sequence[CacheConfig] = (BASELINE_CONFIG,),
             jobs: Optional[int] = None) -> "WarmReport":
        """Execute + cache-simulate ``runs`` ahead of time, in parallel.

        Each run is a :class:`RunKey`, a ``(workload, input, optimize)``
        triple (simulated under ``configs``), or the same triple plus an
        explicit config sequence.  Independent runs fan out across a
        ``ProcessPoolExecutor`` (``jobs`` defaults to ``$REPRO_JOBS``,
        then the CPU count); every run replays its trace once for all
        of its configs.  Results merge through the content-hashed disk
        cache and the in-memory caches, so subsequent ``stats`` /
        ``measurement`` calls are cache hits.
        """
        start = time.perf_counter()
        plan: list[tuple[RunKey, tuple[CacheConfig, ...]]] = []
        for item in runs:
            if isinstance(item, RunKey):
                plan.append((item, tuple(configs)))
                continue
            item = tuple(item)
            if len(item) == 4:
                plan.append((RunKey(*item[:3]), tuple(item[3])))
            else:
                plan.append((RunKey(*item), tuple(configs)))
        pending: list[tuple[RunKey, tuple[CacheConfig, ...]]] = []
        cached = 0
        for key, run_configs in plan:
            missing = tuple(c for c in run_configs
                            if not self._is_warm(key, c))
            if missing:
                pending.append((key, missing))
            else:
                cached += 1
        jobs = max(1, min(_resolve_jobs(jobs), len(pending)))
        if jobs > 1:
            tasks = [(self.scale, self.max_steps, self.use_disk_cache,
                      str(self.cache_dir), self.engine,
                      (key.workload, key.input_name, key.optimize),
                      run_configs)
                     for key, run_configs in pending]
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                for (key, run_configs), payloads in zip(
                        pending, pool.map(_warm_worker, tasks)):
                    for config, payload in zip(run_configs, payloads):
                        self._absorb(key, config, payload)
        else:
            for key, run_configs in pending:
                self.stats_multi(key.workload, key.input_name,
                                 key.optimize, run_configs)
        return WarmReport(
            runs=len(plan),
            simulated=len(pending),
            cached=cached,
            jobs=jobs,
            elapsed=time.perf_counter() - start,
        )


@dataclass
class Prediction:
    """Result of :meth:`Session.predict_stats`."""

    stats: list[CacheStats]
    analytic: bool                 # False: served by the measured sweep
    coverage: float                # access-weighted HIGH-confidence share
    low_confidence_pcs: dict[int, tuple]


@dataclass(frozen=True)
class WarmReport:
    """Summary of one :meth:`Session.warm` invocation."""

    runs: int          # work items in the plan
    simulated: int     # items that needed execution/simulation
    cached: int        # items fully satisfied by existing caches
    jobs: int          # worker processes actually used
    elapsed: float     # wall-clock seconds

    def describe(self) -> str:
        return (f"{self.simulated} run(s) simulated, "
                f"{self.cached} already cached, "
                f"{self.jobs} job(s), {self.elapsed:.1f}s")


def _warm_worker(task: tuple) -> list[Optional[dict]]:
    """Executed in a worker process: one run, all of its configs.

    Builds a private :class:`Session` (sharing the on-disk cache
    directory), runs the pipeline through :meth:`Session.stats_multi`
    — one trace replay for all configs — and returns the JSON-able
    cache payloads so the parent can merge them without re-reading
    the disk.
    """
    (scale, max_steps, use_disk_cache, cache_dir, engine,
     key_tuple, configs) = task
    session = Session(scale=scale, cache_dir=Path(cache_dir),
                      use_disk_cache=use_disk_cache, max_steps=max_steps,
                      engine=engine)
    key = RunKey(*key_tuple)
    stats_list = session.stats_multi(key.workload, key.input_name,
                                     key.optimize, configs)
    return [session._payload(key, stats) for stats in stats_list]


def standard_warm_plan() -> list[tuple[str, str, bool, tuple]]:
    """Every (run, cache-config) combination the table suite consumes.

    Derived from the table modules' declarative ``SPEC`` grids (see
    :mod:`repro.experiments.grid`): all eighteen workloads at the
    baseline and training caches (unoptimized, input 1), the training
    set on its second input, and the training set optimized under the
    associativity and size sweeps (which include Table 13's 16KB
    cache).
    """
    # Imported here: the experiments package imports this module.
    from repro.experiments.grid import warm_plan
    return warm_plan()
