"""End-to-end experiment pipeline.

A :class:`Session` memoizes the expensive stages so the fourteen table
experiments can share work:

* **compile** — (workload, input, optimize) -> Program (cheap, memoized);
* **analyze** — static address patterns per program (cheap, memoized);
* **execute** — instruction-level run producing the block profile and the
  memory trace (expensive; traces are held in a small LRU because they
  dominate memory);
* **cache-simulate** — trace x cache-config -> per-load miss counts
  (moderately expensive; results are also persisted to a JSON disk cache
  keyed by a content hash, so re-running a bench suite skips simulation
  entirely).
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.asm.program import Program
from repro.cache.config import BASELINE_CONFIG, CacheConfig
from repro.cache.model import CacheStats, simulate_trace
from repro.compiler.driver import compile_source
from repro.machine.simulator import Machine
from repro.patterns.builder import LoadInfo, build_load_infos
from repro.profiling.profile import BlockProfile
from repro.workloads.base import Workload
from repro.workloads.registry import get as get_workload

_SCHEMA_VERSION = 3
_TRACE_LRU = 2


@dataclass(frozen=True)
class RunKey:
    workload: str
    input_name: str
    optimize: bool


@dataclass
class Measurement:
    """Everything the experiments need for one (run, cache) pair."""

    key: RunKey
    cache_config: CacheConfig
    program: Program
    load_infos: dict[int, LoadInfo]
    profile: BlockProfile
    load_misses: dict[int, int]
    load_exec: dict[int, int]
    steps: int

    @property
    def num_loads(self) -> int:
        return self.program.num_loads()

    @property
    def total_load_misses(self) -> int:
        return sum(self.load_misses.values())


class Session:
    """Shared pipeline state for a set of experiments."""

    def __init__(self, scale: float = 1.0,
                 cache_dir: Optional[Path] = None,
                 use_disk_cache: bool = True,
                 max_steps: int = 300_000_000):
        self.scale = scale
        self.max_steps = max_steps
        self.use_disk_cache = use_disk_cache
        self.cache_dir = Path(cache_dir) if cache_dir is not None \
            else Path(__file__).resolve().parents[3] / ".repro_cache"
        self._sources: dict[tuple[str, str], str] = {}
        self._programs: dict[RunKey, Program] = {}
        self._analyses: dict[RunKey, dict[int, LoadInfo]] = {}
        self._profiles: dict[RunKey, BlockProfile] = {}
        self._steps: dict[RunKey, int] = {}
        self._traces: OrderedDict = OrderedDict()
        self._stats: dict[tuple[RunKey, CacheConfig], CacheStats] = {}

    # -- stages ------------------------------------------------------
    def source(self, workload: str, input_name: str = "input1") -> str:
        key = (workload, input_name)
        if key not in self._sources:
            definition: Workload = get_workload(workload)
            self._sources[key] = definition.generate(input_name,
                                                     scale=self.scale)
        return self._sources[key]

    def program(self, workload: str, input_name: str = "input1",
                optimize: bool = False) -> Program:
        key = RunKey(workload, input_name, optimize)
        if key not in self._programs:
            self._programs[key] = compile_source(
                self.source(workload, input_name), optimize=optimize)
        return self._programs[key]

    def load_infos(self, workload: str, input_name: str = "input1",
                   optimize: bool = False) -> dict[int, LoadInfo]:
        key = RunKey(workload, input_name, optimize)
        if key not in self._analyses:
            self._analyses[key] = build_load_infos(
                self.program(workload, input_name, optimize))
        return self._analyses[key]

    def _execute(self, key: RunKey) -> None:
        program = self.program(key.workload, key.input_name, key.optimize)
        machine = Machine(program, trace_memory=True,
                          max_steps=self.max_steps)
        result = machine.run()
        self._profiles[key] = BlockProfile.from_execution(program, result)
        self._steps[key] = result.steps
        self._traces[key] = result.trace
        while len(self._traces) > _TRACE_LRU:
            self._traces.popitem(last=False)

    def profile(self, workload: str, input_name: str = "input1",
                optimize: bool = False) -> BlockProfile:
        key = RunKey(workload, input_name, optimize)
        if key not in self._profiles:
            loaded = self._load_disk(key, BASELINE_CONFIG,
                                     profile_only=True)
            if not loaded:
                self._execute(key)
        return self._profiles[key]

    def stats(self, workload: str, input_name: str = "input1",
              optimize: bool = False,
              cache_config: CacheConfig = BASELINE_CONFIG) -> CacheStats:
        key = RunKey(workload, input_name, optimize)
        stats_key = (key, cache_config)
        if stats_key in self._stats:
            return self._stats[stats_key]
        if self.use_disk_cache and self._load_disk(key, cache_config):
            return self._stats[stats_key]
        if key not in self._traces:
            self._execute(key)
        self._traces.move_to_end(key)
        stats = simulate_trace(self._traces[key], cache_config)
        self._stats[stats_key] = stats
        if self.use_disk_cache:
            self._store_disk(key, cache_config, stats)
        return stats

    def measurement(self, workload: str, input_name: str = "input1",
                    optimize: bool = False,
                    cache_config: CacheConfig = BASELINE_CONFIG
                    ) -> Measurement:
        key = RunKey(workload, input_name, optimize)
        stats = self.stats(workload, input_name, optimize, cache_config)
        profile = self.profile(workload, input_name, optimize)
        return Measurement(
            key=key,
            cache_config=cache_config,
            program=self.program(workload, input_name, optimize),
            load_infos=self.load_infos(workload, input_name, optimize),
            profile=profile,
            load_misses=dict(stats.load_misses),
            load_exec=profile.load_exec_counts(),
            steps=self._steps.get(key, profile.total_cycles),
        )

    # -- disk cache ------------------------------------------------------
    def _digest(self, key: RunKey, config: CacheConfig) -> str:
        text = "|".join((
            str(_SCHEMA_VERSION),
            self.source(key.workload, key.input_name),
            str(key.optimize),
            config.describe(),
            str(self.max_steps),
        ))
        return hashlib.sha1(text.encode()).hexdigest()

    def _disk_path(self, key: RunKey, config: CacheConfig) -> Path:
        safe = key.workload.replace(".", "_")
        return self.cache_dir / f"{safe}-{self._digest(key, config)}.json"

    def _store_disk(self, key: RunKey, config: CacheConfig,
                    stats: CacheStats) -> None:
        profile = self._profiles.get(key)
        if profile is None:
            return
        payload = {
            "version": _SCHEMA_VERSION,
            "steps": self._steps.get(key, 0),
            "load_misses": {str(a): m for a, m in
                            stats.load_misses.items()},
            "load_accesses": {str(a): m for a, m in
                              stats.load_accesses.items()},
            "store_misses": sum(stats.store_misses.values()),
            "store_accesses": sum(stats.store_accesses.values()),
            "block_counts": {str(a): c for a, c in
                             profile.block_counts.items()},
            "block_sizes": {str(a): s for a, s in
                            profile.block_sizes.items()},
        }
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            self._disk_path(key, config).write_text(json.dumps(payload))
        except OSError:
            pass  # caching is best-effort

    def _load_disk(self, key: RunKey, config: CacheConfig,
                   profile_only: bool = False) -> bool:
        if not self.use_disk_cache:
            return False
        path = self._disk_path(key, config)
        if not path.exists():
            return False
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return False
        if payload.get("version") != _SCHEMA_VERSION:
            return False
        program = self.program(key.workload, key.input_name, key.optimize)
        self._profiles[key] = BlockProfile(
            program=program,
            block_counts={int(a): c for a, c in
                          payload["block_counts"].items()},
            block_sizes={int(a): s for a, s in
                         payload["block_sizes"].items()},
        )
        self._steps[key] = payload.get("steps", 0)
        if profile_only:
            return True
        stats = CacheStats(
            config=config,
            load_accesses={int(a): m for a, m in
                           payload["load_accesses"].items()},
            load_misses={int(a): m for a, m in
                         payload["load_misses"].items()},
        )
        self._stats[(key, config)] = stats
        return True
