"""Classification-quality analysis beyond the paper's pi/rho.

The paper reports pi (set size), rho (miss coverage) and xi (dynamic
false-positive impact).  For library users tuning weights or thresholds
it is often more natural to view delinquency identification as a binary
classification problem: ground truth = the ideal Delta reaching a target
coverage (the loads one *should* flag), prediction = the heuristic's
Delta.  This module provides the confusion matrix and the standard
derived scores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.metrics.measures import ideal_delta


@dataclass(frozen=True)
class ConfusionMatrix:
    """Static-load classification outcome against a ground-truth set."""

    true_positive: int
    false_positive: int
    false_negative: int
    true_negative: int

    @property
    def total(self) -> int:
        return (self.true_positive + self.false_positive
                + self.false_negative + self.true_negative)

    @property
    def precision(self) -> float:
        denominator = self.true_positive + self.false_positive
        return self.true_positive / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        denominator = self.true_positive + self.false_negative
        return self.true_positive / denominator if denominator else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def accuracy(self) -> float:
        return (self.true_positive + self.true_negative) / self.total \
            if self.total else 0.0

    def describe(self) -> str:
        return (f"TP={self.true_positive} FP={self.false_positive} "
                f"FN={self.false_negative} TN={self.true_negative}  "
                f"precision={self.precision:.2f} "
                f"recall={self.recall:.2f} f1={self.f1:.2f}")


def confusion(delta: set[int], truth: set[int],
              all_loads: set[int]) -> ConfusionMatrix:
    """Confusion matrix of predicted ``delta`` against ``truth`` over
    the static-load universe ``all_loads``."""
    delta = delta & all_loads
    truth = truth & all_loads
    tp = len(delta & truth)
    fp = len(delta - truth)
    fn = len(truth - delta)
    tn = len(all_loads) - tp - fp - fn
    return ConfusionMatrix(tp, fp, fn, tn)


def against_ideal(delta: set[int],
                  load_misses: Mapping[int, int],
                  all_loads: set[int],
                  target_rho: float = 0.90) -> ConfusionMatrix:
    """Confusion matrix against the greedy ideal set at ``target_rho``
    coverage — the ground truth the paper's Table 1 constructs."""
    truth = ideal_delta(load_misses, target_rho)
    return confusion(delta, truth, all_loads)


def miss_weighted_recall(delta: set[int],
                         load_misses: Mapping[int, int]) -> float:
    """Recall weighted by miss counts — identical to the paper's rho,
    provided for symmetry with the unweighted scores."""
    total = sum(load_misses.values())
    if total == 0:
        return 0.0
    return sum(load_misses.get(a, 0) for a in delta) / total
