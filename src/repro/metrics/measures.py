"""Evaluation measures from Section 8 of the paper.

* ``pi`` — precision measure: |Delta| / |Lambda| (share of static loads
  flagged as possibly delinquent; lower is sharper).
* ``rho`` — coverage: fraction of all load misses caused by Delta members.
* ideal Delta — the smallest load set reaching a target coverage, found by
  greedily taking loads in descending miss count (Table 1, column 3).
* ``xi`` — dynamic false-positive impact: the fraction of dynamic load
  executions attributable to loads flagged by the heuristic but absent
  from the ideal set (Table 11, column 4).
"""

from __future__ import annotations

from typing import Iterable, Mapping


def precision(delta: set[int], num_loads: int) -> float:
    """pi(H) = |Delta| / |Lambda|."""
    if num_loads == 0:
        return 0.0
    return len(delta) / num_loads


def coverage(delta: Iterable[int], load_misses: Mapping[int, int]) -> float:
    """rho(H) = M_Delta / M over load misses."""
    total = sum(load_misses.values())
    if total == 0:
        return 0.0
    covered = sum(load_misses.get(address, 0) for address in delta)
    return covered / total


def ideal_delta(load_misses: Mapping[int, int],
                target_rho: float) -> set[int]:
    """Smallest set of loads covering ``target_rho`` of all misses.

    Loads are taken greedily in descending miss order — the paper's
    construction for the 'Ideal' column of Table 1.
    """
    total = sum(load_misses.values())
    if total == 0:
        return set()
    chosen: set[int] = set()
    covered = 0
    for address, misses in sorted(load_misses.items(),
                                  key=lambda item: (-item[1], item[0])):
        if misses == 0 or covered >= target_rho * total:
            break
        chosen.add(address)
        covered += misses
    return chosen


def xi(delta: set[int], ideal: set[int],
       exec_counts: Mapping[int, int]) -> float:
    """Dynamic impact of false positives.

    The strict definition of Section 8.5: a false positive is a load in
    the heuristic's Delta but not in the ideal Delta; xi is the share of
    *dynamic* load executions those false positives account for.
    """
    total = sum(exec_counts.values())
    if total == 0:
        return 0.0
    mislabeled = delta - ideal
    dynamic = sum(exec_counts.get(address, 0) for address in mislabeled)
    return dynamic / total


def as_percent(value: float, digits: int = 0) -> str:
    """Format a ratio the way the paper prints it."""
    return f"{100.0 * value:.{digits}f}%"


def dynamic_load_share(delta: Iterable[int], trace) -> float:
    """Fraction of *dynamic* load executions issued by loads in ``delta``.

    A trace-measured companion to :func:`xi`: instead of profile-derived
    execution counts it tallies the memory trace directly, using the
    load-column fast path
    (:meth:`repro.machine.trace.MemoryTrace.load_pcs`) so the pass over
    a multi-million-access trace stays at C speed.
    """
    pcs = trace.load_pcs()
    if not pcs:
        return 0.0
    members = set(delta)
    return sum(pc in members for pc in pcs) / len(pcs)
