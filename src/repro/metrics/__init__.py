"""Evaluation measures and validation checks."""

from repro.metrics.measures import (as_percent, coverage,
                                    dynamic_load_share, ideal_delta,
                                    precision, xi)

__all__ = ["as_percent", "coverage", "dynamic_load_share",
           "ideal_delta", "precision", "xi"]
