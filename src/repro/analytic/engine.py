"""Analytic profile: predicted histograms -> CacheStats for any geometry.

The dynamic sweep engine answers a geometry from measured per-set stack
distances; this engine answers it from *predicted* fully-associative
reuse distances.  The bridge is the classic set-mapping argument: a
reuse with ``d`` distinct intervening blocks misses an ``S``-set,
``A``-way LRU cache when at least ``A`` of those blocks map to the same
set as the reused one — ``Binomial(d, 1/S)``, approximated by
``Poisson(d/S)`` and exact at ``S == 1`` (where it degenerates to
``d >= A``, the same suffix-threshold rule ``GroupProfile`` applies to
measured histograms — see ``tests/test_analytic.py`` for the
equivalence check).

An :class:`AnalyticProfile` is geometry-free: one prediction per block
size serves every LRU ``(size, assoc)`` pair, with zero machine
execution.  Serialization round-trips through JSON for the analytic
keyspace of the stack-distance :class:`~repro.cache.stackdist.
ProfileStore`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.analytic.loopmodel import ProgramModel
from repro.analytic.reuse import HIGH, LOW, MEDIUM, OpPrediction, predict_ops
from repro.cache.config import CacheConfig
from repro.cache.model import CacheStats

_PAYLOAD_SCHEMA = 1

#: Program-level confidence below which callers should fall back to the
#: measured sweep path.
CONFIDENCE_THRESHOLD = 0.8


def _miss_probability(distance: int, num_sets: int, assoc: int) -> float:
    """P[reuse at fully-associative distance d misses an (S, A) cache]."""
    if distance < assoc:
        # Fewer than A distinct intervening blocks can never fill the
        # reused block's set, whatever the mapping: guaranteed hit.
        return 0.0
    if num_sets <= 1:
        return 1.0
    lam = distance / num_sets
    if lam <= 0:
        return 0.0
    if lam > 100.0:
        # Normal approximation with continuity correction; avoids
        # underflow of exp(-lam) for very long distances.
        z = (lam - assoc + 0.5) / math.sqrt(lam)
        return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))
    # P[Poisson(lam) >= A] = 1 - sum_{k<A} pmf(k)
    pmf = math.exp(-lam)
    cdf = pmf
    for k in range(1, assoc):
        pmf *= lam / k
        cdf += pmf
    return max(1.0 - cdf, 0.0)


@dataclass
class AnalyticProfile:
    """Predicted reuse histograms for one (program, block_size)."""

    block_size: int
    loads: dict[int, OpPrediction] = field(default_factory=dict)
    stores: dict[int, OpPrediction] = field(default_factory=dict)

    # -- confidence ----------------------------------------------------
    @property
    def coverage(self) -> float:
        """Access-weighted fraction of predictions with HIGH confidence."""
        total = conf = 0.0
        for pred in list(self.loads.values()) + list(self.stores.values()):
            total += pred.accesses
            if pred.confidence == HIGH:
                conf += pred.accesses
        return conf / total if total else 0.0

    @property
    def confident(self) -> bool:
        return self.coverage >= CONFIDENCE_THRESHOLD

    def low_confidence_pcs(self) -> dict[int, tuple[str, ...]]:
        out: dict[int, tuple[str, ...]] = {}
        for group in (self.loads, self.stores):
            for pc, pred in group.items():
                if pred.confidence == LOW:
                    out[pc] = pred.reasons
        return out

    def confidence_of(self, pc: int) -> str:
        pred = self.loads.get(pc) or self.stores.get(pc)
        return pred.confidence if pred is not None else LOW

    # -- evaluation ----------------------------------------------------
    def evaluate(self, config: CacheConfig) -> CacheStats:
        """Predicted CacheStats for any LRU geometry, no execution."""
        if config.block_size != self.block_size:
            raise ValueError(
                f"profile is for block_size={self.block_size}, "
                f"asked for {config.block_size}")
        num_sets, assoc = config.num_sets, config.assoc
        capacity = num_sets * assoc
        cache: dict[int, float] = {}

        def prob(distance: int) -> float:
            if distance not in cache:
                cache[distance] = _miss_probability(distance, num_sets,
                                                    assoc)
            return cache[distance]

        def misses_of(group: dict[int, OpPrediction]) -> dict[int, int]:
            out: dict[int, int] = {}
            for pc, pred in group.items():
                if pred.accesses <= 0:
                    continue
                m = pred.hist.compulsory
                for distance, count in pred.hist.bins.items():
                    m += count * prob(distance)
                for distance, count in pred.hist.dense.items():
                    # Fixed contiguous footprints spread uniformly over
                    # sets: the cache acts fully associative at S*A.  A
                    # sparse footprint (blocks `pitch` apart) lands on
                    # only S/gcd(pitch, S) sets, shrinking the
                    # effective capacity by that gcd.
                    conc = math.gcd(pred.hist.pitch.get(distance, 1),
                                    num_sets)
                    if distance * conc >= capacity:
                        m += count
                m = int(round(min(m, pred.accesses)))
                if m:
                    out[pc] = m
            return out

        def accesses_of(group: dict[int, OpPrediction]) -> dict[int, int]:
            return {pc: int(round(pred.accesses))
                    for pc, pred in group.items() if pred.accesses > 0}

        return CacheStats(
            config=config,
            load_accesses=accesses_of(self.loads),
            load_misses=misses_of(self.loads),
            store_accesses=accesses_of(self.stores),
            store_misses=misses_of(self.stores),
            prefetch_ops=0,
            prefetch_fills=0,
        )

    # -- serialization -------------------------------------------------
    def to_payload(self) -> dict:
        def dump(group: dict[int, OpPrediction]) -> dict:
            out = {}
            for pc, pred in group.items():
                out[str(pc)] = {
                    "accesses": pred.accesses,
                    "bins": {str(d): c for d, c in pred.hist.bins.items()},
                    "dense": {str(d): c
                              for d, c in pred.hist.dense.items()},
                    "pitch": {str(d): p
                              for d, p in pred.hist.pitch.items()},
                    "compulsory": pred.hist.compulsory,
                    "confidence": pred.confidence,
                    "reasons": list(pred.reasons),
                    "function": pred.function,
                    "exact": pred.exact,
                }
            return out

        return {
            "schema": _PAYLOAD_SCHEMA,
            "block_size": self.block_size,
            "loads": dump(self.loads),
            "stores": dump(self.stores),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "AnalyticProfile":
        from repro.analytic.reuse import Histogram

        if payload.get("schema") != _PAYLOAD_SCHEMA:
            raise ValueError("unknown analytic payload schema")

        def load(group: dict, is_load: bool) -> dict[int, OpPrediction]:
            out: dict[int, OpPrediction] = {}
            for pc_str, rec in group.items():
                hist = Histogram(
                    bins={int(d): float(c)
                          for d, c in rec["bins"].items()},
                    dense={int(d): float(c)
                           for d, c in rec.get("dense", {}).items()},
                    pitch={int(d): int(p)
                           for d, p in rec.get("pitch", {}).items()},
                    compulsory=float(rec["compulsory"]))
                out[int(pc_str)] = OpPrediction(
                    pc=int(pc_str), function=rec.get("function", "?"),
                    is_load=is_load, accesses=float(rec["accesses"]),
                    hist=hist, confidence=rec["confidence"],
                    reasons=tuple(rec.get("reasons", ())),
                    exact=bool(rec.get("exact", False)))
            return out

        return cls(block_size=int(payload["block_size"]),
                   loads=load(payload["loads"], True),
                   stores=load(payload["stores"], False))


def predict_profile(program, block_size: int = 32,
                    pmodel: Optional[ProgramModel] = None
                    ) -> AnalyticProfile:
    """Build the analytic profile of ``program`` for one block size."""
    preds, _pmodel = predict_ops(program, block_size, pmodel)
    profile = AnalyticProfile(block_size=block_size)
    for pred in preds:
        group = profile.loads if pred.is_load else profile.stores
        if pred.pc in group:
            # Merge duplicate sites defensively (should not happen).
            group[pred.pc].accesses += pred.accesses
        else:
            group[pred.pc] = pred
    return profile
