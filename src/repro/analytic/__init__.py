"""Analytic reuse-profile engine: per-PC miss prediction with no trace.

Composes the static layers (CFG loops + trip counts, address patterns +
slot strides, array footprints) into predicted per-PC reuse-distance
histograms, evaluated against any LRU geometry through the same
histogram-to-:class:`~repro.cache.model.CacheStats` contract the
dynamic stack-distance sweep uses — zero machine execution.

Entry points:

* :func:`predict_profile` — program -> :class:`AnalyticProfile`
* :meth:`AnalyticProfile.evaluate` — profile + config -> ``CacheStats``
* :attr:`AnalyticProfile.coverage` / ``confident`` — honesty: how much
  of the program the closed forms actually covered.
"""

from repro.analytic.engine import (CONFIDENCE_THRESHOLD, AnalyticProfile,
                                   predict_profile)
from repro.analytic.loopmodel import ProgramModel
from repro.analytic.reuse import HIGH, LOW, MEDIUM, Histogram, OpPrediction

__all__ = [
    "AnalyticProfile",
    "CONFIDENCE_THRESHOLD",
    "Histogram",
    "HIGH",
    "LOW",
    "MEDIUM",
    "OpPrediction",
    "ProgramModel",
    "predict_profile",
]
