"""Static loop/execution model: trip counts, nesting, execution counts.

This is the control-flow half of the analytic predictor.  For each
function it merges the natural loops of the CFG into a loop forest
(one node per header, nested by body containment), attaches the symbolic
trip counts and slot steps from :class:`~repro.patterns.recurrence.
SlotRecurrence`, and derives a static execution count for every basic
block.  A one-pass call-graph walk then scales each function by how many
times it is entered, so the model predicts *absolute* access counts for
every memory instruction — the quantity the reuse model multiplies its
per-iteration footprints by.

Counts carry an ``exact`` bit.  It is cleared whenever something had to
be estimated: an unresolvable trip count, a block that does not dominate
its loop latch (conditionally executed), or a recursive call cycle.  The
confidence reporting in :mod:`repro.analytic.engine` is built on these
bits — the predictor never silently upgrades a guess to a fact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.asm.program import STACK_TOP, Program
from repro.cfg.blocks import BlockMap
from repro.cfg.graph import FunctionCFG, Loop, build_function_cfgs
from repro.isa.instructions import branch_target
from repro.patterns.builder import PatternBuilder
from repro.patterns.recurrence import Slot, SlotRecurrence, TripCount

#: Iterations assumed for loops whose bound resolution fails.  Only used
#: for low-confidence estimates; exact workloads never hit it.
DEFAULT_TRIP = 8

#: Execution probability assumed for conditionally executed blocks.
COND_PROBABILITY = 0.5


@dataclass
class Count:
    """An execution count plus whether it is statically exact."""

    value: float
    exact: bool

    def times(self, other: "Count") -> "Count":
        return Count(self.value * other.value, self.exact and other.exact)


@dataclass
class LoopNode:
    """One merged natural loop inside the per-function forest."""

    header: int
    latch: int
    body: frozenset[int]
    trip: TripCount
    steps: dict[Slot, Optional[int]]
    parent: Optional["LoopNode"] = None
    children: list["LoopNode"] = field(default_factory=list)
    depth: int = 0

    @property
    def trips(self) -> Count:
        if self.trip.count is not None:
            return Count(float(self.trip.count), True)
        return Count(float(DEFAULT_TRIP), False)

    def step_of(self, slot: Slot) -> Optional[int]:
        return self.steps.get(slot)


class FunctionModel:
    """Loop forest + per-block execution counts for one function."""

    def __init__(self, cfg: FunctionCFG, builder: PatternBuilder):
        self.cfg = cfg
        self.name = cfg.name
        self.builder = builder
        self.slot_rec: SlotRecurrence = builder.slot_rec \
            or SlotRecurrence(cfg, builder.rd)
        self.loops: list[LoopNode] = self._build_forest()
        self._by_block: dict[int, Optional[LoopNode]] = {}
        self._dominators = cfg.dominators()
        self.block_counts: dict[int, Count] = {}
        self._compute_block_counts()

    # -- forest --------------------------------------------------------
    def _build_forest(self) -> list[LoopNode]:
        merged: dict[int, tuple[int, set[int]]] = {}
        for loop in self.cfg.natural_loops():
            latch, body = merged.get(loop.header, (loop.latch, set()))
            body.update(loop.body)
            merged[loop.header] = (latch, body)
        nodes = []
        for header, (latch, body) in merged.items():
            loop = Loop(header=header, latch=latch, body=frozenset(body))
            nodes.append(LoopNode(
                header=header, latch=latch, body=loop.body,
                trip=self.slot_rec.trip_count(loop),
                steps=self.slot_rec.slot_steps(loop)))
        # Nest: parent = smallest strictly containing body.
        nodes.sort(key=lambda n: len(n.body))
        for i, node in enumerate(nodes):
            for candidate in nodes[i + 1:]:
                if (node.header in candidate.body
                        and node.body < candidate.body):
                    node.parent = candidate
                    candidate.children.append(node)
                    break
        for node in nodes:
            depth, cur = 0, node.parent
            while cur is not None:
                depth, cur = depth + 1, cur.parent
            node.depth = depth
        return nodes

    def innermost_loop(self, leader: int) -> Optional[LoopNode]:
        """The innermost merged loop whose body contains ``leader``."""
        if leader not in self._by_block:
            best: Optional[LoopNode] = None
            for node in self.loops:
                if leader in node.body:
                    if best is None or len(node.body) < len(best.body):
                        best = node
            self._by_block[leader] = best
        return self._by_block[leader]

    def chain(self, leader: int) -> list[LoopNode]:
        """Enclosing loops of a block, innermost first."""
        out = []
        node = self.innermost_loop(leader)
        while node is not None:
            out.append(node)
            node = node.parent
        return out

    # -- block execution counts ---------------------------------------
    def _level_count(self, leader: int, node: LoopNode) -> Count:
        """Executions of ``leader`` per single entry of loop ``node``."""
        trips = node.trips
        if leader == node.header:
            # The header runs once more than the body (the exit check).
            return Count(trips.value + 1.0, trips.exact)
        if not self._dominates(leader, node.latch):
            return Count(max(trips.value * COND_PROBABILITY, 1.0), False)
        return trips

    def _dominates(self, leader: int, other: int) -> bool:
        doms = self._dominators.get(other)
        return doms is not None and leader in doms

    def _compute_block_counts(self) -> None:
        for leader in self.cfg.blocks:
            chain = self.chain(leader)
            count = Count(1.0, True)
            if chain:
                count = self._level_count(leader, chain[0])
                for inner, outer in zip(chain, chain[1:]):
                    # Entries of the inner loop per entry of the outer ==
                    # executions of the inner header block inside `outer`.
                    count = count.times(
                        self._level_count(inner.header, outer))
            if not self._reaches_entry(leader, chain):
                count = Count(count.value, False)
            self.block_counts[leader] = count

    def _reaches_entry(self, leader: int, chain: list[LoopNode]) -> bool:
        """Whether the outermost enclosing structure is unconditionally
        reached from the function entry (straight-line dominance)."""
        top = chain[-1].header if chain else leader
        doms = self._dominators.get(top, frozenset())
        # Conservative: the structure is unconditional if every dominator
        # chain from entry reaches it; non-dominated blocks are branches.
        exits = [b for b in self.cfg.blocks
                 if not self.cfg.successors(b)]
        for ex in exits:
            ex_doms = self._dominators.get(ex)
            if ex_doms is not None and top not in ex_doms:
                return False
        return True


class ProgramModel:
    """Whole-program static execution model."""

    def __init__(self, program: Program,
                 block_map: Optional[BlockMap] = None):
        self.program = program
        self.block_map = block_map or BlockMap(program)
        self.cfgs = build_function_cfgs(program, self.block_map)
        self.functions: dict[str, FunctionModel] = {}
        self.builders: dict[str, PatternBuilder] = {}
        for name, cfg in self.cfgs.items():
            builder = PatternBuilder(cfg)
            self.builders[name] = builder
            self.functions[name] = FunctionModel(cfg, builder)
        self.entry_counts: dict[str, Count] = {}
        self._compute_entry_counts()

    # -- static frame/base geometry ------------------------------------
    def sp_value(self, fn_name: str) -> Optional[int]:
        """Absolute $sp inside ``fn_name`` (post-prologue), when known.

        Execution starts with ``$sp == STACK_TOP``; each frame subtracts
        a statically recorded size, so $sp is exact for every function
        whose call chains all bottom out at the same depth.  Functions
        reachable at multiple stack depths (or through recursion) stay
        symbolic.
        """
        if not hasattr(self, "_sp_values"):
            self._sp_values = self._compute_sp_values()
        return self._sp_values.get(fn_name)

    def _compute_sp_values(self) -> dict[str, int]:
        funcs = self.program.symtab.functions
        entry_info = self.program.symtab.function_containing(
            self.program.entry)
        values: dict[str, Optional[int]] = {}
        if entry_info is not None:
            values[entry_info.name] = STACK_TOP - entry_info.frame_size
        else:
            target = self._entry_target()
            info = funcs.get(target) if target else None
            if info is not None:
                values[target] = STACK_TOP - info.frame_size
        sites = self._call_sites()
        for _ in range(len(self.functions) + 1):
            changed = False
            for name, callers in sites.items():
                info = funcs.get(name)
                if info is None:
                    continue
                candidates = set()
                resolved = True
                for caller, _leader in callers:
                    if caller not in values or values[caller] is None:
                        resolved = False
                        break
                    candidates.add(values[caller] - info.frame_size)
                if resolved and len(candidates) == 1:
                    new = candidates.pop()
                elif resolved:
                    new = None
                else:
                    continue
                if values.get(name, "unset") != new:
                    values[name] = new
                    changed = True
            if not changed:
                break
        return {n: v for n, v in values.items() if v is not None}

    def _entry_target(self) -> Optional[str]:
        """Function the runtime stub transfers into (usually ``main``)."""
        entry_fn = self.program.symtab.function_containing(
            self.program.entry)
        if entry_fn is not None:
            return entry_fn.name
        # Entry lies outside any declared function (a bare `__start`
        # stub): its first call is the real program entry.
        idx = self.program.index_of(self.program.entry)
        for instr in self.program.instructions[idx:idx + 8]:
            if instr.is_call:
                target = branch_target(instr)
                if target is None:
                    return None
                info = self.program.symtab.function_containing(target)
                return info.name if info is not None else None
        return None

    # -- call graph ----------------------------------------------------
    def _call_sites(self) -> dict[str, list[tuple[str, int]]]:
        """callee -> [(caller, call-site block leader)]."""
        sites: dict[str, list[tuple[str, int]]] = {}
        for name, cfg in self.cfgs.items():
            for block in cfg:
                for offset, instr in enumerate(block.instructions):
                    if not instr.is_call:
                        continue
                    target = branch_target(instr)
                    if target is None:
                        continue
                    callee = self.program.symtab.function_containing(target)
                    if callee is None or target != callee.start:
                        continue
                    sites.setdefault(callee.name, []).append(
                        (name, block.start))
        return sites

    def _compute_entry_counts(self) -> None:
        target = self._entry_target()
        sites = self._call_sites()
        counts: dict[str, Count] = {}
        if target in self.functions:
            counts[target] = Count(1.0, True)
        # Propagate along the call graph; cycles (recursion) poison
        # exactness and fall back to a single-entry estimate.
        order = self._topo_order(sites)
        recursive = self._cyclic_functions(sites)
        for name in order:
            if name == target:
                continue
            total, exact = 0.0, True
            for caller, leader in sites.get(name, ()):
                ccount = counts.get(caller)
                if ccount is None:
                    continue
                bcount = self.functions[caller].block_counts.get(
                    leader, Count(1.0, False))
                total += ccount.value * bcount.value
                exact = exact and ccount.exact and bcount.exact
            if name in recursive:
                counts[name] = Count(max(total, 1.0), False)
            elif total > 0:
                counts[name] = Count(total, exact)
            else:
                counts[name] = Count(0.0, True)   # never called
        for name in self.functions:
            counts.setdefault(name, Count(0.0, True))
        self.entry_counts = counts

    def _topo_order(self, sites: dict[str, list[tuple[str, int]]]):
        # Kahn over caller -> callee edges; cycle members appended last.
        callers: dict[str, set[str]] = {
            name: {c for c, _ in sites.get(name, ())}
            for name in self.functions}
        order, placed = [], set()
        changed = True
        while changed:
            changed = False
            for name in self.functions:
                if name in placed:
                    continue
                if callers[name] <= placed | {name}:
                    order.append(name)
                    placed.add(name)
                    changed = True
        for name in self.functions:
            if name not in placed:
                order.append(name)
        return order

    def _cyclic_functions(self, sites) -> set[str]:
        edges: dict[str, set[str]] = {}
        for callee, callers in sites.items():
            for caller, _ in callers:
                edges.setdefault(caller, set()).add(callee)
        cyclic: set[str] = set()
        for start in edges:
            stack, seen = list(edges.get(start, ())), set()
            while stack:
                node = stack.pop()
                if node == start:
                    cyclic.add(start)
                    break
                if node in seen:
                    continue
                seen.add(node)
                stack.extend(edges.get(node, ()))
        return cyclic

    # -- absolute counts -----------------------------------------------
    def access_count(self, fn_name: str, leader: int) -> Count:
        entry = self.entry_counts.get(fn_name, Count(0.0, True))
        block = self.functions[fn_name].block_counts.get(
            leader, Count(1.0, False))
        return entry.times(block)
