"""Address models: lowering AP patterns to linear forms over loop IVs.

The pattern layer (:mod:`repro.patterns.ap`) describes how an address is
*computed*; this module decides what that computation means for reuse:

``affine``
    ``base + const + sum(coeff_s * slot_s)``, optionally with a modular
    (power-of-two masked) inner part — the classic array walk.  Slots
    whose per-iteration step the loop model knows become strides.
``scalar``
    No induction terms at all: a named stack/global slot, touched at a
    fixed address every time.
``pointer``
    The address is a loaded value (``Deref`` feeding the base): linked
    structures.  Statically unpredictable — flagged, never guessed.
``indirect``
    The address mixes in data loaded from memory (``a[b[i]]``).
``opaque``
    Pattern expansion gave up (``Rec``/``Opaque`` nodes, depth cutoffs).

Bases resolve to absolute byte addresses when they are ``$gp``-relative
(the data segment is at a fixed virtual address) or ``$sp``-relative in
the entry function (the runtime stub enters with a known ``$sp``), which
lets footprints use real block alignment instead of a ceiling estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.patterns.ap import APNode, Base, BinOp, Const, Deref, Opaque, Rec
from repro.patterns.recurrence import Slot, slot_of_pattern

AFFINE = "affine"
SCALAR = "scalar"
POINTER = "pointer"
INDIRECT = "indirect"
OPAQUE = "opaque"


@dataclass
class Linear:
    """``const + sum(coeff * value_of(slot))`` in bytes."""

    const: int = 0
    terms: dict[Slot, int] = field(default_factory=dict)
    bases: frozenset = frozenset()      # ("base", kind) symbols

    def scaled(self, factor: int) -> "Linear":
        return Linear(self.const * factor,
                      {s: c * factor for s, c in self.terms.items()},
                      self.bases)

    def plus(self, other: "Linear") -> "Linear":
        terms = dict(self.terms)
        for slot, coeff in other.terms.items():
            terms[slot] = terms.get(slot, 0) + coeff
        return Linear(self.const + other.const, terms,
                      self.bases | other.bases)


@dataclass
class AddrModel:
    """One memory access's address in analyzable form."""

    kind: str
    linear: Linear = field(default_factory=Linear)
    #: modular inner part: ``linear + (mod_linear mod mod_period)``
    mod_linear: Optional[Linear] = None
    mod_period: Optional[int] = None    # bytes
    width: int = 4                      # access width in bytes

    @property
    def analyzable(self) -> bool:
        return self.kind in (AFFINE, SCALAR)

    def iv_slots(self) -> set[Slot]:
        slots = set(self.linear.terms)
        if self.mod_linear is not None:
            slots |= set(self.mod_linear.terms)
        return slots

    def coeff(self, slot: Slot) -> int:
        """Total byte motion of the address per unit change of ``slot``
        (modular terms included — the mask bounds the footprint, not the
        per-iteration motion)."""
        c = self.linear.terms.get(slot, 0)
        if self.mod_linear is not None:
            c += self.mod_linear.terms.get(slot, 0)
        return c

    def region_key(self) -> tuple:
        """Identity of the memory region this access walks."""
        return (self.linear.bases, tuple(sorted(self.linear.terms.items())))


class _Unanalyzable(Exception):
    def __init__(self, kind: str):
        self.kind = kind


def _linearize(node: APNode) -> object:
    """AP node -> Linear | (Linear outer, Linear inner, period)."""
    if isinstance(node, Const):
        return Linear(const=node.value)
    if isinstance(node, Base):
        return Linear(bases=frozenset({("base", node.kind)}))
    if isinstance(node, Deref):
        slot = slot_of_pattern(node.address)
        if slot is not None:
            return Linear(terms={slot: 1})
        # Address computed from a loaded value: pointer chasing, unless
        # the inner address itself mixes loads in (indirect indexing).
        if _contains_deref(node.address):
            raise _Unanalyzable(INDIRECT)
        raise _Unanalyzable(POINTER)
    if isinstance(node, (Rec, Opaque)):
        raise _Unanalyzable(OPAQUE)
    if isinstance(node, BinOp):
        return _linearize_binop(node)
    raise _Unanalyzable(OPAQUE)


def _linearize_binop(node: BinOp):
    op = node.op
    if op in ("+", "-"):
        left = _linearize(node.left)
        right = _linearize(node.right)
        if op == "-":
            if not isinstance(right, Linear):
                raise _Unanalyzable(OPAQUE)
            right = right.scaled(-1)
        if isinstance(left, Linear) and isinstance(right, Linear):
            return left.plus(right)
        # Fold the plain side into the modular triple's outer part.
        if isinstance(left, tuple) and isinstance(right, Linear):
            outer, inner, period = left
            return (outer.plus(right), inner, period)
        if isinstance(right, tuple) and isinstance(left, Linear):
            outer, inner, period = right
            return (outer.plus(left), inner, period)
        raise _Unanalyzable(OPAQUE)
    if op in ("*", "<<"):
        left = _linearize(node.left)
        factor = _const_value(node.right)
        if factor is None and op == "*":
            lval = _const_of(left)
            if lval is not None:
                left, factor = _linearize(node.right), lval
        if factor is None:
            raise _Unanalyzable(OPAQUE)
        if op == "<<":
            factor = 1 << factor
        if isinstance(left, Linear):
            return left.scaled(factor)
        if factor > 0:
            # k*(x mod M) == (k*x) mod (k*M) for k > 0.
            outer, inner, period = left
            return (outer.scaled(factor), inner.scaled(factor),
                    period * factor)
        raise _Unanalyzable(OPAQUE)
    if op == "&":
        mask = _const_value(node.right)
        operand = node.left
        if mask is None:
            mask = _const_value(node.left)
            operand = node.right
        if mask is None or mask < 0 or (mask + 1) & mask != 0:
            raise _Unanalyzable(OPAQUE)
        inner = _linearize(operand)
        if not isinstance(inner, Linear):
            raise _Unanalyzable(OPAQUE)
        if not inner.terms and not inner.bases:
            return Linear(const=inner.const & mask)
        return (Linear(), inner, mask + 1)
    raise _Unanalyzable(OPAQUE)


def _const_value(node: APNode) -> Optional[int]:
    return node.value if isinstance(node, Const) else None


def _const_of(lin) -> Optional[int]:
    if isinstance(lin, Linear) and not lin.terms and not lin.bases:
        return lin.const
    return None


def _contains_deref(node: APNode) -> bool:
    if isinstance(node, Deref):
        return True
    if isinstance(node, BinOp):
        return _contains_deref(node.left) or _contains_deref(node.right)
    return False


def build_addr_model(pattern: APNode, width: int = 4) -> AddrModel:
    """Lower one address pattern; never raises."""
    try:
        result = _linearize(pattern)
    except _Unanalyzable as exc:
        return AddrModel(kind=exc.kind, width=width)
    except RecursionError:
        return AddrModel(kind=OPAQUE, width=width)
    if isinstance(result, Linear):
        kind = AFFINE if result.terms else SCALAR
        return AddrModel(kind=kind, linear=result, width=width)
    outer, inner, period = result
    if inner.terms or outer.terms:
        return AddrModel(kind=AFFINE, linear=outer, mod_linear=inner,
                         mod_period=period, width=width)
    return AddrModel(kind=SCALAR,
                     linear=outer.plus(Linear(const=inner.const % period)),
                     width=width)
