"""Static reuse-distance prediction from loop nests and strides.

The composer at the heart of the analytic engine.  For every static
memory access it derives a *predicted reuse-distance histogram* — the
same ``{distance: count}`` shape the dynamic stack-distance pass
measures, but computed from closed forms instead of a trace:

1. the **walk** of each access is flattened level by level through its
   loop chain (stride per level = address coefficient x slot step),
   producing the distinct-block footprint ``D``, the covered byte span,
   and the point pitch at every nesting depth;
2. accesses split into **continuations** (the next access lands in the
   same block: short distance bounded by the loop's per-iteration
   working set), **fresh touches** (one per distinct block: compulsory,
   or a long distance when an earlier phase already walked the region)
   and **re-entries** (rewalks of an invariant region, overlapping
   sliding windows, modular wrap-around laps: distance equal to the
   intervening loop window footprint);
3. loop **windows** are assembled from the per-level footprints of all
   accesses (block-interval union, so two PCs walking one array do not
   double-count), giving the short distances their actual values.

Every derived quantity carries exactness; anything the model had to
guess (unknown trip counts, pointer-fed addresses, conditional blocks)
degrades the access's confidence, which the engine reports rather than
hides.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.analytic.addrmodel import (AFFINE, INDIRECT, OPAQUE, POINTER,
                                      SCALAR, AddrModel, build_addr_model)
from repro.analytic.loopmodel import (Count, FunctionModel, LoopNode,
                                      ProgramModel)
from repro.dataflow.addrflow import AddressFlow

HIGH = "high"
MEDIUM = "medium"
LOW = "low"

#: Distance bin used for accesses the model cannot place (estimates for
#: indirect/opaque addressing).  Mid-range: misses in small caches, hits
#: in large ones — the least-wrong uninformed guess, always LOW.
_ESTIMATE_DISTANCE = 8

#: Assumed window (blocks) between successive entries of a function when
#: no call-site loop window is known.
_CALL_WINDOW_ESTIMATE = 64


@dataclass
class Histogram:
    """Sparse predicted reuse-distance histogram for one static access.

    Two bin families with different set-mapping statistics:

    ``bins``
        The intervening blocks slide or vary between occurrences (an
        array block moving past a scalar, a wrapping walk): their set
        alignment is effectively random, so evaluation uses the
        Binomial/Poisson conflict model.
    ``dense``
        The intervening footprint is the *same fixed, resolved* block
        set every time — an outer loop rewalking inner arrays, a later
        phase re-reading a region, a wrapping walk lapping its orbit.
        A contiguous range spreads uniformly over sets, so an (S, A)
        LRU cache behaves like a fully-associative cache of S*A blocks:
        the reuse hits iff ``distance < S*A``, deterministically.  A
        *sparse* footprint whose blocks sit ``pitch`` blocks apart
        concentrates onto ``S / gcd(pitch, S)`` sets, shrinking the
        effective capacity by ``gcd(pitch, S)`` — each dense bin
        records its pitch so evaluation can apply that factor per
        geometry.
    """

    bins: dict[int, float] = field(default_factory=dict)
    dense: dict[int, float] = field(default_factory=dict)
    pitch: dict[int, int] = field(default_factory=dict)  # dense d -> blocks
    compulsory: float = 0.0          # infinite-distance (first-ever) touches

    def add(self, distance: float, count: float,
            dense: bool = False, pitch_blocks: int = 1) -> None:
        if count <= 0:
            return
        if distance == math.inf:
            self.compulsory += count
        else:
            d = max(int(round(distance)), 0)
            family = self.dense if dense else self.bins
            family[d] = family.get(d, 0.0) + count
            if dense and pitch_blocks > 1:
                self.pitch[d] = max(self.pitch.get(d, 1), pitch_blocks)

    @property
    def total(self) -> float:
        return (self.compulsory + sum(self.bins.values())
                + sum(self.dense.values()))


@dataclass
class OpPrediction:
    """Predicted behaviour of one static memory instruction."""

    pc: int
    function: str
    is_load: bool
    accesses: float
    hist: Histogram
    confidence: str
    reasons: tuple[str, ...]
    exact: bool


# ---------------------------------------------------------------------------
# per-op walk state


@dataclass
class _Walk:
    points: float = 1.0      # access events per unit execution
    entries: float = 1.0     # block entries per unit execution
    fresh: float = 1.0       # distinct blocks per unit execution
    lo: int = 0              # byte extent relative to the region anchor
    hi: int = 4
    pitch: int = 4           # max gap between consecutive points
    exact: bool = True
    # (tag, payload, count-per-unit-execution); tag in
    # {"near", "window", "orbit", "call"}
    re_events: list = field(default_factory=list)
    snapshots: list = field(default_factory=list)   # (lo, hi, fresh)/level
    zero: bool = False       # an exactly-zero-trip level kills the walk

    @property
    def span(self) -> int:
        return self.hi - self.lo


def _gcd(a: int, b: int) -> int:
    return math.gcd(abs(a), abs(b)) or 1


class _OpSite:
    """A memory instruction plus everything its walk needs."""

    def __init__(self, pc: int, instr, fn: str, model: AddrModel,
                 chain: list[LoopNode], levels: list[tuple[Count, int]],
                 anchor: Optional[int], kind_conf: str,
                 reasons: list[str], orbit_off: int = 0):
        self.pc = pc
        self.instr = instr
        self.fn = fn
        self.model = model
        self.chain = chain
        self.levels = levels         # innermost-first (trips, stride bytes)
        self.anchor = anchor         # absolute start byte, when resolved
        self.orbit_off = orbit_off   # anchor's offset within its orbit
        self.kind_conf = kind_conf
        self.reasons = reasons
        self.walk: Optional[_Walk] = None

    @property
    def width(self) -> int:
        return self.model.width

    def region_key(self) -> tuple:
        return (self.model.region_key(), self.model.linear.const // 4096
                if self.anchor is None else None)

    def bases_key(self) -> frozenset:
        return self.model.linear.bases


class RegionWalker:
    """Runs the per-level walk for one op."""

    def __init__(self, site: _OpSite, block_size: int):
        self.site = site
        self.B = block_size

    def blocks(self, lo: int, hi: int) -> int:
        """Distinct cache blocks in the byte range [lo, hi)."""
        if hi <= lo:
            return 0
        if self.site.anchor is not None:
            a = self.site.anchor
            return (a + hi - 1) // self.B - (a + lo) // self.B + 1
        return -((lo - hi) // self.B)        # ceil((hi-lo)/B)

    def run(self) -> _Walk:
        site = self.site
        w = _Walk(hi=site.width, pitch=site.width)
        period = site.model.mod_period
        for k, (trips, stride) in enumerate(site.levels):
            if trips.exact and trips.value == 0:
                w.zero = True
                w.points = w.entries = w.fresh = 0.0
                w.snapshots.append((w.lo, w.hi, 0.0))
                continue
            n = max(trips.value, 1.0)
            if not trips.exact:
                w.exact = False
            # Re-entry events from inner levels repeat every iteration.
            w.re_events = [(t, p, c * n) for t, p, c in w.re_events]
            if stride == 0:
                if n > 1:
                    w.re_events.append(("window", k, w.fresh * (n - 1.0)))
                w.points *= n
            else:
                self._advance(w, k, n, stride, period)
            w.entries = w.fresh + sum(c for _t, _p, c in w.re_events)
            w.snapshots.append((w.lo, w.hi, w.fresh))
        return w

    def _advance(self, w: _Walk, k: int, n: float, stride: int,
                 period: Optional[int]) -> None:
        a = abs(stride)
        span = w.span
        new_span = int(a * (n - 1)) + span
        if stride > 0:
            lo, hi = w.lo, w.lo + new_span
        else:
            lo, hi = w.hi - new_span, w.hi
        prev_fresh = w.fresh
        if a >= span:
            # Stepping beyond the current extent: disjoint copies, or a
            # (near-)contiguous flattened walk.
            edge_gap = a - span + self.site.width
            pitch = max(w.pitch, edge_gap)
            if pitch <= self.B:
                fresh = float(self.blocks(lo, hi))
                # Copies sharing a boundary block re-enter it cheaply.
                boundary = max(n * prev_fresh - fresh, 0.0)
                if boundary:
                    w.re_events.append(("near", k, boundary))
            else:
                fresh = n * prev_fresh
            w.pitch = pitch
        else:
            # Overlapping slide: each iteration revisits most of the
            # previous iteration's blocks one loop-window later.
            fresh = float(self.blocks(lo, hi))
            revisits = max(n * prev_fresh - fresh, 0.0)
            if revisits:
                w.re_events.append(("window", k, revisits))
            if w.pitch > self.site.width:
                w.exact = False        # sparse overlap: approximation
        w.lo, w.hi = lo, hi
        w.points *= n
        w.fresh = fresh
        if period is not None and w.span > period:
            self._wrap(w, k, a, period)

    def _wrap(self, w: _Walk, k: int, a: int, period: int) -> None:
        """Cap the walk at its modular period; excess first-touches
        become wrap-around laps over the orbit."""
        # The orbit is anchored at the modular region's base, not at
        # the first access: shift so anchor + lo is the orbit start.
        off = self.site.orbit_off
        lo, hi = -off, period - off
        g = _gcd(a, period) if a else period
        if max(w.pitch, g) > self.B:
            # Sparse progression: the orbit visits period/g distinct
            # positions, each its own block.
            cap = float(min(self.blocks(lo, hi), period // g))
        else:
            cap = float(self.blocks(lo, hi))
        if w.fresh > cap:
            w.re_events.append(("orbit", k, w.fresh - cap))
            w.fresh = cap
        w.lo, w.hi = lo, hi
        if g < w.pitch:
            w.pitch = max(g, self.site.width)


# ---------------------------------------------------------------------------
# function- and program-level composition


class _Intervals:
    """Block-interval union with a fallback for unresolved anchors."""

    def __init__(self, block_size: int):
        self.B = block_size
        self.resolved: list[tuple[int, int]] = []
        self.unresolved: dict[tuple, float] = {}
        self.extra = 0.0
        self.pure = True     # only resolved intervals contributed

    def add_site(self, site: _OpSite, lo: int, hi: int,
                 fresh: float) -> None:
        if fresh <= 0:
            return
        if site.anchor is not None:
            b0 = (site.anchor + lo) // self.B
            b1 = (site.anchor + hi - 1) // self.B
            self.resolved.append((b0, b1))
        else:
            key = (site.bases_key(), site.region_key(), lo // self.B)
            self.unresolved[key] = max(self.unresolved.get(key, 0.0), fresh)
            self.pure = False

    def add_estimate(self, amount: float) -> None:
        self.extra += amount
        self.pure = False

    def total(self) -> float:
        blocks = 0
        last_end = None
        for b0, b1 in sorted(self.resolved):
            if last_end is None or b0 > last_end:
                blocks += b1 - b0 + 1
                last_end = b1
            elif b1 > last_end:
                blocks += b1 - last_end
                last_end = b1
        return blocks + sum(self.unresolved.values()) + self.extra


class FunctionComposer:
    """Predict histograms for every memory op of one function."""

    def __init__(self, pmodel: ProgramModel, fmodel: FunctionModel,
                 block_size: int, datafed: set[int],
                 call_window: Optional[float]):
        self.pmodel = pmodel
        self.fmodel = fmodel
        self.B = block_size
        self.datafed = datafed
        self.call_window = call_window
        self.entry = pmodel.entry_counts.get(fmodel.name, Count(0.0, True))
        self.sites: list[_OpSite] = []
        self.windows: dict[int, float] = {}       # loop header -> W(L)
        self.iter_windows: dict[int, float] = {}  # loop header -> iw(L)
        #: whether a window is made of fixed resolved block intervals
        #: (-> dense set-mapping statistics apply to reuses across it)
        self.window_resolved: dict[int, bool] = {}
        self.iter_resolved: dict[int, bool] = {}

    # -- site construction --------------------------------------------
    def build_sites(self) -> None:
        builder = self.pmodel.builders[self.fmodel.name]
        for block in self.fmodel.cfg:
            for offset, instr in enumerate(block.instructions):
                if not (instr.is_load or instr.is_store):
                    continue
                pc = block.start + 4 * offset
                self.sites.append(self._make_site(builder, block, pc, instr))

    def _make_site(self, builder, block, pc: int, instr) -> _OpSite:
        info = builder.access_info(pc)
        reasons: list[str] = []
        width = 1 if instr.mnemonic in ("lb", "lbu", "sb") else 4
        models = [build_addr_model(p, width) for p in info.patterns] \
            or [AddrModel(kind=OPAQUE, width=width)]
        model = models[0]
        kinds = {m.kind for m in models}
        conf = HIGH
        if len(kinds) > 1:
            conf = MEDIUM
            reasons.append("divergent-paths")
        if model.kind in (POINTER, INDIRECT, OPAQUE):
            conf = LOW
            reasons.append(model.kind)
        if pc in self.datafed and model.kind != SCALAR:
            conf = LOW
            if INDIRECT not in reasons:
                reasons.append("data-fed-address")
        chain = self.fmodel.chain(block.start)
        levels: list[tuple[Count, int]] = []
        leader = block.start
        for index, node in enumerate(chain):
            trips = self.fmodel._level_count(leader, node)
            stride = 0
            for slot in model.iv_slots():
                if any(inner.trip is not None
                       and inner.trip.iv_slot == slot
                       for inner in chain[:index]):
                    # An inner loop's counter: re-initialized every
                    # entry, so its net motion per outer iteration is
                    # zero — the outer level rewalks the inner extent.
                    continue
                step = node.step_of(slot)
                if step is not None:
                    stride += model.coeff(slot) * step
                elif slot in node.steps:
                    # Updated in the loop, but not as a counter.
                    conf = LOW
                    reasons.append("irregular-slot-update")
            levels.append((trips, stride))
            if not trips.exact and conf == HIGH:
                conf = LOW
                reasons.append("unknown-trip-count")
            leader = node.header
        anchor, orbit_off = self._resolve_anchor(model, chain, reasons)
        if anchor is None and model.kind in (AFFINE, SCALAR) \
                and conf == HIGH:
            conf = MEDIUM
            reasons.append("unresolved-base")
        if not self.entry.exact and conf != LOW:
            conf = MEDIUM
            reasons.append("inexact-entry-count")
        return _OpSite(pc, instr, self.fmodel.name, model, chain, levels,
                       anchor, conf, reasons, orbit_off)

    def _resolve_anchor(self, model: AddrModel, chain: list[LoopNode],
                        reasons: list[str]
                        ) -> tuple[Optional[int], int]:
        """``(anchor, orbit_off)``: the absolute first-access byte and
        its offset within the modular orbit (0 without one) — needed so
        a wrapped walk can place its full orbit absolutely."""
        if model.kind not in (AFFINE, SCALAR):
            return None, 0
        base = 0
        for sym in model.linear.bases:
            kind = sym[1]
            if kind == "gp":
                base += self.pmodel.program.gp_value
            elif kind == "sp":
                sp = self.pmodel.sp_value(self.fmodel.name)
                if sp is None:
                    return None, 0
                base += sp
            else:
                return None, 0
        offset = model.linear.const
        mod_off = 0
        if model.mod_linear is not None:
            mod_off = model.mod_linear.const
        # Induction slots start from their loop's init value; invariant
        # slots are unresolved data.
        for slot in model.iv_slots():
            init = None
            for node in chain:
                if node.trip.iv_slot == slot and node.trip.init is not None:
                    init = node.trip.init
                    break
            if init is None:
                if model.coeff(slot):
                    return None, 0
                continue
            offset += model.linear.terms.get(slot, 0) * init
            if model.mod_linear is not None:
                mod_off += model.mod_linear.terms.get(slot, 0) * init
        orbit_off = 0
        if model.mod_period:
            orbit_off = mod_off % model.mod_period
            offset += orbit_off
        return base + offset, orbit_off

    # -- walks and windows --------------------------------------------
    def run_walks(self) -> None:
        for site in self.sites:
            if site.model.kind in (AFFINE, SCALAR):
                site.walk = RegionWalker(site, self.B).run()
            else:
                site.walk = self._estimate_walk(site)
        self._compute_windows()

    def _estimate_walk(self, site: _OpSite) -> _Walk:
        """Uninformed walk for pointer/indirect/opaque addressing: the
        numbers are estimates and the site is already LOW confidence."""
        w = _Walk(exact=False)
        points = 1.0
        for trips, _stride in site.levels:
            if trips.exact and trips.value == 0:
                w.zero = True
                w.points = w.entries = w.fresh = 0.0
                return w
            points *= max(trips.value, 1.0)
        w.points = points
        if site.model.kind == POINTER:
            # Linked structures from a bump allocator are roughly
            # sequential: a fraction width/B of accesses start blocks.
            w.fresh = max(points * site.width * 2 / self.B, 1.0)
            w.entries = w.fresh
        else:
            w.fresh = max(points / 4.0, 1.0)
            w.entries = w.fresh
        return w

    def _compute_windows(self) -> None:
        # W(L): distinct blocks per full execution of loop L.
        for node in self.fmodel.loops:
            acc = _Intervals(self.B)
            for site in self.sites:
                if site.walk is None or site.walk.zero:
                    continue
                for k, ln in enumerate(site.chain):
                    if ln.header != node.header:
                        continue
                    if site.walk.snapshots and k < len(site.walk.snapshots):
                        lo, hi, fresh = site.walk.snapshots[k]
                        if site.model.kind in (AFFINE, SCALAR):
                            acc.add_site(site, lo, hi, fresh)
                        else:
                            acc.add_estimate(self._per_level_estimate(
                                site, k))
            self.windows[node.header] = max(acc.total(), 1.0)
            self.window_resolved[node.header] = acc.pure
        # iw(L): distinct blocks per single iteration of L.
        for node in self.fmodel.loops:
            active: set = set()
            estimate = 0.0
            resolved = True
            for site in self.sites:
                if site.walk is None or site.walk.zero:
                    continue
                if site.chain and site.chain[0].header == node.header:
                    if site.model.kind in (AFFINE, SCALAR):
                        active.add(self._active_key(site))
                        if site.anchor is None:
                            resolved = False
                    else:
                        estimate += 1.0
                        resolved = False
            total = len(active) + estimate
            for child in node.children:
                total += self.windows.get(child.header, 1.0)
                resolved = resolved and self.window_resolved.get(
                    child.header, False)
            self.iter_windows[node.header] = max(total, 1.0)
            self.iter_resolved[node.header] = resolved
        self._compute_near_distances()

    def _compute_near_distances(self) -> None:
        """Per-site short-reuse distances from intra-iteration ordering.

        Within one loop iteration the accesses interleave in (roughly)
        program order; the distance of a same-block reuse is the number
        of distinct *other* blocks touched since the previous access of
        the same block group — usually 0 for back-to-back slot traffic,
        and only the access right after an array reference pays the
        intervening block.  Nested child loops contribute their whole
        window where they sit in the body."""
        self._near: dict[int, float] = {}
        #: loop headers whose body carries unresolved (pointer/indirect/
        #: opaque) accesses: the intra-iteration ordering there includes
        #: estimated footprints, so near distances are guesses.
        self._near_impure: set[int] = set()
        #: whether this function's straight-line stretches contain a
        #: call: the callee's footprint interleaves with them, so their
        #: short distances are estimates (loop bodies are handled per
        #: header below).
        self._calls_inline = False
        for callee, callers in self.pmodel._call_sites().items():
            for caller, leader in callers:
                if caller != self.fmodel.name:
                    continue
                # A callee's footprint intervenes on every iteration of
                # every loop enclosing the call site; the short
                # distances of sibling accesses are estimates at best.
                chain = self.fmodel.chain(leader)
                if chain:
                    for node in chain:
                        self._near_impure.add(node.header)
                else:
                    self._calls_inline = True
        by_loop: dict[int, list[_OpSite]] = {}
        loop_groups: dict[int, set] = {}
        for site in self.sites:
            if site.walk is None or site.walk.zero:
                continue
            if site.model.kind not in (AFFINE, SCALAR):
                for node in site.chain:
                    self._near_impure.add(node.header)
                continue
            if site.chain:
                by_loop.setdefault(site.chain[0].header, []).append(site)
                key = self._active_key(site)
                for node in site.chain:
                    loop_groups.setdefault(node.header, set()).add(key)
        for node in self.fmodel.loops:
            sites = by_loop.get(node.header, [])
            if not sites:
                continue
            events: list[tuple[int, str, object, Optional[_OpSite]]] = []
            for s in sites:
                events.append((s.pc, "site", self._active_key(s), s))
            for child in node.children:
                events.append((child.header, "child", child.header, None))
            events.sort(key=lambda e: e[0])
            n = len(events)
            for idx, ev in enumerate(events):
                if ev[1] != "site":
                    continue
                group = ev[2]
                dist = 0.0
                seen: set = set()
                j = (idx - 1) % n
                while j != idx:
                    _pc, kind, payload, _s = events[j]
                    if kind == "site":
                        if payload == group:
                            break
                        if payload not in seen:
                            seen.add(payload)
                            dist += 1.0
                    elif group in loop_groups.get(payload, ()):
                        # The child loop touches this very group; the
                        # previous same-group access is its final one,
                        # essentially adjacent.
                        break
                    else:
                        dist += self.windows.get(payload, 1.0)
                    j = (j - 1) % n
                self._near[ev[3].pc] = dist

    def _per_level_estimate(self, site: _OpSite, level: int) -> float:
        points = 1.0
        for trips, _ in site.levels[:level + 1]:
            points *= max(trips.value, 1.0)
        return max(points * site.width * 2 / self.B, 1.0)

    def _active_key(self, site: _OpSite):
        if site.anchor is not None:
            return (site.bases_key(), site.anchor // self.B,
                    tuple(sorted(site.model.linear.terms.items())))
        return (site.bases_key(), site.region_key())

    # -- emission ------------------------------------------------------
    def emit(self, clock: "_PhaseClock") -> list[OpPrediction]:
        out: list[OpPrediction] = []
        for unit_sites in self._units():
            footprint = _Intervals(self.B)
            seen_regions: set = set()
            unit_impure = any(
                s.model.kind not in (AFFINE, SCALAR)
                for s in unit_sites
                if s.walk is not None and not s.walk.zero)
            for site in unit_sites:
                out.append(self._emit_site(site, clock, seen_regions,
                                           unit_impure))
                w = site.walk
                if w is not None and not w.zero:
                    if site.model.kind in (AFFINE, SCALAR):
                        footprint.add_site(site, w.lo, w.hi, w.fresh)
                    else:
                        footprint.add_estimate(w.fresh)
            clock.advance(footprint.total(), pure=footprint.pure)
            for site in unit_sites:
                if site.walk is not None and not site.walk.zero:
                    region = self._region_id(site)
                    exact = (site.walk.exact
                             and site.kind_conf == HIGH)
                    if exact and region[0] == "abs":
                        # A sparse walk (pitch beyond the block size, or
                        # a wrapped lattice) leaves holes in its extent:
                        # a later phase crediting "covered" blocks
                        # against this touch would overstate its warmth.
                        extent = region[2] - region[1] + 1
                        exact = site.walk.fresh >= extent - 0.5
                    clock.touch(region, exact=exact)
        return out

    def _units(self) -> list[list[_OpSite]]:
        """Top-level program phases: outermost loops and straight-line
        stretches, in address order."""
        groups: dict = {}
        order: list = []
        for site in sorted(self.sites, key=lambda s: s.pc):
            key = ("loop", site.chain[-1].header) if site.chain \
                else ("line", site.pc // 64)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(site)
        return [groups[k] for k in order]

    def _region_id(self, site: _OpSite) -> tuple:
        if site.anchor is not None:
            w = site.walk
            return ("abs", (site.anchor + w.lo) // self.B,
                    (site.anchor + w.hi - 1) // self.B)
        return ("sym", site.bases_key(), site.region_key())

    def _emit_site(self, site: _OpSite, clock: "_PhaseClock",
                   seen_regions: set,
                   unit_impure: bool = False) -> OpPrediction:
        w = site.walk
        hist = Histogram()
        entry_n = max(self.entry.value, 0.0)
        exact = (w is not None and w.exact and self.entry.exact
                 and site.kind_conf != LOW)
        if site.chain:
            if site.chain[0].header in self._near_impure:
                # Unresolved siblings share this loop body: the short
                # distances woven through them are estimates.
                exact = False
        elif unit_impure or self._calls_inline:
            exact = False
        if w is None or w.zero or entry_n == 0.0:
            return OpPrediction(
                pc=site.pc, function=site.fn, is_load=site.instr.is_load,
                accesses=0.0, hist=hist, confidence=site.kind_conf,
                reasons=tuple(site.reasons), exact=exact)

        d_near = self._near_distance(site)
        points, entries, fresh = w.points, w.entries, w.fresh
        # Continuations: consecutive accesses staying in the block.
        hist.add(d_near, max(points - entries, 0.0) * entry_n)
        # Re-entries from rewalks / overlaps / wraps.  An orbit's
        # intervening footprint is the site's own (possibly sparse)
        # lattice, so it carries the walk pitch for set concentration.
        for tag, payload, count in w.re_events:
            hist.add(self._re_distance(site, tag, payload, fresh, d_near),
                     count * entry_n,
                     dense=self._re_dense(site, tag, payload),
                     pitch_blocks=(max(w.pitch // self.B, 1)
                                   if tag == "orbit" else 1))
        # Fresh touches: one per distinct region block per entry.
        region = self._region_id(site)
        cov_exact = True
        if region[0] == "abs":
            covered, prior, cov_exact = clock.abs_coverage(region)
            range_blocks = region[2] - region[1] + 1
            frac = min(covered / range_blocks, 1.0) if range_blocks \
                else 0.0
            reused = fresh * frac
        else:
            prior = clock.last_touch(region)
            reused = fresh if prior is not None else 0.0
        if region in seen_regions:
            # A sibling op in this same unit already walks these blocks.
            hist.add(d_near, fresh * entry_n)
        elif prior is not None and reused > 0:
            # Overlap with earlier phases reuses at the phase distance;
            # the uncovered remainder is a genuine first touch.
            hist.add(max(clock.now - prior, 1.0), reused * entry_n,
                     dense=region[0] == "abs" and clock.pure)
            leftover = max(fresh - reused, 0.0)
            if leftover > 0:
                hist.add(math.inf, leftover)
                if entry_n > 1:
                    dist = self.call_window or _CALL_WINDOW_ESTIMATE
                    hist.add(dist, leftover * (entry_n - 1.0))
                    exact = False
            if not clock.pure or not cov_exact:
                # The phase distance includes estimated footprints, or
                # the covered fraction came from an inexact extent.
                exact = False
        else:
            hist.add(math.inf, fresh)
            if entry_n > 1:
                # Later function entries re-touch the same region.
                dist = self.call_window or _CALL_WINDOW_ESTIMATE
                hist.add(dist, fresh * (entry_n - 1.0))
                exact = False
            if clock.now > 0 and not clock.pure:
                # An earlier phase with an unresolved footprint may have
                # warmed (or conflicted with) this region; the first
                # touches are a guess, not a closed form.
                exact = False
        seen_regions.add(region)
        confidence = site.kind_conf
        if confidence == HIGH and not exact:
            confidence = MEDIUM
        return OpPrediction(
            pc=site.pc, function=site.fn, is_load=site.instr.is_load,
            accesses=points * entry_n, hist=hist, confidence=confidence,
            reasons=tuple(site.reasons), exact=exact)

    def _near_distance(self, site: _OpSite) -> float:
        if site.pc in self._near:
            return self._near[site.pc]
        if site.chain:
            iw = self.iter_windows.get(site.chain[0].header, 2.0)
            return max(iw - 1.0, 0.0)
        return 0.0

    def _re_distance(self, site: _OpSite, tag: str, payload,
                     fresh: float, d_near: float) -> float:
        if tag == "near":
            return d_near
        if tag == "call":
            return float(payload)
        level = payload
        if 0 <= level < len(site.chain):
            iw = self.iter_windows.get(site.chain[level].header, 2.0)
        else:
            iw = 2.0
        if tag == "orbit":
            return fresh + max(iw - 2.0, 0.0)
        if level == 0 and site.pc in self._near:
            # Innermost re-entries (invariant rewalks, unit slides) reuse
            # across exactly one iteration: the intra-iteration ordering
            # gives the distance precisely.
            return self._near[site.pc]
        return max(iw - 1.0, 1.0)

    def _re_dense(self, site: _OpSite, tag: str, payload) -> bool:
        """Whether a re-entry reuses across a *fixed resolved* footprint
        (dense set-mapping statistics) rather than a sliding one."""
        if site.anchor is None or tag == "call":
            return False
        level = payload
        if not (0 <= level < len(site.chain)):
            return False
        header = site.chain[level].header
        if tag == "orbit":
            # The intervening footprint is the region's own orbit — a
            # fixed contiguous range once the anchor is resolved.
            return self.iter_resolved.get(header, True)
        # Outer-level rewalks / slides: one full iteration of the loop
        # at `level` intervenes, the same blocks every time.
        return tag == "window" and level >= 1 \
            and self.iter_resolved.get(header, False)


class _PhaseClock:
    """Global progress counter in touched blocks, for cross-phase reuse."""

    def __init__(self) -> None:
        self.now = 0.0
        self.pure = True       # no unresolved footprint advanced it yet
        self._regions: dict = {}    # region -> (when, toucher exact?)

    def advance(self, blocks: float, pure: bool = True) -> None:
        self.now += blocks
        if not pure:
            self.pure = False

    def touch(self, region, exact: bool = True) -> None:
        when, was_exact = self._regions.get(region, (None, True))
        self._regions[region] = (self.now, exact and was_exact)

    def last_touch(self, region) -> Optional[float]:
        if region in self._regions:
            return self._regions[region][0]
        if isinstance(region, tuple) and region[0] == "abs":
            return self.abs_coverage(region)[1]
        return None

    def abs_coverage(self, region
                     ) -> tuple[int, Optional[float], bool]:
        """``(covered_blocks, latest_touch, exact)`` of an ``abs``
        block range against every previously touched ``abs`` range.

        A later phase re-reading a region an earlier phase walked only
        *partially* reuses just the overlap; the remainder is a genuine
        first touch.  The union of intersections gives the covered
        block count — exactly when every contributing toucher's extent
        was itself exact, as a flagged estimate otherwise (conditional
        walks cover an iteration-dependent prefix)."""
        _tag, lo, hi = region
        intervals: list[tuple[int, int]] = []
        best: Optional[float] = None
        exact = True
        for other, (when, was_exact) in self._regions.items():
            if other[0] != "abs":
                continue
            if other[1] <= hi and lo <= other[2]:
                intervals.append((max(lo, other[1]), min(hi, other[2])))
                best = when if best is None else max(best, when)
                exact = exact and was_exact
        covered = 0
        last_end = None
        for b0, b1 in sorted(intervals):
            if last_end is None or b0 > last_end:
                covered += b1 - b0 + 1
                last_end = b1
            elif b1 > last_end:
                covered += b1 - last_end
                last_end = b1
        return covered, best, exact


def predict_ops(program, block_size: int,
                pmodel: Optional[ProgramModel] = None
                ) -> tuple[list[OpPrediction], ProgramModel]:
    """Predict reuse histograms for every memory op in ``program``."""
    pmodel = pmodel or ProgramModel(program)
    flow = AddressFlow(program, pmodel.block_map)
    datafed = flow.data_address_consumers
    clock = _PhaseClock()
    out: list[OpPrediction] = []
    call_windows = _caller_windows(pmodel, block_size, datafed)
    for name in _function_order(pmodel):
        entry = pmodel.entry_counts.get(name, Count(0.0, True))
        if entry.value <= 0:
            continue
        composer = FunctionComposer(pmodel, pmodel.functions[name],
                                    block_size, datafed,
                                    call_windows.get(name))
        composer.build_sites()
        composer.run_walks()
        out.extend(composer.emit(clock))
    return out, pmodel


def _function_order(pmodel: ProgramModel) -> list[str]:
    target = pmodel._entry_target()
    names = list(pmodel.functions)
    names.sort(key=lambda n: (n != target,
                              pmodel.functions[n].cfg.entry))
    return names


def _caller_windows(pmodel: ProgramModel, block_size: int,
                    datafed: set[int]) -> dict[str, float]:
    """Rough per-callee window: blocks touched by the caller between
    consecutive entries (the innermost caller loop's iteration window is
    approximated by a flat constant; refined values would need the
    caller's own composed windows, a cycle this estimate breaks)."""
    sites = pmodel._call_sites()
    windows: dict[str, float] = {}
    for callee, callers in sites.items():
        in_loop = False
        for caller, leader in callers:
            fm = pmodel.functions.get(caller)
            if fm is not None and fm.innermost_loop(leader) is not None:
                in_loop = True
        windows[callee] = 8.0 if in_loop else float(_CALL_WINDOW_ESTIMATE)
    return windows
