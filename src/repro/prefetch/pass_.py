"""Delta-guided software prefetching (the paper's motivating client).

"The key to containing the overhead is the correct identification of the
load instructions that are most likely to benefit from the prefetch
operation" — this pass is that client, built on the binary rewriter:

* for every *selected* load ``lw rt, off(rs)`` it inserts
  ``pref (off+K)(rs)`` immediately before the load, using the same base
  register (always live at that point, so the insertion is trivially
  safe);
* the lookahead ``K`` is chosen from the load's address pattern:
  strided/indexed patterns prefetch a couple of blocks ahead, pointer
  dereferences prefetch the next line of the pointee.

This is deliberately the simplest next-K-bytes scheme: sophisticated
stride analysis is out of scope, and the evaluation's point is the
paper's — Delta-guided prefetching captures most of the benefit of
prefetching *every* load at a fraction of the instruction overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.asm.program import Program
from repro.isa.instructions import Instruction
from repro.patterns.builder import LoadInfo, build_load_infos
from repro.patterns.recurrence import motion_kind
from repro.rewrite.inserter import RewriteResult, insert_instructions

_IMM_MAX = 0x7FFF


@dataclass
class PrefetchPlan:
    """Chosen lookahead per selected load (address -> byte delta)."""

    lookaheads: dict[int, int] = field(default_factory=dict)
    skipped: list[int] = field(default_factory=list)   # offset overflow

    def __len__(self) -> int:
        return len(self.lookaheads)


def plan_prefetches(program: Program,
                    delta: set[int],
                    load_infos: Optional[Mapping[int, LoadInfo]] = None,
                    block_size: int = 32,
                    stride_blocks: int = 2) -> PrefetchPlan:
    """Decide the prefetch lookahead for every load in ``delta``."""
    load_infos = load_infos or build_load_infos(program)
    plan = PrefetchPlan()
    for address in sorted(delta):
        info = load_infos.get(address)
        if info is None or not info.instruction.is_load:
            continue
        if motion_kind(info.features) in ("strided", "indexed"):
            lookahead = stride_blocks * block_size
        else:
            lookahead = block_size          # next-line for pointer chains
        offset = info.instruction.imm + lookahead
        if offset > _IMM_MAX:
            plan.skipped.append(address)
            continue
        plan.lookaheads[address] = lookahead
    return plan


def apply_prefetching(program: Program,
                      delta: set[int],
                      load_infos: Optional[Mapping[int, LoadInfo]] = None,
                      block_size: int = 32,
                      stride_blocks: int = 2) -> RewriteResult:
    """Rewrite ``program`` with prefetches for the loads in ``delta``."""
    plan = plan_prefetches(program, delta, load_infos, block_size,
                           stride_blocks)
    insertions: dict[int, list[Instruction]] = {}
    for address, lookahead in plan.lookaheads.items():
        load = program.instruction_at(address)
        insertions[address] = [Instruction(
            "pref", rt=0, rs=load.rs, imm=load.imm + lookahead)]
    return insert_instructions(program, insertions)
