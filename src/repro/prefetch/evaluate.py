"""Evaluation harness for Delta-guided prefetching.

Cycle model: ``cycles = instructions + penalty * (load misses + store
misses)`` — the simple stall model the profiling extension also uses.
``compare_policies`` measures the three policies the paper's introduction
contrasts: prefetch nothing, prefetch only Delta, prefetch every load.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.program import Program
from repro.cache.config import BASELINE_CONFIG, CacheConfig
from repro.cache.stackdist import simulate_sweep
from repro.machine.simulator import Machine
from repro.prefetch.pass_ import apply_prefetching

DEFAULT_PENALTY = 30


@dataclass(frozen=True)
class PolicyResult:
    """Measured outcome of one prefetch policy."""

    policy: str
    instructions: int
    load_misses: int
    store_misses: int
    prefetch_ops: int
    cycles: int

    @property
    def total_misses(self) -> int:
        return self.load_misses + self.store_misses


@dataclass
class PrefetchComparison:
    none: PolicyResult
    delta: PolicyResult
    all_loads: PolicyResult

    def speedup(self, policy: PolicyResult) -> float:
        return self.none.cycles / policy.cycles if policy.cycles else 0.0

    def miss_reduction(self, policy: PolicyResult) -> float:
        base = self.none.load_misses
        if base == 0:
            return 0.0
        return 1.0 - policy.load_misses / base

    def render(self) -> str:
        rows = [f"{'policy':16s} {'instructions':>13} {'ld misses':>10} "
                f"{'pref ops':>9} {'cycles':>12} {'speedup':>8}"]
        for result in (self.none, self.delta, self.all_loads):
            rows.append(
                f"{result.policy:16s} {result.instructions:>13,} "
                f"{result.load_misses:>10,} {result.prefetch_ops:>9,} "
                f"{result.cycles:>12,} {self.speedup(result):>7.2f}x")
        return "\n".join(rows)


def measure_policy(program: Program, policy: str,
                   cache: CacheConfig = BASELINE_CONFIG,
                   penalty: int = DEFAULT_PENALTY,
                   max_steps: int = 300_000_000) -> PolicyResult:
    """Execute ``program`` and evaluate it under the cycle model.

    Cache simulation goes through the dispatching sweep engine, so a
    policy evaluated under several LRU geometries (or re-evaluated
    after a profile is cached) shares one trace pass.
    """
    result = Machine(program, max_steps=max_steps).run()
    stats = simulate_sweep(result.trace, (cache,))[0]
    load_misses = stats.total_load_misses
    store_misses = stats.total_store_misses
    cycles = result.steps + penalty * (load_misses + store_misses)
    return PolicyResult(
        policy=policy,
        instructions=result.steps,
        load_misses=load_misses,
        store_misses=store_misses,
        prefetch_ops=stats.prefetch_ops,
        cycles=cycles,
    )


def compare_policies(program: Program,
                     delta: set[int],
                     cache: CacheConfig = BASELINE_CONFIG,
                     penalty: int = DEFAULT_PENALTY,
                     max_steps: int = 300_000_000) -> PrefetchComparison:
    """Prefetch nothing vs Delta-only vs every load."""
    baseline = measure_policy(program, "none", cache, penalty, max_steps)
    delta_program = apply_prefetching(program, delta).program
    delta_result = measure_policy(delta_program, "delta-guided", cache,
                                  penalty, max_steps)
    every = set(program.load_addresses())
    all_program = apply_prefetching(program, every).program
    all_result = measure_policy(all_program, "all-loads", cache,
                                penalty, max_steps)
    return PrefetchComparison(none=baseline, delta=delta_result,
                              all_loads=all_result)
