"""Binary rewriting: insert instructions into an assembled program.

The prefetching pass (and any future instrumentation pass) needs to
splice instructions into an existing :class:`Program`.  Insertion shifts
every downstream address, so the rewriter:

* rebuilds the instruction list with the insertions applied,
* remaps every branch/jump target through the old->new address map,
* remaps text symbols and the debug records' function extents.

Limitations (checked, not silently ignored): programs materializing text
addresses as data (``lta``-built function pointers, ``.word`` of a text
label) cannot be safely rewritten — the MiniC compiler never emits
either, and the rewriter raises if it finds a data word that looks like
a text address reference recorded in the symbol table.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace
from typing import Mapping, Sequence

from dataclasses import dataclass

from repro.asm.program import Program
from repro.asm.symtab import FunctionInfo, SymbolTable
from repro.isa.instructions import Format, Instruction


class RewriteError(Exception):
    pass


@dataclass
class RewriteResult:
    """A rewritten program plus the old->new instruction-address map
    (so analysis results keyed by address can be carried across)."""

    program: Program
    address_map: dict[int, int]

    def remap(self, addresses) -> set[int]:
        return {self.address_map[a] for a in addresses}


def _check_rewritable(program: Program) -> None:
    """Refuse programs whose data segment may embed text addresses."""
    text_symbols = {
        name for name, address in program.symbols.items()
        if program.text_base <= address < program.text_end
    }
    data = program.data
    for offset in range(0, len(data) - 3, 4):
        word = int.from_bytes(data[offset:offset + 4], "little")
        if program.text_base <= word < program.text_end \
                and word % 4 == 0:
            # a data word pointing into text: could be a function pointer
            raise RewriteError(
                f"data word at +{offset} looks like a text address "
                f"({word:#x}); rewriting would corrupt it")


def insert_instructions(program: Program,
                        insertions: Mapping[int, Sequence[Instruction]],
                        check: bool = True) -> RewriteResult:
    """Insert instructions *before* the given addresses.

    ``insertions`` maps an existing instruction address to the new
    instructions placed immediately before it.  Returns a
    :class:`RewriteResult`; the original program is untouched.
    """
    if check:
        _check_rewritable(program)
    for address in insertions:
        program.index_of(address)      # validates alignment/range

    # Pass 1: lay out the new instruction stream and the address map.
    new_instructions: list[Instruction] = []
    address_map: dict[int, int] = {}
    for index, instr in enumerate(program.instructions):
        old_address = program.address_of(index)
        for extra in insertions.get(old_address, ()):
            new_instructions.append(dc_replace(extra))
        address_map[old_address] = program.text_base \
            + 4 * len(new_instructions)
        new_instructions.append(dc_replace(instr))
    # one-past-the-end maps too (function extents use it)
    address_map[program.text_end] = program.text_base \
        + 4 * len(new_instructions)

    # Pass 2: retarget control transfers.
    for instr in new_instructions:
        if instr.spec.is_branch or instr.spec.fmt is Format.JUMP:
            if instr.imm is not None:
                target = address_map.get(instr.imm)
                if target is None:
                    raise RewriteError(
                        f"control target {instr.imm:#x} is not an "
                        f"instruction boundary")
                instr.imm = target

    # Pass 3: remap symbols and debug info.
    new_symbols = {}
    for name, address in program.symbols.items():
        if program.text_base <= address < program.text_end:
            new_symbols[name] = address_map[address]
        else:
            new_symbols[name] = address

    new_symtab = SymbolTable(
        globals=dict(program.symtab.globals),
        structs=dict(program.symtab.structs),
    )
    for name, info in program.symtab.functions.items():
        new_symtab.functions[name] = FunctionInfo(
            name=info.name,
            start=address_map.get(info.start, info.start),
            end=address_map.get(info.end, info.end),
            frame_size=info.frame_size,
            locals=list(info.locals),
            param_types=list(info.param_types),
            return_type=info.return_type,
        )

    rewritten = Program(
        instructions=new_instructions,
        data=bytearray(program.data),
        symbols=new_symbols,
        symtab=new_symtab,
        text_base=program.text_base,
        data_base=program.data_base,
        entry=address_map[program.entry],
        source=program.source,
    )
    return RewriteResult(program=rewritten, address_map=address_map)
