"""Basic-block partitioning of an assembled program.

Both the execution profiler (block entry counts) and the static analyses
(CFG reconstruction, reaching definitions) need the same partition, so it
lives here.  A *leader* is the program entry, any branch/jump target, any
function start, or the instruction following a control transfer (including
calls — the return point begins a new block).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.asm.program import Program
from repro.isa.instructions import Format, Instruction, branch_target


def leader_addresses(program: Program) -> list[int]:
    """Sorted addresses of all basic-block leaders in ``program``."""
    leaders: set[int] = {program.entry, program.text_base}
    for name, addr in program.symbols.items():
        if program.text_base <= addr < program.text_end:
            leaders.add(addr)
    for index, instr in enumerate(program.instructions):
        addr = program.address_of(index)
        target = branch_target(instr)
        if target is not None and program.text_base <= target < program.text_end:
            leaders.add(target)
        if instr.is_control() or instr.is_call:
            following = addr + 4
            if following < program.text_end:
                leaders.add(following)
    return sorted(leaders)


@dataclass
class BasicBlock:
    """A maximal single-entry straight-line run of instructions."""

    start: int                       # address of the leader
    end: int                         # address one past the last instruction
    instructions: list[Instruction] = field(default_factory=list)
    successors: list[int] = field(default_factory=list)   # leader addresses
    predecessors: list[int] = field(default_factory=list)

    @property
    def size(self) -> int:
        return (self.end - self.start) // 4

    def addresses(self) -> Iterator[int]:
        return iter(range(self.start, self.end, 4))

    @property
    def terminator(self) -> Optional[Instruction]:
        return self.instructions[-1] if self.instructions else None

    def __contains__(self, address: int) -> bool:
        return self.start <= address < self.end


class BlockMap:
    """Partition of the whole text segment into basic blocks."""

    def __init__(self, program: Program):
        self.program = program
        self.leaders = leader_addresses(program)
        self.blocks: dict[int, BasicBlock] = {}
        for pos, start in enumerate(self.leaders):
            end = (self.leaders[pos + 1] if pos + 1 < len(self.leaders)
                   else program.text_end)
            instrs = [
                program.instruction_at(addr) for addr in range(start, end, 4)
            ]
            self.blocks[start] = BasicBlock(start, end, instrs)
        self._wire_edges()

    def _wire_edges(self) -> None:
        text_base, text_end = self.program.text_base, self.program.text_end
        for block in self.blocks.values():
            term = block.terminator
            if term is None:
                continue
            succs: list[int] = []
            if term.is_branch:
                target = branch_target(term)
                if target is not None and text_base <= target < text_end:
                    succs.append(target)
                if block.end < text_end:
                    succs.append(block.end)
            elif term.spec.fmt is Format.JUMP:
                if term.is_call:
                    # Call: intra-procedural edge to the return point.
                    if block.end < text_end:
                        succs.append(block.end)
                else:
                    target = branch_target(term)
                    if target is not None and text_base <= target < text_end:
                        succs.append(target)
            elif term.spec.fmt is Format.JR:
                pass  # return / computed jump: no static successors
            elif term.spec.fmt is Format.JALR:
                if block.end < text_end:
                    succs.append(block.end)
            else:
                if block.end < text_end:
                    succs.append(block.end)
            block.successors = succs
        for block in self.blocks.values():
            for succ in block.successors:
                self.blocks[succ].predecessors.append(block.start)

    def block_of(self, address: int) -> BasicBlock:
        """The basic block containing ``address``."""
        pos = bisect.bisect_right(self.leaders, address) - 1
        if pos < 0:
            raise ValueError(f"address below text base: {address:#x}")
        block = self.blocks[self.leaders[pos]]
        if address not in block:
            raise ValueError(f"address outside text: {address:#x}")
        return block

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks[leader] for leader in self.leaders)

    def __len__(self) -> int:
        return len(self.blocks)
