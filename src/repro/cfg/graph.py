"""Per-function control-flow graphs, dominators and natural loops.

The address-pattern builder scopes its dataflow analysis to one function at
a time (the paper reconstructs "the control and data flow graphs" from the
disassembly), and recurrence detection (criterion H4) needs natural loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.asm.program import Program
from repro.cfg.blocks import BasicBlock, BlockMap


@dataclass
class Loop:
    """A natural loop: back edge ``latch -> header`` plus its body."""

    header: int
    latch: int
    body: frozenset[int]         # block leader addresses, includes header

    def __contains__(self, leader: int) -> bool:
        return leader in self.body


class FunctionCFG:
    """Control-flow graph of one function."""

    def __init__(self, name: str, blocks: dict[int, BasicBlock], entry: int):
        self.name = name
        self.blocks = blocks
        self.entry = entry
        self._dominators: Optional[dict[int, frozenset[int]]] = None
        self._loops: Optional[list[Loop]] = None

    # -- traversal -----------------------------------------------------
    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks.values())

    def __len__(self) -> int:
        return len(self.blocks)

    def block(self, leader: int) -> BasicBlock:
        return self.blocks[leader]

    def block_of(self, address: int) -> Optional[BasicBlock]:
        for block in self.blocks.values():
            if address in block:
                return block
        return None

    def successors(self, leader: int) -> list[int]:
        return [s for s in self.blocks[leader].successors if s in self.blocks]

    def predecessors(self, leader: int) -> list[int]:
        return [p for p in self.blocks[leader].predecessors
                if p in self.blocks]

    def reverse_postorder(self) -> list[int]:
        seen: set[int] = set()
        order: list[int] = []

        def visit(leader: int) -> None:
            stack = [(leader, iter(self.successors(leader)))]
            seen.add(leader)
            while stack:
                node, succs = stack[-1]
                advanced = False
                for succ in succs:
                    if succ not in seen:
                        seen.add(succ)
                        stack.append((succ, iter(self.successors(succ))))
                        advanced = True
                        break
                if not advanced:
                    order.append(node)
                    stack.pop()

        visit(self.entry)
        for leader in sorted(self.blocks):
            if leader not in seen:
                visit(leader)
        order.reverse()
        return order

    # -- dominators ------------------------------------------------------
    def dominators(self) -> dict[int, frozenset[int]]:
        """Map each block leader to the set of its dominators."""
        if self._dominators is not None:
            return self._dominators
        nodes = self.reverse_postorder()
        all_nodes = frozenset(nodes)
        dom: dict[int, frozenset[int]] = {
            node: all_nodes for node in nodes
        }
        dom[self.entry] = frozenset((self.entry,))
        changed = True
        while changed:
            changed = False
            for node in nodes:
                if node == self.entry:
                    continue
                preds = [p for p in self.predecessors(node) if p in dom]
                if preds:
                    incoming = frozenset.intersection(
                        *(dom[p] for p in preds)
                    )
                else:
                    incoming = frozenset()
                updated = incoming | {node}
                if updated != dom[node]:
                    dom[node] = updated
                    changed = True
        self._dominators = dom
        return dom

    # -- natural loops ---------------------------------------------------
    def natural_loops(self) -> list[Loop]:
        """All natural loops, one per back edge (merged per header later
        by callers if desired)."""
        if self._loops is not None:
            return self._loops
        dom = self.dominators()
        loops: list[Loop] = []
        for block in self.blocks.values():
            for succ in self.successors(block.start):
                if succ in dom.get(block.start, frozenset()):
                    loops.append(self._natural_loop(succ, block.start))
        self._loops = loops
        return loops

    def _natural_loop(self, header: int, latch: int) -> Loop:
        body = {header, latch}
        stack = [latch]
        while stack:
            node = stack.pop()
            if node == header:
                continue
            for pred in self.predecessors(node):
                if pred not in body:
                    body.add(pred)
                    stack.append(pred)
        return Loop(header=header, latch=latch, body=frozenset(body))

    def loops_containing(self, address: int) -> list[Loop]:
        """Loops whose body contains the block holding ``address``."""
        block = self.block_of(address)
        if block is None:
            return []
        return [loop for loop in self.natural_loops()
                if block.start in loop.body]


def build_function_cfgs(program: Program,
                        block_map: Optional[BlockMap] = None
                        ) -> dict[str, FunctionCFG]:
    """Build one CFG per function recorded in the program's debug info.

    Functions are delimited by the assembler's ``.ent``/``.end`` records;
    when absent, the whole text segment becomes a single pseudo-function.
    """
    block_map = block_map or BlockMap(program)
    cfgs: dict[str, FunctionCFG] = {}
    functions = program.symtab.functions
    if not functions:
        blocks = {b.start: b for b in block_map}
        entry = program.entry
        cfgs["__text__"] = FunctionCFG("__text__", blocks, entry)
        return cfgs
    for name, info in functions.items():
        blocks = {
            block.start: block
            for block in block_map
            if info.start <= block.start < info.end
        }
        if not blocks:
            continue
        entry = info.start if info.start in blocks else min(blocks)
        cfgs[name] = FunctionCFG(name, blocks, entry)
    return cfgs
