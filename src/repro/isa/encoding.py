"""Binary encoding and decoding of instructions.

Instructions encode to 32-bit words in three formats, mirroring MIPS:

* R-format: ``opcode(6) rs(5) rt(5) rd(5) shamt(5) funct(6)``
* I-format: ``opcode(6) rs(5) rt(5) imm(16)`` — branches store the
  PC-relative *word* offset from the following instruction,
* J-format: ``opcode(6) target(26)`` — word-aligned absolute target.

``encode``/``decode`` round-trip exactly; the disassembler builds on
``decode``.
"""

from __future__ import annotations

from repro.isa.instructions import SPECS, Format, Instruction, InstrSpec


class EncodingError(Exception):
    """Raised when an instruction cannot be encoded or decoded."""


def _to_u16(value: int, signed: bool) -> int:
    if signed:
        if not -0x8000 <= value <= 0x7FFF:
            raise EncodingError(f"immediate out of signed 16-bit range: {value}")
        return value & 0xFFFF
    if not 0 <= value <= 0xFFFF:
        raise EncodingError(f"immediate out of unsigned 16-bit range: {value}")
    return value


def _from_u16(value: int, signed: bool) -> int:
    if signed and value >= 0x8000:
        return value - 0x10000
    return value


def encode(instr: Instruction, address: int) -> int:
    """Encode ``instr`` located at byte ``address`` into a 32-bit word."""
    spec = instr.spec
    fmt = spec.fmt
    opcode = spec.opcode

    def r_word(rs: int = 0, rt: int = 0, rd: int = 0, shamt: int = 0) -> int:
        assert spec.funct is not None
        return (
            (opcode << 26) | (rs << 21) | (rt << 16)
            | (rd << 11) | (shamt << 6) | spec.funct
        )

    if fmt is Format.R3:
        return r_word(rs=instr.rs, rt=instr.rt, rd=instr.rd)
    if fmt is Format.R2:
        return r_word(rs=instr.rs, rd=instr.rd)
    if fmt is Format.SHIFT:
        if not 0 <= instr.shamt < 32:
            raise EncodingError(f"shift amount out of range: {instr.shamt}")
        return r_word(rt=instr.rt, rd=instr.rd, shamt=instr.shamt)
    if fmt is Format.JR:
        return r_word(rs=instr.rs)
    if fmt is Format.JALR:
        return r_word(rs=instr.rs, rd=instr.rd)
    if fmt is Format.BARE:
        return r_word()
    if fmt in (Format.I_ARITH, Format.MEM):
        # Memory offsets are always signed; spec.signed describes the
        # loaded value's extension for loads, not the immediate.
        imm_signed = True if fmt is Format.MEM else spec.signed
        imm = _to_u16(instr.imm, imm_signed)
        return (opcode << 26) | (instr.rs << 21) | (instr.rt << 16) | imm
    if fmt is Format.LUI:
        imm = _to_u16(instr.imm, signed=False)
        return (opcode << 26) | (instr.rt << 16) | imm
    if fmt is Format.BRANCH2:
        offset = _branch_offset(instr.imm, address)
        return (opcode << 26) | (instr.rs << 21) | (instr.rt << 16) | offset
    if fmt is Format.BRANCH1:
        offset = _branch_offset(instr.imm, address)
        rt_field = spec.rt_code or 0
        return (opcode << 26) | (instr.rs << 21) | (rt_field << 16) | offset
    if fmt is Format.JUMP:
        if instr.imm % 4 != 0:
            raise EncodingError(f"jump target not word aligned: {instr.imm:#x}")
        return (opcode << 26) | ((instr.imm >> 2) & 0x03FF_FFFF)
    raise EncodingError(f"cannot encode format {fmt}")


def _branch_offset(target: int, address: int) -> int:
    delta = target - (address + 4)
    if delta % 4 != 0:
        raise EncodingError(f"branch target not word aligned: {target:#x}")
    return _to_u16(delta // 4, signed=True)


def _find_spec(opcode: int, funct: int | None, rt_field: int) -> InstrSpec:
    for spec in SPECS.values():
        if spec.opcode != opcode:
            continue
        if opcode in (0x00, 0x11):
            if spec.funct == funct:
                return spec
        elif opcode == 0x01:  # REGIMM: selector in the rt field
            if spec.rt_code == rt_field:
                return spec
        else:
            return spec
    raise EncodingError(
        f"unknown instruction word: opcode={opcode:#x} funct={funct}"
    )


def decode(word: int, address: int) -> Instruction:
    """Decode a 32-bit instruction ``word`` located at byte ``address``."""
    if not 0 <= word <= 0xFFFF_FFFF:
        raise EncodingError(f"not a 32-bit word: {word:#x}")
    opcode = (word >> 26) & 0x3F
    rs = (word >> 21) & 0x1F
    rt = (word >> 16) & 0x1F
    rd = (word >> 11) & 0x1F
    shamt = (word >> 6) & 0x1F
    funct = word & 0x3F
    imm16 = word & 0xFFFF

    spec = _find_spec(opcode, funct if opcode in (0x00, 0x11) else None, rt)
    fmt = spec.fmt
    m = spec.mnemonic

    if fmt is Format.R3:
        return Instruction(m, rd=rd, rs=rs, rt=rt)
    if fmt is Format.R2:
        return Instruction(m, rd=rd, rs=rs)
    if fmt is Format.SHIFT:
        return Instruction(m, rd=rd, rt=rt, shamt=shamt)
    if fmt is Format.JR:
        return Instruction(m, rs=rs)
    if fmt is Format.JALR:
        return Instruction(m, rd=rd, rs=rs)
    if fmt is Format.BARE:
        return Instruction(m)
    if fmt in (Format.I_ARITH, Format.MEM):
        imm_signed = True if fmt is Format.MEM else spec.signed
        return Instruction(m, rt=rt, rs=rs,
                           imm=_from_u16(imm16, imm_signed))
    if fmt is Format.LUI:
        return Instruction(m, rt=rt, imm=imm16)
    if fmt is Format.BRANCH2:
        target = address + 4 + 4 * _from_u16(imm16, signed=True)
        return Instruction(m, rs=rs, rt=rt, imm=target)
    if fmt is Format.BRANCH1:
        target = address + 4 + 4 * _from_u16(imm16, signed=True)
        return Instruction(m, rs=rs, imm=target)
    if fmt is Format.JUMP:
        return Instruction(m, imm=(word & 0x03FF_FFFF) << 2)
    raise EncodingError(f"cannot decode format {fmt}")  # pragma: no cover
