"""Register file definitions for the MIPS-like ISA.

The register set mirrors the MIPS R3000 integer register file, because the
paper's address-pattern grammar is defined over MIPS conventions: ``$sp``
(stack pointer), ``$gp`` (global pointer), ``$a0-$a3`` (parameter registers,
``reg_param`` in the paper) and ``$v0-$v1`` (return-value registers,
``reg_ret``).
"""

from __future__ import annotations

NUM_REGISTERS = 32

#: Canonical MIPS register names indexed by register number.
REGISTER_NAMES: tuple[str, ...] = (
    "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
    "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
    "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
    "t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
)

_NAME_TO_NUMBER = {name: idx for idx, name in enumerate(REGISTER_NAMES)}

# Well-known register numbers.
ZERO = 0
AT = 1
V0, V1 = 2, 3
A0, A1, A2, A3 = 4, 5, 6, 7
T0, T1, T2, T3, T4, T5, T6, T7 = 8, 9, 10, 11, 12, 13, 14, 15
S0, S1, S2, S3, S4, S5, S6, S7 = 16, 17, 18, 19, 20, 21, 22, 23
T8, T9 = 24, 25
K0, K1 = 26, 27
GP = 28
SP = 29
FP = 30
RA = 31

#: Parameter-passing registers ($a0-$a3): the paper's ``reg_param`` bases.
PARAM_REGISTERS = frozenset((A0, A1, A2, A3))

#: Return-value registers ($v0-$v1): the paper's ``reg_ret`` bases.
RETURN_REGISTERS = frozenset((V0, V1))

#: Caller-saved temporaries, freely clobbered across calls.
TEMP_REGISTERS = (T0, T1, T2, T3, T4, T5, T6, T7, T8, T9)

#: Callee-saved registers.
SAVED_REGISTERS = (S0, S1, S2, S3, S4, S5, S6, S7)

#: Registers clobbered by a function call under our ABI.
CALL_CLOBBERED = frozenset(
    (V0, V1, A0, A1, A2, A3, RA, AT) + TEMP_REGISTERS
)


def register_number(name: str) -> int:
    """Return the register number for ``name``.

    Accepts canonical names with or without the ``$`` sigil and numeric
    names such as ``$29``.

    >>> register_number("$sp")
    29
    >>> register_number("t0")
    8
    """
    stripped = name.lstrip("$")
    if stripped in _NAME_TO_NUMBER:
        return _NAME_TO_NUMBER[stripped]
    if stripped.isdigit():
        number = int(stripped)
        if 0 <= number < NUM_REGISTERS:
            return number
    raise ValueError(f"unknown register: {name!r}")


def register_name(number: int) -> str:
    """Return the canonical ``$``-prefixed name for a register number.

    >>> register_name(29)
    '$sp'
    """
    if not 0 <= number < NUM_REGISTERS:
        raise ValueError(f"register number out of range: {number}")
    return "$" + REGISTER_NAMES[number]


def is_param_register(number: int) -> bool:
    """True for $a0-$a3 (the paper's ``reg_param``)."""
    return number in PARAM_REGISTERS


def is_return_register(number: int) -> bool:
    """True for $v0-$v1 (the paper's ``reg_ret``)."""
    return number in RETURN_REGISTERS
