"""Instruction set for the MIPS-like target.

The ISA is a close derivative of the MIPS R3000 integer subset (the paper's
experiments use SimpleScalar, itself "a close derivative of the MIPS
architecture"), extended with a small set of single-precision float
operations that operate directly on the integer register file (registers
hold IEEE-754 bit patterns).  Three encoding formats exist:

* **R-format** — opcode 0 (integer) or 0x11 (float), register operands and
  a ``funct`` selector,
* **I-format** — 16-bit immediate instructions, including all loads,
  stores and conditional branches (PC-relative word offsets),
* **J-format** — ``j`` / ``jal`` with a 26-bit word target.

Every mnemonic carries an :class:`InstrSpec` describing its operand shape
and its defined/used registers, which the dataflow and address-pattern
layers consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.isa.registers import RA, ZERO, register_name


class Format(Enum):
    """Operand/assembly shape of an instruction."""

    R3 = "r3"            # op $rd, $rs, $rt
    R2 = "r2"            # op $rd, $rs            (unary register ops)
    SHIFT = "shift"      # op $rd, $rt, shamt
    I_ARITH = "i_arith"  # op $rt, $rs, imm
    LUI = "lui"          # lui $rt, imm
    MEM = "mem"          # op $rt, imm($rs)
    BRANCH2 = "branch2"  # op $rs, $rt, target
    BRANCH1 = "branch1"  # op $rs, target
    JUMP = "jump"        # op target
    JR = "jr"            # jr $rs
    JALR = "jalr"        # jalr $rd, $rs
    BARE = "bare"        # syscall / nop


@dataclass(frozen=True)
class InstrSpec:
    """Static description of one mnemonic."""

    mnemonic: str
    fmt: Format
    opcode: int
    funct: Optional[int] = None
    rt_code: Optional[int] = None   # REGIMM selector (bltz/bgez)
    is_load: bool = False
    is_store: bool = False
    is_prefetch: bool = False
    is_branch: bool = False
    is_jump: bool = False
    is_call: bool = False
    is_float: bool = False
    width: int = 4                  # memory access width in bytes
    signed: bool = True             # sign-extend loaded value / immediate


def _spec(mnemonic: str, fmt: Format, opcode: int, **kwargs) -> InstrSpec:
    return InstrSpec(mnemonic=mnemonic, fmt=fmt, opcode=opcode, **kwargs)


#: Master table of every mnemonic in the ISA.
SPECS: dict[str, InstrSpec] = {
    spec.mnemonic: spec
    for spec in (
        # --- R-format integer ALU -------------------------------------
        _spec("addu", Format.R3, 0x00, funct=0x21),
        _spec("subu", Format.R3, 0x00, funct=0x23),
        _spec("mul", Format.R3, 0x00, funct=0x18),
        _spec("div", Format.R3, 0x00, funct=0x1A),
        _spec("rem", Format.R3, 0x00, funct=0x1B),
        _spec("and", Format.R3, 0x00, funct=0x24),
        _spec("or", Format.R3, 0x00, funct=0x25),
        _spec("xor", Format.R3, 0x00, funct=0x26),
        _spec("nor", Format.R3, 0x00, funct=0x27),
        _spec("slt", Format.R3, 0x00, funct=0x2A),
        _spec("sltu", Format.R3, 0x00, funct=0x2B),
        _spec("sllv", Format.R3, 0x00, funct=0x04),
        _spec("srlv", Format.R3, 0x00, funct=0x06),
        _spec("srav", Format.R3, 0x00, funct=0x07),
        # --- shifts with immediate shamt ------------------------------
        _spec("sll", Format.SHIFT, 0x00, funct=0x00),
        _spec("srl", Format.SHIFT, 0x00, funct=0x02),
        _spec("sra", Format.SHIFT, 0x00, funct=0x03),
        # --- control (R-format) ---------------------------------------
        _spec("jr", Format.JR, 0x00, funct=0x08, is_jump=True),
        _spec("jalr", Format.JALR, 0x00, funct=0x09, is_jump=True,
              is_call=True),
        _spec("syscall", Format.BARE, 0x00, funct=0x0C),
        # --- float (coprocessor-style opcode, integer register file) --
        _spec("fadd", Format.R3, 0x11, funct=0x00, is_float=True),
        _spec("fsub", Format.R3, 0x11, funct=0x01, is_float=True),
        _spec("fmul", Format.R3, 0x11, funct=0x02, is_float=True),
        _spec("fdiv", Format.R3, 0x11, funct=0x03, is_float=True),
        _spec("fneg", Format.R2, 0x11, funct=0x07, is_float=True),
        _spec("fcvt", Format.R2, 0x11, funct=0x20, is_float=True),
        _spec("ftrunc", Format.R2, 0x11, funct=0x24, is_float=True),
        _spec("feq", Format.R3, 0x11, funct=0x32, is_float=True),
        _spec("flt", Format.R3, 0x11, funct=0x3C, is_float=True),
        _spec("fle", Format.R3, 0x11, funct=0x3E, is_float=True),
        # --- I-format ALU ---------------------------------------------
        _spec("addiu", Format.I_ARITH, 0x09),
        _spec("slti", Format.I_ARITH, 0x0A),
        _spec("sltiu", Format.I_ARITH, 0x0B),
        _spec("andi", Format.I_ARITH, 0x0C, signed=False),
        _spec("ori", Format.I_ARITH, 0x0D, signed=False),
        _spec("xori", Format.I_ARITH, 0x0E, signed=False),
        _spec("lui", Format.LUI, 0x0F, signed=False),
        # --- loads ------------------------------------------------------
        _spec("lb", Format.MEM, 0x20, is_load=True, width=1),
        _spec("lh", Format.MEM, 0x21, is_load=True, width=2),
        _spec("lw", Format.MEM, 0x23, is_load=True, width=4),
        _spec("lbu", Format.MEM, 0x24, is_load=True, width=1, signed=False),
        _spec("lhu", Format.MEM, 0x25, is_load=True, width=2, signed=False),
        # --- prefetch (non-binding cache touch; no destination) --------
        _spec("pref", Format.MEM, 0x33, is_prefetch=True),
        # --- stores -----------------------------------------------------
        _spec("sb", Format.MEM, 0x28, is_store=True, width=1),
        _spec("sh", Format.MEM, 0x29, is_store=True, width=2),
        _spec("sw", Format.MEM, 0x2B, is_store=True, width=4),
        # --- branches ---------------------------------------------------
        _spec("beq", Format.BRANCH2, 0x04, is_branch=True),
        _spec("bne", Format.BRANCH2, 0x05, is_branch=True),
        _spec("blez", Format.BRANCH1, 0x06, is_branch=True),
        _spec("bgtz", Format.BRANCH1, 0x07, is_branch=True),
        _spec("bltz", Format.BRANCH1, 0x01, rt_code=0x00, is_branch=True),
        _spec("bgez", Format.BRANCH1, 0x01, rt_code=0x01, is_branch=True),
        # --- jumps ------------------------------------------------------
        _spec("j", Format.JUMP, 0x02, is_jump=True),
        _spec("jal", Format.JUMP, 0x03, is_jump=True, is_call=True),
    )
}


@dataclass
class Instruction:
    """One machine instruction.

    Register operands are register *numbers*; ``imm`` holds ALU
    immediates, memory offsets and resolved branch/jump byte targets.
    ``label`` optionally carries the symbolic target for pretty-printing.
    """

    mnemonic: str
    rd: Optional[int] = None
    rs: Optional[int] = None
    rt: Optional[int] = None
    imm: Optional[int] = None
    shamt: Optional[int] = None
    label: Optional[str] = None
    source_line: Optional[int] = None

    @property
    def spec(self) -> InstrSpec:
        return SPECS[self.mnemonic]

    # -- classification shortcuts ------------------------------------
    @property
    def is_load(self) -> bool:
        return self.spec.is_load

    @property
    def is_store(self) -> bool:
        return self.spec.is_store

    @property
    def is_branch(self) -> bool:
        return self.spec.is_branch

    @property
    def is_jump(self) -> bool:
        return self.spec.is_jump

    @property
    def is_call(self) -> bool:
        return self.spec.is_call

    def is_control(self) -> bool:
        """True if the instruction may transfer control."""
        return self.spec.is_branch or self.spec.is_jump

    # -- dataflow metadata --------------------------------------------
    def defs(self) -> frozenset[int]:
        """Registers written by this instruction (excluding $zero)."""
        fmt = self.spec.fmt
        out: set[int] = set()
        if fmt in (Format.R3, Format.R2, Format.SHIFT, Format.JALR):
            if self.rd is not None:
                out.add(self.rd)
        elif fmt in (Format.I_ARITH, Format.LUI):
            if self.rt is not None:
                out.add(self.rt)
        elif fmt is Format.MEM and self.spec.is_load:
            if self.rt is not None:
                out.add(self.rt)
        if self.spec.is_call:
            out.add(RA)
        out.discard(ZERO)
        return frozenset(out)

    def uses(self) -> frozenset[int]:
        """Registers read by this instruction."""
        fmt = self.spec.fmt
        out: set[int] = set()
        if fmt is Format.R3:
            out.update((self.rs, self.rt))
        elif fmt is Format.R2:
            out.add(self.rs)
        elif fmt is Format.SHIFT:
            out.add(self.rt)
        elif fmt is Format.I_ARITH:
            out.add(self.rs)
        elif fmt is Format.MEM:
            out.add(self.rs)
            if self.spec.is_store:
                out.add(self.rt)
        elif fmt is Format.BRANCH2:
            out.update((self.rs, self.rt))
        elif fmt is Format.BRANCH1:
            out.add(self.rs)
        elif fmt in (Format.JR, Format.JALR):
            out.add(self.rs)
        return frozenset(r for r in out if r is not None and r != ZERO)

    # -- text form -------------------------------------------------------
    def text(self) -> str:
        """Render the instruction in assembly syntax."""
        m = self.mnemonic
        fmt = self.spec.fmt
        if fmt is Format.R3:
            return (f"{m} {register_name(self.rd)}, "
                    f"{register_name(self.rs)}, {register_name(self.rt)}")
        if fmt is Format.R2:
            return f"{m} {register_name(self.rd)}, {register_name(self.rs)}"
        if fmt is Format.SHIFT:
            return (f"{m} {register_name(self.rd)}, "
                    f"{register_name(self.rt)}, {self.shamt}")
        if fmt is Format.I_ARITH:
            return (f"{m} {register_name(self.rt)}, "
                    f"{register_name(self.rs)}, {self.imm}")
        if fmt is Format.LUI:
            return f"{m} {register_name(self.rt)}, {self.imm}"
        if fmt is Format.MEM:
            if self.spec.is_prefetch:
                return f"{m} {self.imm}({register_name(self.rs)})"
            return (f"{m} {register_name(self.rt)}, "
                    f"{self.imm}({register_name(self.rs)})")
        if fmt is Format.BRANCH2:
            target = self.label if self.label else f"0x{self.imm:08x}"
            return (f"{m} {register_name(self.rs)}, "
                    f"{register_name(self.rt)}, {target}")
        if fmt is Format.BRANCH1:
            target = self.label if self.label else f"0x{self.imm:08x}"
            return f"{m} {register_name(self.rs)}, {target}"
        if fmt is Format.JUMP:
            target = self.label if self.label else f"0x{self.imm:08x}"
            return f"{m} {target}"
        if fmt is Format.JR:
            return f"{m} {register_name(self.rs)}"
        if fmt is Format.JALR:
            return f"{m} {register_name(self.rd)}, {register_name(self.rs)}"
        return m

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text()


def branch_target(instr: Instruction) -> Optional[int]:
    """Resolved byte address of a branch/jump target, if any."""
    if instr.spec.is_branch or instr.spec.fmt is Format.JUMP:
        return instr.imm
    return None


def mnemonics(predicate=None) -> list[str]:
    """List mnemonics, optionally filtered by a predicate on the spec."""
    if predicate is None:
        return sorted(SPECS)
    return sorted(m for m, s in SPECS.items() if predicate(s))
