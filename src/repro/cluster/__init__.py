"""Sharded analysis cluster: router, hash ring, worker lifecycle.

A thin horizontal-scaling layer over :mod:`repro.service`: one
:class:`AnalysisRouter` speaks the existing JSON-lines protocol
unchanged and consistent-hash routes compute requests across N worker
servers by their content-hash request key — so each key lands on the
worker whose cache is already warm, and worker join/leave remaps only
≈K/N keys.  Workers are probed, ejected and re-admitted automatically;
idempotent ops fail over to the next ring node; the ``metrics`` op
aggregates every worker's snapshot into one cluster view.

``ClusterClient`` is just :class:`~repro.service.client.ServiceClient`
pointed at the router — the wire is byte-identical to a single server.
"""

from repro.cluster.metrics import RouterMetrics, aggregate_worker_metrics
from repro.cluster.ring import HashRing
from repro.cluster.router import (AnalysisRouter, ClusterHandle,
                                  RouterConfig, RouterHandle,
                                  cluster_in_thread, route_in_thread,
                                  run_router)
from repro.cluster.spawn import WorkerProcess, spawn_workers
from repro.cluster.upstream import UpstreamWorker
from repro.service.client import ServiceClient as ClusterClient

__all__ = [
    "AnalysisRouter",
    "ClusterClient",
    "ClusterHandle",
    "HashRing",
    "RouterConfig",
    "RouterHandle",
    "RouterMetrics",
    "UpstreamWorker",
    "WorkerProcess",
    "aggregate_worker_metrics",
    "cluster_in_thread",
    "route_in_thread",
    "run_router",
    "spawn_workers",
]
