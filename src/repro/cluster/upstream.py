"""Upstream worker state and pooled connections for the router.

One :class:`UpstreamWorker` per worker server: a small stack of idle
:class:`~repro.service.client.ServiceClient` connections (created
lazily, reused across requests, capped at ``pool_size``), the
lifecycle flags the router flips (``healthy`` via health probes and
transport failures, ``draining`` via the ``cluster`` admin op), and
per-worker gauges/counters (``in_flight``, ``routed``, ``failures``).

``transact`` is the forwarding primitive: it runs on a router executor
thread, relays one raw request line to the worker and returns the raw
response line — byte passthrough, so the wire schema a client sees
through the router is *exactly* what a single worker would have sent.
"""

from __future__ import annotations

import threading
from typing import Any, Optional

from repro.service.client import ServiceClient, ServiceError, \
    parse_address


class UpstreamWorker:
    """One worker endpoint: connection pool + lifecycle + counters."""

    def __init__(self, address: str, *,
                 connect_timeout: float = 5.0,
                 pool_size: int = 4,
                 retries: int = 1,
                 backoff: float = 0.05):
        self.address = address
        self.host, self.port = parse_address(address)
        self.connect_timeout = connect_timeout
        self.pool_size = max(1, pool_size)
        self.retries = retries
        self.backoff = backoff
        # lifecycle (mutated only on the router's event loop)
        self.healthy = True
        self.draining = False
        self.consecutive_failures = 0
        #: set when the router spawned this worker (WorkerProcess)
        self.process = None
        # counters (mutated from executor threads, hence the lock)
        self.in_flight = 0
        self.routed = 0
        self.failures = 0
        self.last_error: Optional[str] = None
        self._idle: list[ServiceClient] = []
        self._lock = threading.Lock()
        self._closed = False

    @property
    def eligible(self) -> bool:
        """May receive *new* keys (in the ring, probed healthy)."""
        return self.healthy and not self.draining and not self._closed

    # -- connection pool ---------------------------------------------
    def _new_client(self) -> ServiceClient:
        return ServiceClient(self.host, self.port,
                             timeout=self.connect_timeout,
                             retries=self.retries,
                             backoff=self.backoff)

    def acquire(self) -> ServiceClient:
        with self._lock:
            if self._idle:
                return self._idle.pop()
        return self._new_client()

    def release(self, client: ServiceClient) -> None:
        with self._lock:
            if not self._closed and len(self._idle) < self.pool_size:
                self._idle.append(client)
                return
        client.close()

    # -- blocking operations (run on executor threads) -----------------
    def transact(self, line: bytes, timeout: float) -> bytes:
        """Relay one raw request line; return the raw response line."""
        with self._lock:
            self.in_flight += 1
        client: Optional[ServiceClient] = None
        try:
            client = self.acquire()
            raw = client.transact(line, timeout=timeout)
            self.release(client)
            client = None
            with self._lock:
                self.routed += 1
            return raw
        except (ServiceError, OSError, ValueError) as exc:
            with self._lock:
                self.failures += 1
                self.last_error = f"{type(exc).__name__}: {exc}"
            if isinstance(exc, ServiceError):
                raise
            raise ServiceError("transport", str(exc),
                               address=self.address)
        finally:
            if client is not None:
                client.close()
            with self._lock:
                self.in_flight -= 1

    def _call(self, op: str) -> Any:
        client: Optional[ServiceClient] = None
        try:
            client = self.acquire()
            result = client.call(op)
            self.release(client)
            client = None
            return result
        finally:
            if client is not None:
                client.close()

    def probe(self) -> bool:
        """One health round trip; False on any failure."""
        try:
            return self._call("health").get("status") == "ok"
        except (ServiceError, OSError, ValueError):
            return False

    def fetch_metrics(self) -> Optional[dict[str, Any]]:
        """The worker's ``metrics`` snapshot (None if unreachable)."""
        try:
            return self._call("metrics")
        except (ServiceError, OSError, ValueError):
            return None

    def shutdown(self) -> None:
        """Best-effort ``shutdown`` op (spawned-worker teardown)."""
        try:
            self._call("shutdown")
        except (ServiceError, OSError, ValueError):
            pass

    # -- reporting -----------------------------------------------------
    def describe(self) -> dict[str, Any]:
        with self._lock:
            return {
                "address": self.address,
                "healthy": self.healthy,
                "draining": self.draining,
                "in_flight": self.in_flight,
                "routed": self.routed,
                "failures": self.failures,
                "consecutive_failures": self.consecutive_failures,
                "pid": self.process.pid
                       if self.process is not None else None,
                "last_error": self.last_error,
            }

    def close(self) -> None:
        with self._lock:
            self._closed = True
            idle, self._idle = self._idle, []
        for client in idle:
            client.close()
