"""The cluster router: cache-aware consistent-hash request front end.

``AnalysisRouter`` accepts the service's JSON-lines wire protocol
*unchanged* and forwards each request, as raw bytes, to one of N
worker servers:

* **routing** — compute ops (``analyze``/``classify``/``simulate``)
  are placed on the :class:`~repro.cluster.ring.HashRing` by their
  content-hash request key, so a repeated key always lands on the
  worker whose memory-tier cache is already warm and membership
  changes remap only ≈K/N keys; keyless scheduled ops (``sleep``) go
  to the least-loaded eligible worker;
* **passthrough** — the original request line is relayed verbatim and
  the worker's response line is returned verbatim (the client's id
  travels through), so a response through the router is byte-identical
  to one from a single server;
* **lifecycle** — a periodic prober marks workers unhealthy after
  ``fail_after`` consecutive failed health probes (immediately on a
  transport failure or a dead spawned process) and ejects them from
  the ring; a later successful probe re-admits them.  The ``cluster``
  admin op drains a worker (no new keys, in-flight finishes) and
  un-drains it;
* **failover** — idempotent compute ops that hit a dead or
  shutting-down worker retry on the next distinct ring node, so
  killing a worker mid-stream is invisible to clients;
* **control ops** — ``health``/``metrics``/``shutdown`` are answered
  by the router itself; ``metrics`` aggregates every worker's snapshot
  into cluster totals (see :mod:`repro.cluster.metrics`).

Entry points mirror the service: :func:`run_router` behind
``python -m repro cluster``, :func:`route_in_thread` /
:func:`cluster_in_thread` for tests, benchmarks and embedding.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Any, Optional, Union

from repro import __version__
from repro.cluster.metrics import RouterMetrics, aggregate_worker_metrics
from repro.cluster.ring import HashRing
from repro.cluster.upstream import UpstreamWorker
from repro.service import protocol
from repro.service.client import ServiceError
from repro.service.protocol import (MAX_REQUEST_BYTES, ProtocolError,
                                    Request, encode, error_response,
                                    ok_response)

import json


@dataclass
class RouterConfig:
    """Everything tunable about one router instance."""

    host: str = "127.0.0.1"
    port: int = 8652            # 0: pick an ephemeral port
    replicas: int = 64          # virtual nodes per worker
    probe_interval: float = 1.0     # seconds between health probes
    fail_after: int = 2         # consecutive probe failures to eject
    max_attempts: int = 3       # distinct workers tried per compute op
    connect_timeout: float = 5.0    # upstream connect/probe timeout
    upstream_timeout: float = 120.0  # floor for upstream read timeouts
    pool_size: int = 4          # idle connections kept per worker
    executor_threads: int = 16  # concurrent upstream round trips
    upstream_retries: int = 1   # per-connection resend (same worker)
    upstream_backoff: float = 0.05


class AnalysisRouter:
    """One long-lived routing front end over N workers."""

    def __init__(self, config: Optional[RouterConfig] = None,
                 upstreams: tuple = (),
                 processes: Optional[dict[str, Any]] = None):
        self.config = config or RouterConfig()
        self.metrics = RouterMetrics()
        self.workers: dict[str, UpstreamWorker] = {}
        for address in upstreams:
            self.add_worker(address,
                            (processes or {}).get(address))
        self.ring = HashRing(replicas=self.config.replicas)
        self._rebuild_ring()
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._shutdown = None
        self._connections: set = set()
        self._executor: Optional[ThreadPoolExecutor] = None
        self._prober: Optional[asyncio.Task] = None
        self._rr = 0

    # -- membership ----------------------------------------------------
    def add_worker(self, address: str, process: Any = None) -> None:
        if address in self.workers:
            return
        worker = UpstreamWorker(
            address,
            connect_timeout=self.config.connect_timeout,
            pool_size=self.config.pool_size,
            retries=self.config.upstream_retries,
            backoff=self.config.upstream_backoff)
        worker.process = process
        self.workers[address] = worker

    def _rebuild_ring(self) -> None:
        ring = HashRing(replicas=self.config.replicas)
        for address, worker in self.workers.items():
            if worker.eligible:
                ring.add(address)
        self.ring = ring

    # -- lifecycle ---------------------------------------------------
    async def start(self) -> None:
        self._shutdown = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.executor_threads,
            thread_name_prefix="repro-router")
        await self._probe_all(initial=True)
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port,
            limit=MAX_REQUEST_BYTES + 2)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        self._prober = asyncio.get_running_loop().create_task(
            self._probe_loop())

    async def serve_until_shutdown(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._shutdown.wait()
            await asyncio.sleep(0.05)   # flush final responses
            for task in list(self._connections):
                task.cancel()
            if self._connections:
                await asyncio.gather(*self._connections,
                                     return_exceptions=True)
        if self._prober is not None:
            self._prober.cancel()
            try:
                await self._prober
            except (asyncio.CancelledError, Exception):
                pass
            self._prober = None
        for worker in self.workers.values():
            worker.close()
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def request_stop(self) -> None:
        if self._shutdown is not None:
            self._shutdown.set()

    # -- health probing ------------------------------------------------
    async def _probe_loop(self) -> None:
        try:
            while not self._shutdown.is_set():
                await asyncio.sleep(self.config.probe_interval)
                await self._probe_all()
        except asyncio.CancelledError:
            pass

    async def _probe_all(self, initial: bool = False) -> None:
        loop = asyncio.get_running_loop()

        async def one(worker: UpstreamWorker) -> None:
            if worker.process is not None and not worker.process.alive():
                ok = False      # supervised process died: skip the TCP probe
            else:
                ok = await loop.run_in_executor(self._executor,
                                                worker.probe)
            self._note_probe(worker, ok, initial=initial)

        await asyncio.gather(*(one(worker)
                               for worker in list(self.workers.values())),
                             return_exceptions=True)

    def _note_probe(self, worker: UpstreamWorker, ok: bool,
                    initial: bool = False) -> None:
        if ok:
            worker.consecutive_failures = 0
            if not worker.healthy:
                worker.healthy = True
                if not initial:
                    self.metrics.readmissions += 1
                self._rebuild_ring()
        else:
            worker.consecutive_failures += 1
            if worker.healthy and (
                    initial or worker.consecutive_failures
                    >= self.config.fail_after):
                worker.healthy = False
                if not initial:
                    self.metrics.ejections += 1
                self._rebuild_ring()

    def _mark_failed(self, worker: UpstreamWorker) -> None:
        """Immediate ejection on a transport failure mid-request."""
        worker.consecutive_failures = max(worker.consecutive_failures,
                                          self.config.fail_after)
        if worker.healthy:
            worker.healthy = False
            self.metrics.ejections += 1
            self._rebuild_ring()

    # -- one connection ----------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            while not self._shutdown.is_set():
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(encode(error_response(
                        None, protocol.BAD_REQUEST,
                        "request exceeds size limit")))
                    await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                response = await self._handle_line(line)
                writer.write(response if isinstance(response, bytes)
                             else encode(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError,
                asyncio.CancelledError):
            pass
        finally:
            self._connections.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError,
                    RuntimeError):
                pass

    async def _handle_line(self, line: bytes
                           ) -> Union[bytes, dict[str, Any]]:
        started = time.perf_counter()
        # the router-only admin op is peeled off before protocol
        # validation; everything else goes through the same
        # parse_request as a worker, so malformed requests earn
        # byte-identical errors here or there
        admin = self._maybe_admin(line)
        if admin is not None:
            return admin
        try:
            request = protocol.parse_request(line)
        except ProtocolError as exc:
            self.metrics.record_local_error(exc.code)
            return error_response(None, exc.code, exc.message)
        if request.op == "health":
            return ok_response(request.id, self._health())
        if request.op == "metrics":
            return ok_response(request.id, await self._cluster_metrics())
        if request.op == "shutdown":
            self.request_stop()
            return ok_response(request.id, {"stopping": True})
        response = await self._route(request, line)
        if isinstance(response, bytes):
            self.metrics.record_routed(request.op,
                                       time.perf_counter() - started)
        return response

    # -- routing -------------------------------------------------------
    def _pick(self, key: Optional[str],
              tried: set[str]) -> Optional[UpstreamWorker]:
        if key is not None:
            for address in self.ring.nodes_for(key):
                if address in tried:
                    continue
                worker = self.workers.get(address)
                if worker is not None and worker.eligible:
                    return worker
            return None
        eligible = [worker for worker in self.workers.values()
                    if worker.eligible and worker.address not in tried]
        if not eligible:
            return None
        lowest = min(worker.in_flight for worker in eligible)
        candidates = [worker for worker in eligible
                      if worker.in_flight == lowest]
        self._rr += 1
        return candidates[self._rr % len(candidates)]

    async def _route(self, request: Request, line: bytes
                     ) -> Union[bytes, dict[str, Any]]:
        loop = asyncio.get_running_loop()
        idempotent = request.op in protocol.CACHEABLE_OPS
        attempts = self.config.max_attempts if idempotent else 1
        # the socket bound must outlive the worker's own wait-timeout
        # enforcement so "timeout" errors come back on the wire
        timeout = max(self.config.upstream_timeout,
                      request.timeout or 0.0) + 5.0
        tried: set[str] = set()
        failure = "no healthy upstream workers"
        for attempt in range(attempts):
            worker = self._pick(request.key, tried)
            if worker is None:
                break
            tried.add(worker.address)
            if attempt:
                self.metrics.failovers += 1
            try:
                raw = await loop.run_in_executor(
                    self._executor, worker.transact, line, timeout)
            except (ServiceError, OSError, ValueError) as exc:
                self.metrics.upstream_failures += 1
                failure = f"upstream {worker.address}: {exc}"
                self._mark_failed(worker)
                continue
            if idempotent and b'"code":"shutting_down"' in raw:
                # mid-shutdown worker: a membership event, not an error
                self.metrics.upstream_failures += 1
                failure = f"upstream {worker.address}: shutting down"
                self._mark_failed(worker)
                continue
            return raw
        self.metrics.record_local_error(protocol.UNAVAILABLE)
        return error_response(request.id, protocol.UNAVAILABLE, failure)

    # -- control + admin ops ---------------------------------------------
    def _maybe_admin(self, line: bytes
                     ) -> Optional[dict[str, Any]]:
        """Handle the router-only ``cluster`` op; None otherwise."""
        try:
            obj = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return None     # parse_request will answer bad_request
        if not isinstance(obj, dict) or obj.get("op") != "cluster":
            return None
        self.metrics.admin_ops += 1
        rid = obj.get("id")
        version = obj.get("version", protocol.PROTOCOL_VERSION)
        if version != protocol.PROTOCOL_VERSION:
            return error_response(
                None, protocol.BAD_REQUEST,
                f"unsupported protocol version: {version!r}")
        params = obj.get("params") or {}
        if not isinstance(params, dict):
            return error_response(rid, protocol.BAD_REQUEST,
                                  "request field 'params' must be "
                                  "an object")
        action = params.get("action", "status")
        if action == "status":
            return ok_response(rid, self._status())
        if action not in ("drain", "undrain"):
            return error_response(
                rid, protocol.BAD_REQUEST,
                f"unknown cluster action {action!r}; valid: "
                f"status, drain, undrain")
        worker = self.workers.get(params.get("worker", ""))
        if worker is None:
            return error_response(
                rid, protocol.BAD_REQUEST,
                f"unknown worker {params.get('worker')!r}; known: "
                f"{', '.join(sorted(self.workers))}")
        if action == "drain" and not worker.draining:
            worker.draining = True
            self.metrics.drains += 1
            self._rebuild_ring()
        elif action == "undrain" and worker.draining:
            worker.draining = False
            self._rebuild_ring()
        return ok_response(rid, worker.describe())

    def _ring_info(self) -> dict[str, Any]:
        return {"nodes": self.ring.nodes,
                "replicas": self.config.replicas,
                "vnodes": self.ring.vnodes}

    def _health(self) -> dict[str, Any]:
        rows = [worker.describe() for worker in self.workers.values()]
        return {
            "status": "ok",
            "role": "router",
            "version": __version__,
            "protocol_version": protocol.PROTOCOL_VERSION,
            "uptime_s": round(time.time() - self.metrics.started_at, 3),
            "workers": {
                "total": len(rows),
                "healthy": sum(1 for row in rows if row["healthy"]),
                "draining": sum(1 for row in rows if row["draining"]),
            },
            "ring": self._ring_info(),
        }

    def _status(self) -> dict[str, Any]:
        return {
            "role": "router",
            "uptime_s": round(time.time() - self.metrics.started_at, 3),
            "ring": self._ring_info(),
            "workers": [worker.describe()
                        for worker in self.workers.values()],
            "router": self.metrics.snapshot(),
        }

    async def _cluster_metrics(self) -> dict[str, Any]:
        loop = asyncio.get_running_loop()

        async def fetch(worker: UpstreamWorker):
            try:
                return await loop.run_in_executor(
                    self._executor, worker.fetch_metrics)
            except Exception:
                return None

        workers = list(self.workers.values())
        snapshots = await asyncio.gather(*(fetch(worker)
                                           for worker in workers))
        rows = [dict(worker.describe(), metrics=snapshot)
                for worker, snapshot in zip(workers, snapshots)]
        return {
            "role": "router",
            "uptime_s": round(time.time() - self.metrics.started_at, 3),
            "ring": self._ring_info(),
            "cluster": aggregate_worker_metrics(rows),
            "workers": rows,
            "router": self.metrics.snapshot(),
        }


# -- entry points ----------------------------------------------------

def run_router(config: Optional[RouterConfig] = None,
               upstreams: tuple = (),
               processes: Optional[dict[str, Any]] = None,
               stats: bool = False) -> dict[str, Any]:
    """Blocking router loop; returns the final status snapshot."""
    config = config or RouterConfig()
    holder: dict[str, Any] = {}

    async def main() -> None:
        router = AnalysisRouter(config, tuple(upstreams), processes)
        await router.start()
        # parsed by scripts/service_smoke.py — keep the format stable
        print(f"repro cluster listening on "
              f"{router.host}:{router.port} "
              f"fronting {len(router.workers)} worker(s)", flush=True)
        try:
            await router.serve_until_shutdown()
        finally:
            holder["snapshot"] = router._status()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    snapshot = holder.get("snapshot", {})
    if stats and snapshot:
        print(json.dumps(snapshot, indent=2))
    return snapshot


class RouterHandle:
    """A router running on a background thread (tests/benchmarks)."""

    def __init__(self, router: AnalysisRouter, loop, thread):
        self.router = router
        self._loop = loop
        self._thread = thread

    @property
    def host(self) -> str:
        return self.router.host

    @property
    def port(self) -> int:
        return self.router.port

    @property
    def address(self) -> str:
        return f"{self.router.host}:{self.router.port}"

    def stop(self, timeout: float = 10.0) -> None:
        try:
            self._loop.call_soon_threadsafe(self.router.request_stop)
        except RuntimeError:
            pass
        self._thread.join(timeout)

    def __enter__(self) -> "RouterHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def route_in_thread(config: Optional[RouterConfig] = None,
                    upstreams: tuple = (),
                    processes: Optional[dict[str, Any]] = None
                    ) -> RouterHandle:
    """Start a router on a daemon thread; block until it listens."""
    config = config or RouterConfig(port=0)
    ready = threading.Event()
    box: dict[str, Any] = {}

    def runner() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        router = AnalysisRouter(config, tuple(upstreams), processes)
        box["loop"] = loop
        box["router"] = router

        async def main() -> None:
            await router.start()
            ready.set()
            await router.serve_until_shutdown()

        try:
            loop.run_until_complete(main())
        except Exception as exc:
            box["error"] = exc
            ready.set()
        finally:
            loop.close()

    thread = threading.Thread(target=runner,
                              name="repro-router", daemon=True)
    thread.start()
    ready.wait(30.0)
    if "error" in box:
        raise box["error"]
    if not ready.is_set():
        raise RuntimeError("router failed to start within 30s")
    return RouterHandle(box["router"], box["loop"], thread)


class ClusterHandle:
    """An in-thread cluster: one router + N in-thread workers."""

    def __init__(self, router: RouterHandle, workers: list):
        self.router = router
        self.workers = workers

    @property
    def host(self) -> str:
        return self.router.host

    @property
    def port(self) -> int:
        return self.router.port

    @property
    def address(self) -> str:
        return self.router.address

    def stop(self) -> None:
        self.router.stop()
        for worker in self.workers:
            worker.stop()

    def __enter__(self) -> "ClusterHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def cluster_in_thread(num_workers: int = 2, *,
                      router_config: Optional[RouterConfig] = None,
                      worker_config=None) -> ClusterHandle:
    """One router + ``num_workers`` in-thread workers (tests, fuzzing).

    Workers default to single-thread pools with the disk tier off so a
    throwaway cluster leaves no shared state behind.
    """
    from repro.service.server import ServerConfig, serve_in_thread
    if worker_config is None:
        worker_config = ServerConfig(port=0, workers=0,
                                     use_disk_cache=False)
    workers = []
    try:
        for _ in range(num_workers):
            workers.append(serve_in_thread(replace(worker_config,
                                                   port=0)))
        router = route_in_thread(
            router_config or RouterConfig(port=0, probe_interval=0.25),
            tuple(handle.address for handle in workers))
    except BaseException:
        for handle in workers:
            handle.stop()
        raise
    return ClusterHandle(router, workers)
