"""Consistent hash ring: deterministic, cache-aware key placement.

Each worker contributes ``replicas`` virtual nodes at sha256-derived
positions on a 64-bit ring; a request key (the content hash from
:func:`repro.service.protocol.request_key`) lands on the first virtual
node clockwise from its own hash.  Properties the router relies on:

* **determinism** — positions come from :mod:`hashlib`, never from
  ``hash()``, so every process (router restarts, test subprocesses)
  computes identical placements;
* **warm affinity** — a repeated key maps to the same worker for as
  long as that worker stays in the ring, so its memory-tier result
  cache is already hot;
* **bounded remapping** — adding a worker moves only the ≈K/N keys
  that now fall to the new worker's virtual nodes, and removing one
  moves only the keys it owned; every other key keeps its placement
  (and its warm cache).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Optional


def _point(data: str) -> int:
    """A stable 64-bit ring position for one string."""
    return int.from_bytes(hashlib.sha256(data.encode()).digest()[:8],
                          "big")


class HashRing:
    """Sorted ring of (position, node) virtual-node pairs."""

    def __init__(self, nodes: Iterable[str] = (), *, replicas: int = 64):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._nodes: set[str] = set()
        self._ring: list[tuple[int, str]] = []
        for node in nodes:
            self.add(node)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    @property
    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    @property
    def vnodes(self) -> int:
        return len(self._ring)

    def add(self, node: str) -> None:
        if node in self._nodes:
            return
        self._nodes.add(node)
        for index in range(self.replicas):
            bisect.insort(self._ring, (_point(f"{node}#{index}"), node))

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        self._ring = [entry for entry in self._ring if entry[1] != node]

    def node_for(self, key: str) -> Optional[str]:
        """The node owning ``key`` (None on an empty ring)."""
        owners = self.nodes_for(key, count=1)
        return owners[0] if owners else None

    def nodes_for(self, key: str,
                  count: Optional[int] = None) -> list[str]:
        """Up to ``count`` distinct nodes in ring order from ``key``.

        The first entry is the key's owner; the rest are the failover
        successors, in the order an idempotent request should retry.
        """
        if not self._ring:
            return []
        if count is None:
            count = len(self._nodes)
        start = bisect.bisect_left(self._ring, (_point(key), ""))
        owners: list[str] = []
        seen: set[str] = set()
        size = len(self._ring)
        for step in range(size):
            node = self._ring[(start + step) % size][1]
            if node not in seen:
                seen.add(node)
                owners.append(node)
                if len(owners) >= count:
                    break
        return owners
