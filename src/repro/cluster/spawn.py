"""Spawn-and-supervise local worker server subprocesses.

``python -m repro cluster --workers N --spawn`` fronts N fresh
``python -m repro serve`` subprocesses on ephemeral ports.  Each
:class:`WorkerProcess` owns one subprocess: it parses the server's
listening banner for the bound address, exposes liveness for the
router's supervision probe (a dead process is ejected from the ring
without waiting for a TCP timeout), and tears down with a best-effort
``shutdown`` op before escalating to terminate/kill.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path
from typing import Optional

_BANNER = "repro service listening on "


def _worker_env() -> dict[str, str]:
    """Inherited environment with the repro package importable."""
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[2])
    path = env.get("PYTHONPATH")
    if not path:
        env["PYTHONPATH"] = src_root
    elif src_root not in path.split(os.pathsep):
        env["PYTHONPATH"] = src_root + os.pathsep + path
    return env


class WorkerProcess:
    """One supervised ``repro serve`` subprocess."""

    def __init__(self, *, pool_workers: int = 0,
                 disk_cache: bool = True,
                 cache_dir: Optional[str] = None,
                 queue_size: Optional[int] = None):
        command = [sys.executable, "-m", "repro", "serve",
                   "--port", "0", "--workers", str(pool_workers)]
        if not disk_cache:
            command.append("--no-disk-cache")
        if cache_dir:
            command += ["--cache-dir", str(cache_dir)]
        if queue_size is not None:
            command += ["--queue-size", str(queue_size)]
        self.proc = subprocess.Popen(command, stdout=subprocess.PIPE,
                                     text=True, env=_worker_env())
        banner = (self.proc.stdout.readline() or "").strip()
        if not banner.startswith(_BANNER):
            self.kill()
            raise RuntimeError(
                f"worker failed to start (banner: {banner!r})")
        self.address = banner[len(_BANNER):].strip()

    @property
    def pid(self) -> int:
        return self.proc.pid

    def alive(self) -> bool:
        return self.proc.poll() is None

    def stop(self, timeout: float = 10.0) -> None:
        """Graceful shutdown op, then terminate, then kill."""
        if self.alive():
            from repro.service.client import ServiceClient, ServiceError
            try:
                ServiceClient.connect(self.address,
                                      timeout=5.0).shutdown()
            except (ServiceError, OSError, ValueError):
                pass
            try:
                self.proc.wait(timeout)
            except subprocess.TimeoutExpired:
                self.proc.terminate()
                try:
                    self.proc.wait(5.0)
                except subprocess.TimeoutExpired:
                    self.kill()
        if self.proc.stdout is not None:
            self.proc.stdout.close()

    def kill(self) -> None:
        if self.alive():
            self.proc.kill()
            self.proc.wait()
        if self.proc.stdout is not None:
            self.proc.stdout.close()


def spawn_workers(count: int, *, pool_workers: int = 0,
                  disk_cache: bool = True,
                  cache_dir: Optional[str] = None) -> list[WorkerProcess]:
    """Spawn ``count`` local workers; kill all on any startup failure."""
    workers: list[WorkerProcess] = []
    try:
        for _ in range(count):
            workers.append(WorkerProcess(pool_workers=pool_workers,
                                         disk_cache=disk_cache,
                                         cache_dir=cache_dir))
    except BaseException:
        for worker in workers:
            worker.kill()
        raise
    return workers
