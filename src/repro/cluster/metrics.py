"""Router metrics and cluster-wide aggregation.

:class:`RouterMetrics` mirrors the worker-side
:class:`~repro.service.metrics.ServiceMetrics` discipline — cheap
in-process counters plus bounded latency windows — but counts routing
events: per-op forwarded requests and round-trip latency through the
router, failovers, upstream failures, ring ejections/re-admissions,
drains and locally answered protocol errors.

:func:`aggregate_worker_metrics` folds the per-worker ``metrics``
snapshots the router fetches into one cluster view: summed request /
error / cache / batching counters, a combined cache hit rate, summed
queue-depth and in-flight gauges, and per-op latency percentiles
aggregated as count-weighted means plus worst-worker maxima (exact
percentile merging needs the raw samples; min/mean/max of per-worker
percentiles is the honest summary of what the router can see).
"""

from __future__ import annotations

import time
from collections import Counter, deque
from typing import Any, Optional

from repro.service.metrics import percentile

_WINDOW = 2048


class RouterMetrics:
    """Mutable counters for one router instance."""

    def __init__(self):
        self.started_at = time.time()
        self.routed_by_op: Counter = Counter()
        self.failovers = 0            # retries onto another ring node
        self.upstream_failures = 0    # transport/shutdown upstream errors
        self.ejections = 0            # healthy -> unhealthy transitions
        self.readmissions = 0         # unhealthy -> healthy transitions
        self.drains = 0               # drain admin ops honoured
        self.admin_ops = 0
        self.local_errors: Counter = Counter()   # answered at the router
        self._latency_s: dict[str, deque] = {}

    # -- recording ---------------------------------------------------
    def record_routed(self, op: str, elapsed_s: float) -> None:
        self.routed_by_op[op] += 1
        window = self._latency_s.setdefault(op, deque(maxlen=_WINDOW))
        window.append(elapsed_s)

    def record_local_error(self, code: str) -> None:
        self.local_errors[code] += 1

    # -- snapshot ----------------------------------------------------
    def latency_summary(self) -> dict[str, dict[str, float]]:
        summary = {}
        for op, window in sorted(self._latency_s.items()):
            values = sorted(window)
            summary[op] = {
                "count": len(values),
                "p50_ms": round(percentile(values, 0.50) * 1e3, 3),
                "p90_ms": round(percentile(values, 0.90) * 1e3, 3),
                "p99_ms": round(percentile(values, 0.99) * 1e3, 3),
                "max_ms": round(max(values) * 1e3, 3),
            }
        return summary

    def snapshot(self) -> dict[str, Any]:
        return {
            "uptime_s": round(time.time() - self.started_at, 3),
            "routed": {
                "total": sum(self.routed_by_op.values()),
                "by_op": dict(sorted(self.routed_by_op.items())),
            },
            "latency": self.latency_summary(),
            "failovers": self.failovers,
            "upstream_failures": self.upstream_failures,
            "ejections": self.ejections,
            "readmissions": self.readmissions,
            "drains": self.drains,
            "admin_ops": self.admin_ops,
            "local_errors": dict(sorted(self.local_errors.items())),
        }


def aggregate_worker_metrics(rows: list[dict[str, Any]]
                             ) -> dict[str, Any]:
    """Fold per-worker describe+snapshot rows into cluster totals.

    ``rows`` entries are :meth:`UpstreamWorker.describe` dicts with an
    extra ``"metrics"`` key holding that worker's ``metrics`` snapshot
    (or None when it was unreachable).
    """
    reporting = [row["metrics"] for row in rows if row.get("metrics")]
    totals: dict[str, Any] = {
        "workers": {
            "total": len(rows),
            "healthy": sum(1 for row in rows if row["healthy"]),
            "draining": sum(1 for row in rows if row["draining"]),
            "reporting": len(reporting),
        },
        "requests": {"total": 0, "ok": 0, "in_flight": 0},
        "errors": {"total": 0},
        "cache": {"entries": 0, "memory_hits": 0, "disk_hits": 0,
                  "misses": 0, "evictions": 0, "hit_rate": 0.0},
        "queue": {"depth": 0, "peak": 0},
        "batching": {"computations": 0, "coalesced_requests": 0,
                     "merged_simulate_requests": 0},
        "profile_store": {
            "sweep_memory_hits": 0, "sweep_disk_hits": 0,
            "sweep_misses": 0, "sweep_puts": 0,
            "analytic_memory_hits": 0, "analytic_disk_hits": 0,
            "analytic_misses": 0, "analytic_puts": 0,
            "hit_rate": 0.0,
        },
        "latency": {},
    }
    acc: dict[str, list[dict[str, float]]] = {}
    for snapshot in reporting:
        requests = snapshot.get("requests", {})
        totals["requests"]["total"] += requests.get("total", 0)
        totals["requests"]["ok"] += requests.get("ok", 0)
        totals["requests"]["in_flight"] += requests.get("in_flight", 0)
        totals["errors"]["total"] += \
            snapshot.get("errors", {}).get("total", 0)
        cache = snapshot.get("cache", {})
        for field in ("entries", "memory_hits", "disk_hits", "misses",
                      "evictions"):
            totals["cache"][field] += cache.get(field, 0)
        queue = snapshot.get("queue", {})
        totals["queue"]["depth"] += queue.get("depth", 0)
        totals["queue"]["peak"] = max(totals["queue"]["peak"],
                                      queue.get("peak", 0))
        batching = snapshot.get("batching", {})
        for field in ("computations", "coalesced_requests",
                      "merged_simulate_requests"):
            totals["batching"][field] += batching.get(field, 0)
        profile_store = snapshot.get("profile_store", {})
        for field in totals["profile_store"]:
            if field != "hit_rate":
                totals["profile_store"][field] += \
                    profile_store.get(field, 0)
        for op, entry in snapshot.get("latency", {}).items():
            acc.setdefault(op, []).append(entry)
    cache = totals["cache"]
    lookups = cache["memory_hits"] + cache["disk_hits"] + cache["misses"]
    if lookups:
        cache["hit_rate"] = round(
            (cache["memory_hits"] + cache["disk_hits"]) / lookups, 4)
    store = totals["profile_store"]
    store_hits = (store["sweep_memory_hits"] + store["sweep_disk_hits"]
                  + store["analytic_memory_hits"]
                  + store["analytic_disk_hits"])
    store_lookups = store_hits + store["sweep_misses"] \
        + store["analytic_misses"]
    if store_lookups:
        store["hit_rate"] = round(store_hits / store_lookups, 4)
    for op, entries in sorted(acc.items()):
        count = sum(entry.get("count", 0) for entry in entries)
        merged: dict[str, float] = {"count": count}
        for field in ("p50_ms", "p90_ms", "p99_ms"):
            values = [entry[field] for entry in entries
                      if field in entry]
            if not values:
                continue
            weights = [max(1, entry.get("count", 1))
                       for entry in entries if field in entry]
            mean = sum(v * w for v, w in zip(values, weights)) \
                / sum(weights)
            merged[field] = round(mean, 3)
            merged[f"{field}_max"] = round(max(values), 3)
        merged["max_ms"] = round(max(
            (entry.get("max_ms", 0.0) for entry in entries),
            default=0.0), 3)
        totals["latency"][op] = merged
    return totals
