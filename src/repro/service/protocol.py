"""Wire protocol: versioned JSON-lines requests and responses.

One request per line, UTF-8, ``\\n``-terminated::

    {"id": 7, "op": "analyze", "params": {"source": "..."}}

One response per line, echoing ``id``::

    {"id": 7, "ok": true, "cached": "memory", "result": {...}}
    {"id": 7, "ok": false, "error": {"code": "timeout", "message": "..."}}

``version`` may be sent by clients that care; when present it must equal
:data:`PROTOCOL_VERSION`.  Request parameters are *normalized* before
hashing so that equivalent requests (defaults spelled out or omitted)
share one cache entry and coalesce onto one computation.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Optional

from repro.cache.config import BASELINE_CONFIG, CacheConfig
from repro.export import SCHEMA_VERSION, canonical_json
from repro.heuristic.classes import (DEFAULT_DELTA, PAPER_WEIGHTS, Weights)

#: Version of the request/response envelope.
PROTOCOL_VERSION = 1

#: Maximum accepted request line, bytes.  Oversized lines produce a
#: ``bad_request`` error instead of unbounded buffering.
MAX_REQUEST_BYTES = 32 * 1024 * 1024

#: Operations the server accepts.  ``sleep`` is a diagnostic op used by
#: the tests and benchmarks to exercise backpressure and timeouts.
OPS = ("analyze", "classify", "simulate", "predict", "tlb",
       "redundancy", "health", "metrics", "shutdown", "sleep")

#: Ops that run through the scheduler (queue, batching, worker pool).
SCHEDULED_OPS = ("analyze", "classify", "simulate", "predict", "tlb",
                 "redundancy", "sleep")

#: Scheduled ops whose results are cacheable.
CACHEABLE_OPS = ("analyze", "classify", "simulate", "predict", "tlb",
                 "redundancy")

# error codes
BAD_REQUEST = "bad_request"
UNKNOWN_OP = "unknown_op"
OVERLOADED = "overloaded"
TIMEOUT = "timeout"
INTERNAL = "internal"
SHUTTING_DOWN = "shutting_down"
#: emitted by the cluster router when no healthy worker can take a
#: request (all ejected/draining, or failover attempts exhausted)
UNAVAILABLE = "unavailable"


class ProtocolError(Exception):
    """A malformed or unsupported request."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code
        self.message = message


@dataclass(frozen=True)
class Request:
    """A validated, normalized request."""

    id: Any
    op: str
    params: dict[str, Any]
    timeout: Optional[float]

    @property
    def key(self) -> Optional[str]:
        """Content-hash cache/coalescing key (None: not cacheable)."""
        if self.op not in CACHEABLE_OPS:
            return None
        return request_key(self.op, self.params)


def request_key(op: str, normalized_params: dict[str, Any]) -> str:
    """Stable content hash of one (op, normalized params) pair."""
    text = canonical_json({
        "protocol": PROTOCOL_VERSION,
        "schema": SCHEMA_VERSION,
        "op": op,
        "params": normalized_params,
    })
    return hashlib.sha256(text.encode()).hexdigest()


def ok_response(request_id: Any, result: Any,
                cached: Optional[str] = None) -> dict[str, Any]:
    return {"id": request_id, "ok": True,
            "cached": cached if cached else False, "result": result}


def error_response(request_id: Any, code: str,
                   message: str) -> dict[str, Any]:
    return {"id": request_id, "ok": False,
            "error": {"code": code, "message": message}}


def encode(message: dict[str, Any]) -> bytes:
    """One response/request as a JSON line."""
    return (json.dumps(message, separators=(",", ":"),
                       sort_keys=False) + "\n").encode()


# -- request parsing -----------------------------------------------------

def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ProtocolError(BAD_REQUEST, message)


def _field(params: dict, name: str, kind, default):
    value = params.get(name, default)
    if kind is float and isinstance(value, int) \
            and not isinstance(value, bool):
        value = float(value)
    _require(isinstance(value, kind) and not isinstance(value, bool)
             or kind is bool and isinstance(value, bool),
             f"param {name!r} must be {kind.__name__}")
    return value


def _cache_config(params: dict) -> CacheConfig:
    raw = params.get("cache", None)
    if raw is None:
        return BASELINE_CONFIG
    _require(isinstance(raw, dict), "param 'cache' must be an object")
    unknown = set(raw) - {"size", "assoc", "block_size", "replacement"}
    _require(not unknown,
             f"unknown cache field(s): {', '.join(sorted(unknown))}")
    try:
        return CacheConfig(
            size=raw.get("size", BASELINE_CONFIG.size),
            assoc=raw.get("assoc", BASELINE_CONFIG.assoc),
            block_size=raw.get("block_size", BASELINE_CONFIG.block_size),
            replacement=raw.get("replacement", "lru"),
        )
    except (TypeError, ValueError) as exc:
        raise ProtocolError(BAD_REQUEST, f"bad cache config: {exc}")


def cache_config_to_dict(config: CacheConfig) -> dict[str, Any]:
    return {"size": config.size, "assoc": config.assoc,
            "block_size": config.block_size,
            "replacement": config.replacement}


def _normalize_analysis(params: dict, *, execute: bool) -> dict[str, Any]:
    """Normalized params for ``analyze`` (execute=True) / ``classify``."""
    source = params.get("source")
    _require(isinstance(source, str) and source.strip() != "",
             "param 'source' (MiniC text) is required")
    weights = params.get("weights")
    if weights is not None:
        _require(isinstance(weights, dict)
                 and all(isinstance(v, (int, float))
                         and not isinstance(v, bool)
                         for v in weights.values()),
                 "param 'weights' must map class names to numbers")
        try:
            weights = Weights.from_dict(
                {k: float(v) for k, v in weights.items()}).as_dict()
        except ValueError as exc:
            raise ProtocolError(BAD_REQUEST, str(exc))
    else:
        weights = PAPER_WEIGHTS.as_dict()
    return {
        "source": source,
        "optimize": _field(params, "optimize", bool, False),
        "execute": execute,
        "delta": _field(params, "delta", float, DEFAULT_DELTA),
        "weights": weights,
        "cache": cache_config_to_dict(_cache_config(params)),
        "max_steps": _field(params, "max_steps", int, 300_000_000),
    }


def _normalize_simulate(params: dict) -> dict[str, Any]:
    source = params.get("source")
    _require(isinstance(source, str) and source.strip() != "",
             "param 'source' (MiniC text) is required")
    raw_configs = params.get("configs")
    if raw_configs is None:
        configs = [BASELINE_CONFIG]
    else:
        _require(isinstance(raw_configs, list) and raw_configs,
                 "param 'configs' must be a non-empty list")
        configs = [_cache_config({"cache": entry})
                   for entry in raw_configs]
    # dedupe, order-preserving: replaying one config twice is never useful
    configs = list(dict.fromkeys(configs))
    return {
        "source": source,
        "optimize": _field(params, "optimize", bool, False),
        "configs": [cache_config_to_dict(c) for c in configs],
        "max_steps": _field(params, "max_steps", int, 300_000_000),
    }


def _normalize_predict(params: dict) -> dict[str, Any]:
    """``predict`` shares ``simulate``'s shape plus a fallback knob
    (``max_steps`` only matters when the fallback sweep actually runs,
    but stays in the key so a fallback-served entry is never replayed
    under a different execution budget)."""
    normalized = _normalize_simulate(params)
    normalized["fallback"] = _field(params, "fallback", bool, True)
    return normalized


def _tlb_config(entry: Any) -> "TlbConfig":
    from repro.tlb import TlbConfig
    _require(isinstance(entry, dict),
             "each TLB geometry must be an object")
    unknown = set(entry) - {"page_size", "entries", "assoc"}
    _require(not unknown,
             f"unknown TLB geometry field(s): "
             f"{', '.join(sorted(unknown))}")
    try:
        return TlbConfig(**entry)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(BAD_REQUEST, f"bad TLB geometry: {exc}")


def _normalize_tlb(params: dict) -> dict[str, Any]:
    """``tlb``: per-geometry dTLB stats plus the PCAX cross-tab.

    ``geometries`` mirrors ``simulate``'s ``configs`` (validated,
    deduped, defaults spelled out); ``threshold`` is the PCAX
    friendliness bar, evaluated at the first geometry's page size.
    """
    from repro.tlb import DEFAULT_THRESHOLD, TlbConfig
    source = params.get("source")
    _require(isinstance(source, str) and source.strip() != "",
             "param 'source' (MiniC text) is required")
    raw = params.get("geometries")
    if raw is None:
        configs = [TlbConfig()]
    else:
        _require(isinstance(raw, list) and raw,
                 "param 'geometries' must be a non-empty list")
        configs = [_tlb_config(entry) for entry in raw]
    configs = list(dict.fromkeys(configs))
    threshold = _field(params, "threshold", float, DEFAULT_THRESHOLD)
    _require(0.0 < threshold <= 1.0,
             "param 'threshold' must be in (0, 1]")
    return {
        "source": source,
        "optimize": _field(params, "optimize", bool, False),
        "geometries": [c.to_dict() for c in configs],
        "threshold": threshold,
        "max_steps": _field(params, "max_steps", int, 300_000_000),
    }


def _normalize_redundancy(params: dict) -> dict[str, Any]:
    source = params.get("source")
    _require(isinstance(source, str) and source.strip() != "",
             "param 'source' (MiniC text) is required")
    return {
        "source": source,
        "optimize": _field(params, "optimize", bool, False),
        "max_steps": _field(params, "max_steps", int, 300_000_000),
    }


def _normalize_sleep(params: dict) -> dict[str, Any]:
    seconds = _field(params, "seconds", float, 0.05)
    _require(0.0 <= seconds <= 60.0,
             "param 'seconds' must be in [0, 60]")
    return {"seconds": seconds}


def parse_request(line: bytes) -> Request:
    """Decode + validate + normalize one request line.

    Raises :class:`ProtocolError` on any malformation; the server turns
    that into a ``bad_request`` / ``unknown_op`` response.
    """
    if len(line) > MAX_REQUEST_BYTES:
        raise ProtocolError(BAD_REQUEST, "request exceeds size limit")
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        raise ProtocolError(BAD_REQUEST, "request is not valid JSON")
    _require(isinstance(obj, dict), "request must be a JSON object")
    version = obj.get("version", PROTOCOL_VERSION)
    _require(version == PROTOCOL_VERSION,
             f"unsupported protocol version: {version!r}")
    op = obj.get("op")
    _require(isinstance(op, str), "request field 'op' is required")
    if op not in OPS:
        raise ProtocolError(
            UNKNOWN_OP, f"unknown op {op!r}; valid ops: {', '.join(OPS)}")
    params = obj.get("params", {})
    _require(isinstance(params, dict),
             "request field 'params' must be an object")
    timeout = obj.get("timeout")
    if timeout is not None:
        _require(isinstance(timeout, (int, float))
                 and not isinstance(timeout, bool) and timeout > 0,
                 "request field 'timeout' must be a positive number")
        timeout = float(timeout)
    if op == "analyze":
        params = _normalize_analysis(params, execute=True)
    elif op == "classify":
        params = _normalize_analysis(params, execute=False)
    elif op == "simulate":
        params = _normalize_simulate(params)
    elif op == "predict":
        params = _normalize_predict(params)
    elif op == "tlb":
        params = _normalize_tlb(params)
    elif op == "redundancy":
        params = _normalize_redundancy(params)
    elif op == "sleep":
        params = _normalize_sleep(params)
    return Request(id=obj.get("id"), op=op, params=params,
                   timeout=timeout)
