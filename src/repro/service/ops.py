"""The compute behind the scheduled operations.

These functions are deliberately **pure and picklable** (module-level,
plain-dict in / plain-dict out) so the scheduler can run them unchanged
on a thread or in a persistent worker process.  ``analyze`` and
``classify`` return exactly :func:`repro.export.report_to_dict` of the
equivalent in-process :func:`repro.api.analyze_program` call — the wire
schema *is* the export schema, so batch files and served responses are
interchangeable.
"""

from __future__ import annotations

import time
from typing import Any

from repro.api import analyze_program
from repro.cache.config import CacheConfig
from repro.cache.stackdist import ProfileStore, simulate_sweep
from repro.compiler.driver import compile_source
from repro.export import report_to_dict
from repro.heuristic.classes import Weights
from repro.machine.simulator import Machine
from repro.pipeline.session import default_cache_dir
from repro.service import protocol
from repro.store.tracestore import (TraceStore, TraceStoreCorrupt,
                                    trace_key)

#: Stack-distance profiles for the merged ``simulate`` op, sharing the
#: pipeline/service warm directory: a re-sweep of a known program with
#: new LRU geometries is answered from histograms, not a trace replay.
_PROFILE_STORE = ProfileStore(disk_dir=default_cache_dir() / "stackdist")

#: Chunked trace store shared with the pipeline session (same content
#: keys): a ``simulate`` request for a known program skips execution
#: entirely and streams the stored trace; a cold request streams its
#: execution into the store, so the server never holds a whole trace
#: per request.
_TRACE_STORE = TraceStore(default_cache_dir() / "traces")


def run_analysis(params: dict[str, Any]) -> dict[str, Any]:
    """``analyze`` / ``classify``: the full pipeline, export schema out.

    ``params`` must be normalized (see ``protocol._normalize_analysis``);
    ``execute=False`` is the purely static ``classify`` configuration.
    """
    report = analyze_program(
        params["source"],
        optimize=params["optimize"],
        execute=params["execute"],
        cache=CacheConfig(**params["cache"]),
        weights=Weights.from_dict(params["weights"]),
        delta=params["delta"],
        max_steps=params["max_steps"],
    )
    return report_to_dict(report)


class _TraceHandle:
    """One workload's trace, acquired store-first, replayed many ways.

    Shared by every op that needs an access trace (``simulate``,
    ``tlb``, ``redundancy``): a repeat request for the same (source,
    optimize, max_steps) skips execution and streams the stored
    chunks, a cold request streams its execution into the store, and a
    corrupt entry is dropped and re-executed materialized.  The
    ``block_counts`` come from the stored meta on a store hit and from
    the execution itself otherwise, so callers see identical profile
    facts either way.
    """

    def __init__(self, params: dict[str, Any]):
        self.program = compile_source(params["source"],
                                      optimize=params["optimize"])
        self._params = params
        self._key = trace_key(params["source"], params["optimize"],
                              params["max_steps"])
        self.steps = 0
        self.block_counts: dict[int, int] = {}
        self._source = None

    def _execute(self, streaming: bool):
        """One execution; streamed into the store when possible."""
        # The engine knob is an operator-side switch (params may carry
        # it, e.g. from $REPRO_ENGINE on the server); it is absent from
        # request/cache/store keys because both engines are
        # bit-identical.
        machine = Machine(self.program, trace_memory=True,
                          max_steps=self._params["max_steps"],
                          engine=self._params.get("engine"))
        writer = None
        if streaming:
            try:
                writer = _TRACE_STORE.writer(self._key)
            except OSError:
                writer = None
        if writer is None:
            execution = machine.run()
            self._adopt(execution)
            return execution.trace
        try:
            execution = machine.run_streaming(writer)
        except BaseException:
            writer.abort()
            raise
        try:
            writer.close(block_counts=execution.block_counts,
                         steps=execution.steps,
                         exit_code=execution.exit_code,
                         output=execution.output)
        except OSError:
            _TRACE_STORE.delete(self._key)
        self._adopt(execution)
        return _TRACE_STORE.open(self._key)

    def _adopt(self, execution) -> None:
        self.steps = execution.steps
        self.block_counts = dict(execution.block_counts)

    def source(self):
        """The cheapest replayable trace source (store stream first)."""
        if self._source is None:
            self._source = _TRACE_STORE.open(self._key)
            if self._source is not None:
                meta = _TRACE_STORE.meta(self._key)
                self.steps = int(meta["steps"])
                self.block_counts = {
                    int(a): int(c)
                    for a, c in (meta.get("block_counts")
                                 or {}).items()}
            else:
                self._source = self._execute(streaming=True)
                if self._source is None:
                    self._source = self._execute(streaming=False)
        return self._source

    def replay(self, compute):
        """``compute(source)`` with the corrupt-store fallback."""
        try:
            return compute(self.source())
        except TraceStoreCorrupt:
            _TRACE_STORE.delete(self._key)
            self._source = self._execute(streaming=False)
            return compute(self._source)


def run_simulate(params: dict[str, Any]) -> dict[str, Any]:
    """``simulate``: at most one execution ever, streamed replays.

    Routes through the dispatching sweep engine
    (:func:`repro.cache.stackdist.simulate_sweep`): a request for N
    configs — or N batched requests for one config each — costs at most
    one trace pass, and LRU geometry sweeps collapse to one pass per
    set mapping with the per-PC distance profile cached on disk.  The
    trace itself comes from the shared :class:`_TraceHandle` (chunked
    trace store, one execution ever).
    """
    configs = [CacheConfig(**entry) for entry in params["configs"]]
    handle = _TraceHandle(params)
    program = handle.program
    sweep = handle.replay(
        lambda source: simulate_sweep(source, configs,
                                      store=_PROFILE_STORE))
    steps = handle.steps
    results = []
    for config, stats in zip(configs, sweep):
        results.append({
            "config": protocol.cache_config_to_dict(config),
            "description": config.describe(),
            "total_load_misses": stats.total_load_misses,
            "total_load_accesses": sum(stats.load_accesses.values()),
            "load_misses": {f"{a:#x}": m for a, m in
                            sorted(stats.load_misses.items())},
            "load_accesses": {f"{a:#x}": m for a, m in
                              sorted(stats.load_accesses.items())},
            # Full per-PC store and prefetch columns: remote campaign
            # cells rebuild a complete CacheStats from this response.
            "store_misses": {f"{a:#x}": m for a, m in
                             sorted(stats.store_misses.items())},
            "store_accesses": {f"{a:#x}": m for a, m in
                               sorted(stats.store_accesses.items())},
            "prefetch_ops": stats.prefetch_ops,
            "prefetch_fills": stats.prefetch_fills,
        })
    response = {
        "steps": steps,
        "num_loads": program.num_loads(),
        "results": results,
    }
    # The block profile lets remote callers reconstruct the
    # BlockProfile (hotspot loads, exec counts) without executing.
    if handle.block_counts:
        response["block_counts"] = {str(a): int(c) for a, c in
                                    handle.block_counts.items()}
    return response


def run_predict(params: dict[str, Any]) -> dict[str, Any]:
    """``predict``: per-PC misses for every config, zero executions.

    Serves LRU geometries from the analytic reuse profile (cached in
    the profile store's ``an-`` keyspace, keyed by program content).
    When static coverage is below the confidence threshold — pointer
    chasing, unresolved trip counts — the request degrades to the
    measured ``simulate`` path unless ``fallback`` is off, in which
    case the low-coverage prediction is returned as-is with its
    confidence reported.  Either way the per-config result rows mirror
    ``simulate``'s schema, plus the analytic provenance fields.
    """
    import hashlib

    from repro.analytic import predict_profile

    program = compile_source(params["source"],
                             optimize=params["optimize"])
    configs = [CacheConfig(**entry) for entry in params["configs"]]
    digest = hashlib.sha1("|".join(
        ("analytic-1", params["source"],
         str(params["optimize"]))).encode()).hexdigest()
    profiles: dict[int, Any] = {}
    for config in configs:
        if config.block_size in profiles:
            continue
        profile = _PROFILE_STORE.get_analytic(digest, config.block_size)
        if profile is None:
            profile = predict_profile(program,
                                      block_size=config.block_size)
            _PROFILE_STORE.put_analytic(digest, config.block_size,
                                        profile)
        profiles[config.block_size] = profile
    coverage = min((p.coverage for p in profiles.values()), default=0.0)
    supported = all(c.replacement == "lru" for c in configs)
    confident = supported and all(p.confident
                                  for p in profiles.values())
    if not confident and params["fallback"]:
        response = run_simulate(params)
        response["analytic"] = False
        response["coverage"] = coverage
        return response
    low: dict[int, tuple] = {}
    for profile in profiles.values():
        low.update(profile.low_confidence_pcs())
    results = []
    for config in configs:
        stats = profiles[config.block_size].evaluate(config)
        results.append({
            "config": protocol.cache_config_to_dict(config),
            "description": config.describe(),
            "total_load_misses": stats.total_load_misses,
            "total_load_accesses": sum(stats.load_accesses.values()),
            "load_misses": {f"{a:#x}": m for a, m in
                            sorted(stats.load_misses.items())},
            "load_accesses": {f"{a:#x}": m for a, m in
                              sorted(stats.load_accesses.items())},
        })
    return {
        "steps": 0,                       # no machine execution
        "num_loads": program.num_loads(),
        "results": results,
        "analytic": True,
        "coverage": coverage,
        "low_confidence_pcs": {f"{pc:#x}": list(reasons)
                               for pc, reasons in sorted(low.items())},
    }


def _delinquent_set(handle: _TraceHandle) -> set[int]:
    """The heuristic's delinquent set for one traced workload.

    Exec counts and hotspots come from the block profile the
    :class:`_TraceHandle` guarantees (stored meta or the execution
    itself), so the set is identical on cold and store-warmed paths.
    """
    from repro.heuristic.classifier import DelinquencyClassifier
    from repro.patterns.builder import build_load_infos
    from repro.profiling.profile import BlockProfile
    load_infos = build_load_infos(handle.program)
    exec_counts = None
    hotspots = None
    if handle.block_counts:
        profile = BlockProfile.from_block_counts(handle.program,
                                                 handle.block_counts)
        exec_counts = profile.load_exec_counts()
        hotspots = profile.hotspot_loads()
    classifier = DelinquencyClassifier()
    return classifier.classify(load_infos, exec_counts,
                               hotspots).delinquent_set


def run_tlb(params: dict[str, Any]) -> dict[str, Any]:
    """``tlb``: per-geometry dTLB stats plus the PCAX cross-tab.

    Rides the same sweep engine and trace store as ``simulate`` — the
    per-PC distance histograms for each page size persist beside the
    cache sweeps' — and evaluates the PCAX predictor at the first
    geometry's page size, cross-tabulating PCAX-friendly loads against
    the paper's delinquent set.
    """
    from repro.tlb import (TlbConfig, pcax_crosstab, pcax_profile,
                           simulate_tlb)
    configs = [TlbConfig(**entry) for entry in params["geometries"]]
    handle = _TraceHandle(params)
    sweep = handle.replay(
        lambda source: simulate_tlb(source, configs,
                                    store=_PROFILE_STORE))
    results = []
    for stats in sweep:
        results.append({
            "geometry": stats.config.to_dict(),
            "description": stats.config.describe(),
            "total_accesses": stats.total_accesses,
            "total_misses": stats.total_misses,
            "miss_rate": stats.miss_rate,
            "load_misses": {f"{a:#x}": m for a, m in
                            sorted(stats.load_misses.items())},
            "load_accesses": {f"{a:#x}": m for a, m in
                              sorted(stats.load_accesses.items())},
            "store_misses": {f"{a:#x}": m for a, m in
                             sorted(stats.store_misses.items())},
            "store_accesses": {f"{a:#x}": m for a, m in
                               sorted(stats.store_accesses.items())},
        })
    page_size = configs[0].page_size
    profile = handle.replay(
        lambda source: pcax_profile(source, page_size=page_size,
                                    threshold=params["threshold"]))
    friendly = profile.friendly_set()
    delinquent = _delinquent_set(handle)
    universe = set(profile.loads)
    return {
        "steps": handle.steps,
        "num_loads": handle.program.num_loads(),
        "results": results,
        "pcax": {
            "page_size": page_size,
            "threshold": params["threshold"],
            "loads": {f"{pc:#x}": {"accesses": load.accesses,
                                   "predicted": load.predicted,
                                   "ratio": load.ratio}
                      for pc, load in sorted(profile.loads.items())},
            "friendly": [f"{pc:#x}" for pc in sorted(friendly)],
            "delinquent": [f"{pc:#x}" for pc in sorted(delinquent)],
            "crosstab": pcax_crosstab(friendly, delinquent, universe),
        },
    }


def run_redundancy(params: dict[str, Any]) -> dict[str, Any]:
    """``redundancy``: per-PC redundant-load counts plus AG cross-tab.

    One streaming pass over the stored (or freshly streamed) trace;
    the AG-class attribution uses the same exec counts the heuristic
    sees, so the cross-tab matches what the tables print.
    """
    from repro.patterns.builder import build_load_infos
    from repro.profiling.profile import BlockProfile
    from repro.redundancy import ag_crosstab, analyze_redundancy
    handle = _TraceHandle(params)
    stats = handle.replay(analyze_redundancy)
    load_infos = build_load_infos(handle.program)
    load_exec: dict[int, int] = {}
    if handle.block_counts:
        profile = BlockProfile.from_block_counts(handle.program,
                                                 handle.block_counts)
        load_exec = profile.load_exec_counts()
    return {
        "steps": handle.steps,
        "num_loads": handle.program.num_loads(),
        "total_loads": stats.total_loads,
        "total_redundant": stats.total_redundant,
        "total_reload_after_store": stats.total_reload_after_store,
        "ratio": stats.ratio,
        "loads": {f"{pc:#x}": {
                      "accesses": load.accesses,
                      "redundant": load.redundant,
                      "reload_after_store": load.reload_after_store}
                  for pc, load in sorted(stats.loads.items())},
        "classes": ag_crosstab(stats, load_infos, load_exec),
    }


def run_sleep(params: dict[str, Any]) -> dict[str, Any]:
    """Diagnostic op: hold a worker slot for ``seconds``."""
    time.sleep(params["seconds"])
    return {"slept": params["seconds"]}


#: op name -> compute function, all scheduler-run ops.
COMPUTE = {
    "analyze": run_analysis,
    "classify": run_analysis,
    "simulate": run_simulate,
    "predict": run_predict,
    "tlb": run_tlb,
    "redundancy": run_redundancy,
    "sleep": run_sleep,
}


def execute_op(op: str, params: dict[str, Any]) -> dict[str, Any]:
    """Single picklable entry point used by the worker pool."""
    return COMPUTE[op](params)
