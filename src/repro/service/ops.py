"""The compute behind the scheduled operations.

These functions are deliberately **pure and picklable** (module-level,
plain-dict in / plain-dict out) so the scheduler can run them unchanged
on a thread or in a persistent worker process.  ``analyze`` and
``classify`` return exactly :func:`repro.export.report_to_dict` of the
equivalent in-process :func:`repro.api.analyze_program` call — the wire
schema *is* the export schema, so batch files and served responses are
interchangeable.
"""

from __future__ import annotations

import time
from typing import Any

from repro.api import analyze_program
from repro.cache.config import CacheConfig
from repro.cache.stackdist import ProfileStore, simulate_sweep
from repro.compiler.driver import compile_source
from repro.export import report_to_dict
from repro.heuristic.classes import Weights
from repro.machine.simulator import Machine
from repro.pipeline.session import default_cache_dir
from repro.service import protocol
from repro.store.tracestore import (TraceStore, TraceStoreCorrupt,
                                    trace_key)

#: Stack-distance profiles for the merged ``simulate`` op, sharing the
#: pipeline/service warm directory: a re-sweep of a known program with
#: new LRU geometries is answered from histograms, not a trace replay.
_PROFILE_STORE = ProfileStore(disk_dir=default_cache_dir() / "stackdist")

#: Chunked trace store shared with the pipeline session (same content
#: keys): a ``simulate`` request for a known program skips execution
#: entirely and streams the stored trace; a cold request streams its
#: execution into the store, so the server never holds a whole trace
#: per request.
_TRACE_STORE = TraceStore(default_cache_dir() / "traces")


def run_analysis(params: dict[str, Any]) -> dict[str, Any]:
    """``analyze`` / ``classify``: the full pipeline, export schema out.

    ``params`` must be normalized (see ``protocol._normalize_analysis``);
    ``execute=False`` is the purely static ``classify`` configuration.
    """
    report = analyze_program(
        params["source"],
        optimize=params["optimize"],
        execute=params["execute"],
        cache=CacheConfig(**params["cache"]),
        weights=Weights.from_dict(params["weights"]),
        delta=params["delta"],
        max_steps=params["max_steps"],
    )
    return report_to_dict(report)


def run_simulate(params: dict[str, Any]) -> dict[str, Any]:
    """``simulate``: at most one execution ever, streamed replays.

    Routes through the dispatching sweep engine
    (:func:`repro.cache.stackdist.simulate_sweep`): a request for N
    configs — or N batched requests for one config each — costs at most
    one trace pass, and LRU geometry sweeps collapse to one pass per
    set mapping with the per-PC distance profile cached on disk.  The
    trace itself lives in the chunked trace store: a repeat request for
    the same (source, optimize, max_steps) skips execution and streams
    the stored chunks, a cold request streams its execution into the
    store, and a corrupt entry is dropped and re-executed.
    """
    program = compile_source(params["source"],
                             optimize=params["optimize"])
    configs = [CacheConfig(**entry) for entry in params["configs"]]
    key = trace_key(params["source"], params["optimize"],
                    params["max_steps"])

    def execute(streaming: bool):
        """One execution; streamed into the store when possible."""
        # The engine knob is an operator-side switch (params may carry
        # it, e.g. from $REPRO_ENGINE on the server); it is absent from
        # request/cache/store keys because both engines are
        # bit-identical.
        machine = Machine(program, trace_memory=True,
                          max_steps=params["max_steps"],
                          engine=params.get("engine"))
        writer = None
        if streaming:
            try:
                writer = _TRACE_STORE.writer(key)
            except OSError:
                writer = None
        if writer is None:
            execution = machine.run()
            return execution.steps, execution.trace
        try:
            execution = machine.run_streaming(writer)
        except BaseException:
            writer.abort()
            raise
        try:
            writer.close(block_counts=execution.block_counts,
                         steps=execution.steps,
                         exit_code=execution.exit_code,
                         output=execution.output)
        except OSError:
            _TRACE_STORE.delete(key)
        return execution.steps, _TRACE_STORE.open(key)

    source = _TRACE_STORE.open(key)
    if source is not None:
        steps = int(_TRACE_STORE.meta(key)["steps"])
    else:
        steps, source = execute(streaming=True)
        if source is None:
            steps, source = execute(streaming=False)
    try:
        sweep = simulate_sweep(source, configs, store=_PROFILE_STORE)
    except TraceStoreCorrupt:
        _TRACE_STORE.delete(key)
        steps, source = execute(streaming=False)
        sweep = simulate_sweep(source, configs, store=_PROFILE_STORE)
    results = []
    for config, stats in zip(configs, sweep):
        results.append({
            "config": protocol.cache_config_to_dict(config),
            "description": config.describe(),
            "total_load_misses": stats.total_load_misses,
            "total_load_accesses": sum(stats.load_accesses.values()),
            "load_misses": {f"{a:#x}": m for a, m in
                            sorted(stats.load_misses.items())},
            "load_accesses": {f"{a:#x}": m for a, m in
                              sorted(stats.load_accesses.items())},
        })
    return {
        "steps": steps,
        "num_loads": program.num_loads(),
        "results": results,
    }


def run_sleep(params: dict[str, Any]) -> dict[str, Any]:
    """Diagnostic op: hold a worker slot for ``seconds``."""
    time.sleep(params["seconds"])
    return {"slept": params["seconds"]}


#: op name -> compute function, all scheduler-run ops.
COMPUTE = {
    "analyze": run_analysis,
    "classify": run_analysis,
    "simulate": run_simulate,
    "sleep": run_sleep,
}


def execute_op(op: str, params: dict[str, Any]) -> dict[str, Any]:
    """Single picklable entry point used by the worker pool."""
    return COMPUTE[op](params)
