"""The compute behind the scheduled operations.

These functions are deliberately **pure and picklable** (module-level,
plain-dict in / plain-dict out) so the scheduler can run them unchanged
on a thread or in a persistent worker process.  ``analyze`` and
``classify`` return exactly :func:`repro.export.report_to_dict` of the
equivalent in-process :func:`repro.api.analyze_program` call — the wire
schema *is* the export schema, so batch files and served responses are
interchangeable.
"""

from __future__ import annotations

import time
from typing import Any

from repro.api import analyze_program
from repro.cache.config import CacheConfig
from repro.cache.stackdist import ProfileStore, simulate_sweep
from repro.compiler.driver import compile_source
from repro.export import report_to_dict
from repro.heuristic.classes import Weights
from repro.machine.simulator import Machine
from repro.pipeline.session import default_cache_dir
from repro.service import protocol

#: Stack-distance profiles for the merged ``simulate`` op, sharing the
#: pipeline/service warm directory: a re-sweep of a known program with
#: new LRU geometries is answered from histograms, not a trace replay.
_PROFILE_STORE = ProfileStore(disk_dir=default_cache_dir() / "stackdist")


def run_analysis(params: dict[str, Any]) -> dict[str, Any]:
    """``analyze`` / ``classify``: the full pipeline, export schema out.

    ``params`` must be normalized (see ``protocol._normalize_analysis``);
    ``execute=False`` is the purely static ``classify`` configuration.
    """
    report = analyze_program(
        params["source"],
        optimize=params["optimize"],
        execute=params["execute"],
        cache=CacheConfig(**params["cache"]),
        weights=Weights.from_dict(params["weights"]),
        delta=params["delta"],
        max_steps=params["max_steps"],
    )
    return report_to_dict(report)


def run_simulate(params: dict[str, Any]) -> dict[str, Any]:
    """``simulate``: one execution, every config in a single replay.

    Routes through the dispatching sweep engine
    (:func:`repro.cache.stackdist.simulate_sweep`): a request for N
    configs — or N batched requests for one config each — costs at most
    one trace pass, and LRU geometry sweeps collapse to one pass per
    set mapping with the per-PC distance profile cached on disk.
    """
    program = compile_source(params["source"],
                             optimize=params["optimize"])
    # The engine knob is an operator-side switch (params may carry it,
    # e.g. from $REPRO_ENGINE on the server); it is deliberately absent
    # from request/cache keys because both engines are bit-identical.
    machine = Machine(program, trace_memory=True,
                      max_steps=params["max_steps"],
                      engine=params.get("engine"))
    execution = machine.run()
    configs = [CacheConfig(**entry) for entry in params["configs"]]
    results = []
    for config, stats in zip(configs,
                             simulate_sweep(execution.trace, configs,
                                            store=_PROFILE_STORE)):
        results.append({
            "config": protocol.cache_config_to_dict(config),
            "description": config.describe(),
            "total_load_misses": stats.total_load_misses,
            "total_load_accesses": sum(stats.load_accesses.values()),
            "load_misses": {f"{a:#x}": m for a, m in
                            sorted(stats.load_misses.items())},
            "load_accesses": {f"{a:#x}": m for a, m in
                              sorted(stats.load_accesses.items())},
        })
    return {
        "steps": execution.steps,
        "num_loads": program.num_loads(),
        "results": results,
    }


def run_sleep(params: dict[str, Any]) -> dict[str, Any]:
    """Diagnostic op: hold a worker slot for ``seconds``."""
    time.sleep(params["seconds"])
    return {"slept": params["seconds"]}


#: op name -> compute function, all scheduler-run ops.
COMPUTE = {
    "analyze": run_analysis,
    "classify": run_analysis,
    "simulate": run_simulate,
    "sleep": run_sleep,
}


def execute_op(op: str, params: dict[str, Any]) -> dict[str, Any]:
    """Single picklable entry point used by the worker pool."""
    return COMPUTE[op](params)
