"""Delinquency-analysis service.

The analysis pipeline (compile, dataflow, classify, simulate) costs the
same whether it is invoked once or ten thousand times — but the clients
named in :mod:`repro.export` (prefetch-insertion passes, report
generators, IDE plugins) issue many small, repetitive requests.  This
package exposes the pipeline as a **long-lived server** so that cost is
paid once per distinct (source, configuration) and amortized across
requests:

* :mod:`repro.service.protocol` — versioned JSON-lines request/response
  wire format and content-hash request keys;
* :mod:`repro.service.ops` — the pure, picklable compute functions
  behind the ``analyze`` / ``classify`` / ``simulate`` operations;
* :mod:`repro.service.cache` — tiered result cache: in-memory LRU over
  the shared on-disk cache directory;
* :mod:`repro.service.metrics` — request counters, latency percentiles,
  cache hit rates, batching statistics;
* :mod:`repro.service.scheduler` — bounded request queue with overload
  responses, request coalescing, simulate-batch merging, and a
  persistent worker pool;
* :mod:`repro.service.server` — the asyncio TCP front end
  (``python -m repro serve``);
* :mod:`repro.service.client` — a small blocking client
  (``python -m repro analyze --remote HOST:PORT``).
"""

from repro.service.client import ServiceClient, ServiceError, parse_address
from repro.service.protocol import PROTOCOL_VERSION
from repro.service.server import (AnalysisServer, ServerConfig, run_server,
                                  serve_in_thread)

__all__ = [
    "AnalysisServer",
    "PROTOCOL_VERSION",
    "ServerConfig",
    "ServiceClient",
    "ServiceError",
    "parse_address",
    "run_server",
    "serve_in_thread",
]
