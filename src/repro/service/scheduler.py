"""Request scheduling: bounded queue, batching, coalescing, worker pool.

The flow for one scheduled request (``analyze`` / ``classify`` /
``simulate`` / ``sleep``):

1. **Cache** — a tiered-cache hit returns immediately (no queue slot).
2. **Coalesce** — if an identical request (same content hash) is
   already queued or computing, the new request just awaits the same
   future; concurrent identical requests cost one computation.
3. **Admit** — otherwise the request must win a slot in a bounded
   queue; a full queue fails fast with an ``overloaded`` error rather
   than stacking latency (explicit backpressure).
4. **Batch** — the dispatcher drains up to ``batch_max`` queued
   requests that arrive within ``batch_window`` seconds into one batch.
   ``simulate`` requests for the same (source, optimize, max_steps) are
   *merged* into a single call of the one-pass multi-config engine;
   everything else fans out across the worker pool.
5. **Compute** — jobs run on a persistent pool: worker processes
   (``workers >= 1``) so the event loop never blocks on pipeline work,
   or one thread (``workers == 0``, handy for tests and single-core
   boxes).  Results populate the cache before waiters wake.

Per-request timeouts apply to the *wait*, not the computation: a timed
out or disconnected waiter abandons a shielded future, the computation
still finishes, and its result still lands in the cache.
"""

from __future__ import annotations

import asyncio
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Optional

from repro.export import canonical_json
from repro.service import protocol
from repro.service.cache import TieredResultCache
from repro.service.metrics import ServiceMetrics
from repro.service.ops import execute_op
from repro.service.protocol import ProtocolError, Request


class OverloadedError(Exception):
    """The bounded request queue is full."""


@dataclass
class _Job:
    request: Request
    future: "asyncio.Future[Any]"


class BatchScheduler:
    """Owns the queue, the worker pool and the result cache."""

    def __init__(self, *,
                 workers: Optional[int] = None,
                 queue_size: int = 64,
                 batch_window: float = 0.002,
                 batch_max: int = 8,
                 default_timeout: float = 120.0,
                 cache: Optional[TieredResultCache] = None,
                 metrics: Optional[ServiceMetrics] = None):
        if workers is None:
            workers = os.cpu_count() or 1
        self.workers = max(0, workers)
        self.pool_mode = "process" if self.workers else "thread"
        self.queue_size = queue_size
        self.batch_window = batch_window
        self.batch_max = max(1, batch_max)
        self.default_timeout = default_timeout
        self.cache = cache if cache is not None else TieredResultCache()
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self._queue: "asyncio.Queue[_Job]" = \
            asyncio.Queue(maxsize=max(1, queue_size))
        self._inflight: dict[str, "asyncio.Future[Any]"] = {}
        self._executor = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._stopping = False

    # -- lifecycle ---------------------------------------------------
    def start(self) -> None:
        if self.workers:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers)
        else:
            self._executor = ThreadPoolExecutor(max_workers=1)
        self._dispatcher = asyncio.get_running_loop().create_task(
            self._run())

    async def stop(self) -> None:
        self._stopping = True
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except (asyncio.CancelledError, Exception):
                pass
            self._dispatcher = None
        while not self._queue.empty():
            job = self._queue.get_nowait()
            if not job.future.done():
                job.future.set_exception(ProtocolError(
                    protocol.SHUTTING_DOWN, "server is shutting down"))
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    # -- submission --------------------------------------------------
    async def submit(self, request: Request
                     ) -> tuple[Any, Optional[str]]:
        """Schedule one request; returns ``(result, cache_tier)``.

        Raises :class:`OverloadedError` when the queue is full and
        :class:`ProtocolError` (code ``timeout`` / ``internal`` /
        ``shutting_down``) on wait or compute failures.
        """
        if self._stopping:
            raise ProtocolError(protocol.SHUTTING_DOWN,
                                "server is shutting down")
        key = request.key
        if key is not None:
            result, tier = self.cache.get(key)
            if tier is not None:
                return result, tier
            existing = self._inflight.get(key)
            if existing is not None:
                self.metrics.coalesced += 1
                return await self._wait(existing, request.timeout), None
        future = asyncio.get_running_loop().create_future()
        job = _Job(request, future)
        if key is not None:
            self._inflight[key] = future
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            if key is not None and self._inflight.get(key) is future:
                del self._inflight[key]
            raise OverloadedError(
                f"request queue full ({self.queue_size} pending)")
        self.metrics.observe_queue_depth(self._queue.qsize())
        return await self._wait(future, request.timeout), None

    async def _wait(self, future: "asyncio.Future[Any]",
                    timeout: Optional[float]) -> Any:
        if timeout is None:
            timeout = self.default_timeout
        try:
            return await asyncio.wait_for(asyncio.shield(future),
                                          timeout)
        except asyncio.TimeoutError:
            raise ProtocolError(
                protocol.TIMEOUT,
                f"request did not complete within {timeout:g}s")

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize()

    # -- dispatch ----------------------------------------------------
    async def _run(self) -> None:
        while True:
            batch = [await self._queue.get()]
            while len(batch) < self.batch_max:
                try:
                    batch.append(await asyncio.wait_for(
                        self._queue.get(), self.batch_window))
                except asyncio.TimeoutError:
                    break
            self.metrics.record_batch(len(batch))
            await asyncio.gather(
                *(self._run_group(jobs, op, params)
                  for jobs, op, params in self._plan(batch)),
                return_exceptions=True)

    def _plan(self, batch: list[_Job]
              ) -> list[tuple[list[_Job], str, dict]]:
        """Group a batch into executor calls, merging simulations."""
        groups: list[tuple[list[_Job], str, dict]] = []
        simulate: dict[str, list[_Job]] = {}
        for job in batch:
            if job.request.op == "simulate":
                base = canonical_json({
                    "source": job.request.params["source"],
                    "optimize": job.request.params["optimize"],
                    "max_steps": job.request.params["max_steps"],
                })
                simulate.setdefault(base, []).append(job)
            else:
                groups.append(([job], job.request.op,
                               job.request.params))
        for jobs in simulate.values():
            if len(jobs) == 1:
                groups.append((jobs, "simulate", jobs[0].request.params))
                continue
            # one replay for the union of every request's configs
            merged = dict(jobs[0].request.params)
            union = []
            for job in jobs:
                union.extend(canonical_json(c)
                             for c in job.request.params["configs"])
            keys = list(dict.fromkeys(union))
            merged["configs"] = [
                next(c for job in jobs
                     for c in job.request.params["configs"]
                     if canonical_json(c) == key)
                for key in keys]
            self.metrics.merged_simulate_requests += len(jobs)
            groups.append((jobs, "simulate", merged))
        return groups

    async def _run_group(self, jobs: list[_Job], op: str,
                         params: dict) -> None:
        loop = asyncio.get_running_loop()
        try:
            result = await loop.run_in_executor(
                self._executor, execute_op, op, params)
            self.metrics.computations += 1
        except Exception as exc:  # worker/pool failure
            error = ProtocolError(protocol.INTERNAL,
                                  f"{type(exc).__name__}: {exc}")
            for job in jobs:
                self._finish(job, error=error)
            return
        if len(jobs) == 1:
            self._finish(jobs[0], result=result)
            return
        by_config = {canonical_json(entry["config"]): entry
                     for entry in result["results"]}
        for job in jobs:
            # Copy every top-level field, not a fixed allowlist, so
            # additions to the simulate schema survive merged requests.
            split = {k: v for k, v in result.items() if k != "results"}
            split["results"] = [by_config[canonical_json(c)] for c in
                                job.request.params["configs"]]
            self._finish(job, result=split)

    def _finish(self, job: _Job, result: Any = None,
                error: Optional[Exception] = None) -> None:
        key = job.request.key
        if key is not None and self._inflight.get(key) is job.future:
            del self._inflight[key]
        if error is None and key is not None:
            self.cache.put(key, result)
        if job.future.done():
            return  # waiter gone and future externally resolved
        if error is not None:
            job.future.set_exception(error)
            # a timed-out waiter may never retrieve this; mark it seen
            job.future.exception()
        else:
            job.future.set_result(result)
