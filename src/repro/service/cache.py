"""Tiered result cache: in-memory LRU over the shared disk cache.

Tier 1 is a bounded, in-process LRU mapping request content hashes (see
:func:`repro.service.protocol.request_key`) to response payloads.  Tier
2 persists the same payloads as JSON under a ``service/`` subdirectory
of the pipeline's content-hashed disk cache (``.repro_cache`` by
default), written with the same atomic rename discipline as
:class:`repro.pipeline.session.Session`, so a restarted server — or a
concurrent one sharing the directory — starts warm.  Disk hits are
promoted back into the memory tier.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from pathlib import Path
from typing import Any, Optional

from repro.pipeline.session import atomic_write_json, default_cache_dir

_ENTRY_VERSION = 1

#: tier labels, also reported in responses and metrics
MEMORY = "memory"
DISK = "disk"


class TieredResultCache:
    """LRU memory tier + optional shared JSON disk tier."""

    def __init__(self, capacity: int = 256,
                 disk_dir: Optional[Path] = None,
                 use_disk: bool = True):
        self.capacity = max(0, capacity)
        self.use_disk = use_disk
        self.disk_dir = Path(disk_dir) if disk_dir is not None \
            else default_cache_dir() / "service"
        self._memory: OrderedDict[str, Any] = OrderedDict()
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._memory)

    def _path(self, key: str) -> Path:
        return self.disk_dir / f"svc-{key}.json"

    def get(self, key: str) -> tuple[Optional[Any], Optional[str]]:
        """Look one key up; returns ``(payload, tier)`` or ``(None, None)``."""
        if key in self._memory:
            self._memory.move_to_end(key)
            self.memory_hits += 1
            return self._memory[key], MEMORY
        if self.use_disk:
            try:
                entry = json.loads(self._path(key).read_text())
                if entry.get("version") == _ENTRY_VERSION \
                        and "result" in entry:
                    result = entry["result"]
                    self.disk_hits += 1
                    self._remember(key, result)
                    return result, DISK
            except (AttributeError, OSError, ValueError):
                pass  # absent or corrupt entry: recompute
        self.misses += 1
        return None, None

    def _remember(self, key: str, result: Any) -> None:
        if self.capacity == 0:
            return
        self._memory[key] = result
        self._memory.move_to_end(key)
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)
            self.evictions += 1

    def put(self, key: str, result: Any) -> None:
        self._remember(key, result)
        if self.use_disk:
            atomic_write_json(self._path(key),
                              {"version": _ENTRY_VERSION,
                               "result": result})

    def stats(self) -> dict[str, Any]:
        lookups = self.memory_hits + self.disk_hits + self.misses
        return {
            "entries": len(self._memory),
            "capacity": self.capacity,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round((self.memory_hits + self.disk_hits)
                              / lookups, 4) if lookups else 0.0,
        }
