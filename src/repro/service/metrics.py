"""Service metrics: counters, latency percentiles, cache and batch stats.

Everything is plain in-process counting — cheap enough to record on
every request — snapshotted on demand by the ``metrics`` op and the
``repro serve --stats`` dump.  Latencies keep a bounded per-op window
(the most recent :data:`_WINDOW` samples) so percentiles track current
behaviour instead of averaging over the server's whole life.
"""

from __future__ import annotations

import time
from collections import Counter, deque
from typing import Any, Optional

_WINDOW = 2048


def percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1,
               max(0, round(fraction * (len(sorted_values) - 1))))
    return sorted_values[rank]


class ServiceMetrics:
    """Mutable counters for one server instance."""

    def __init__(self):
        self.started_at = time.time()
        self.requests_by_op: Counter = Counter()
        self.responses_ok = 0
        self.errors_by_code: Counter = Counter()
        self.computations = 0
        self.batches = 0
        self.batched_requests = 0
        self.coalesced = 0
        self.merged_simulate_requests = 0
        self.queue_peak = 0
        self.rejected_connections = 0
        #: scheduled requests currently being handled (gauge, not a
        #: counter; health/metrics probes are excluded so they never
        #: observe themselves): the cluster router aggregates this
        #: across workers for meaningful live load numbers.
        self.in_flight = 0
        self._latency_s: dict[str, deque] = {}

    # -- recording ---------------------------------------------------
    def record_request(self, op: str) -> None:
        self.requests_by_op[op] += 1

    def record_ok(self, op: str, elapsed_s: float) -> None:
        self.responses_ok += 1
        self.record_latency(op, elapsed_s)

    def record_error(self, code: str) -> None:
        self.errors_by_code[code] += 1

    def begin_request(self) -> None:
        self.in_flight += 1

    def end_request(self) -> None:
        self.in_flight = max(0, self.in_flight - 1)

    def record_latency(self, op: str, elapsed_s: float) -> None:
        window = self._latency_s.setdefault(op, deque(maxlen=_WINDOW))
        window.append(elapsed_s)

    def record_batch(self, size: int) -> None:
        self.batches += 1
        self.batched_requests += size

    def observe_queue_depth(self, depth: int) -> None:
        if depth > self.queue_peak:
            self.queue_peak = depth

    # -- snapshot ----------------------------------------------------
    def latency_summary(self) -> dict[str, dict[str, float]]:
        summary = {}
        for op, window in sorted(self._latency_s.items()):
            values = sorted(window)
            summary[op] = {
                "count": len(values),
                "p50_ms": round(percentile(values, 0.50) * 1e3, 3),
                "p90_ms": round(percentile(values, 0.90) * 1e3, 3),
                "p99_ms": round(percentile(values, 0.99) * 1e3, 3),
                "max_ms": round(max(values) * 1e3, 3),
            }
        return summary

    def snapshot(self, cache_stats: Optional[dict] = None,
                 queue_depth: int = 0, queue_capacity: int = 0,
                 workers: int = 0, pool_mode: str = "",
                 profile_store: Optional[dict] = None) -> dict[str, Any]:
        return {
            "uptime_s": round(time.time() - self.started_at, 3),
            "requests": {
                "total": sum(self.requests_by_op.values()),
                "ok": self.responses_ok,
                "in_flight": self.in_flight,
                "by_op": dict(sorted(self.requests_by_op.items())),
            },
            "errors": {
                "total": sum(self.errors_by_code.values()),
                "by_code": dict(sorted(self.errors_by_code.items())),
            },
            "latency": self.latency_summary(),
            "cache": cache_stats or {},
            # Stackdist/analytic ProfileStore lookups (sweep + an-
            # keyspaces); campaign cache effectiveness in one glance.
            "profile_store": profile_store or {},
            "batching": {
                "computations": self.computations,
                "batches": self.batches,
                "batched_requests": self.batched_requests,
                "coalesced_requests": self.coalesced,
                "merged_simulate_requests":
                    self.merged_simulate_requests,
            },
            "queue": {
                "depth": queue_depth,
                "capacity": queue_capacity,
                "peak": self.queue_peak,
            },
            "pool": {"workers": workers, "mode": pool_mode},
        }
