"""Small blocking client for the analysis service.

Used by the test suite, the benchmarks, the CI smoke probe, the cluster
router's upstream pool, and ``python -m repro analyze --remote
HOST:PORT``.  One persistent TCP connection, JSON-lines framing,
sequential request/response::

    with ServiceClient("127.0.0.1", 8642) as client:
        payload = client.analyze(source)          # export schema
        print(client.health()["status"])

Failures come back as :class:`ServiceError` carrying the server's error
code (``overloaded``, ``timeout``, ``bad_request``, ...) and, for
transport failures, the upstream ``HOST:PORT`` for diagnosability.

Retries are **opt-in**: with ``retries=N`` the client retries failed
connects and transport-failed round trips up to N times with
exponential backoff and jitter, transparently reconnecting between
attempts.  A resent request re-executes on the server, so only enable
retries for idempotent traffic (the analysis ops are; the cluster
router relies on this).  The default ``retries=0`` keeps the historic
fail-fast behaviour.
"""

from __future__ import annotations

import json
import random
import socket
import time
from typing import Any, Optional

from repro.service.protocol import PROTOCOL_VERSION


class ServiceError(Exception):
    """An error response from the service (or a transport failure)."""

    def __init__(self, code: str, message: str,
                 address: Optional[str] = None):
        label = f"{code}: {message}"
        if address:
            label += f" (upstream {address})"
        super().__init__(label)
        self.code = code
        self.message = message
        self.address = address


def parse_address(address: str) -> tuple[str, int]:
    """``"host:port"`` -> ``(host, port)`` (IPv6 hosts in brackets)."""
    host, sep, port = address.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"expected HOST:PORT, got {address!r}")
    return host.strip("[]") or "127.0.0.1", int(port)


class ServiceClient:
    """Blocking JSON-lines client over one TCP connection."""

    def __init__(self, host: str, port: int, *,
                 timeout: float = 300.0,
                 retries: int = 0,
                 backoff: float = 0.1,
                 backoff_max: float = 2.0):
        self.host = host
        self.port = port
        self.address = f"{host}:{port}"
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff = backoff
        self.backoff_max = backoff_max
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._next_id = 0
        self._connect_with_retry()

    @classmethod
    def connect(cls, address: str, *,
                timeout: float = 300.0, retries: int = 0,
                backoff: float = 0.1) -> "ServiceClient":
        host, port = parse_address(address)
        return cls(host, port, timeout=timeout, retries=retries,
                   backoff=backoff)

    # -- connection management -----------------------------------------
    def _backoff_delay(self, attempt: int) -> float:
        base = min(self.backoff_max, self.backoff * (2 ** attempt))
        return base * (0.5 + random.random() * 0.5)   # jittered

    def _connect(self) -> None:
        self._sock = socket.create_connection((self.host, self.port),
                                              timeout=self.timeout)
        self._file = self._sock.makefile("rwb")

    def _connect_with_retry(self) -> None:
        for attempt in range(self.retries + 1):
            try:
                self._connect()
                return
            except OSError:
                if attempt == self.retries:
                    raise
                time.sleep(self._backoff_delay(attempt))

    def _reconnect(self) -> None:
        self.close()
        self._connect()

    # -- plumbing ----------------------------------------------------
    def _roundtrip(self, line: bytes) -> bytes:
        self._file.write(line)
        self._file.flush()
        response = self._file.readline()
        if not response:
            raise ServiceError("transport",
                               "server closed the connection",
                               address=self.address)
        return response

    def transact(self, line: bytes, *,
                 timeout: Optional[float] = None) -> bytes:
        """One raw line out, one raw line back (byte passthrough).

        The caller owns the request id inside ``line``; the response
        line is returned verbatim.  With ``retries`` enabled a
        transport failure reconnects and **resends the same line** —
        callers must ensure the request is idempotent.  ``timeout``
        overrides the socket timeout for this round trip only.
        """
        if not line.endswith(b"\n"):
            line += b"\n"
        last: Exception = ServiceError("transport", "no attempt made",
                                       address=self.address)
        for attempt in range(self.retries + 1):
            if attempt:
                time.sleep(self._backoff_delay(attempt - 1))
                try:
                    self._reconnect()
                except OSError as exc:
                    last = exc
                    continue
            try:
                if timeout is not None:
                    self._sock.settimeout(timeout)
                try:
                    return self._roundtrip(line)
                finally:
                    if timeout is not None and self._sock is not None:
                        self._sock.settimeout(self.timeout)
            except (ServiceError, OSError, ValueError) as exc:
                last = exc
        if isinstance(last, ServiceError):
            raise last
        raise ServiceError("transport", str(last), address=self.address)

    def request(self, op: str,
                params: Optional[dict[str, Any]] = None, *,
                timeout: Optional[float] = None) -> dict[str, Any]:
        """One round trip; returns the full response envelope."""
        self._next_id += 1
        request_id = self._next_id
        message: dict[str, Any] = {
            "id": request_id,
            "version": PROTOCOL_VERSION,
            "op": op,
        }
        if params:
            message["params"] = params
        if timeout is not None:
            message["timeout"] = timeout
        line = self.transact((json.dumps(message) + "\n").encode())
        response = json.loads(line.decode("utf-8"))
        if response.get("id") not in (request_id, None):
            raise ServiceError(
                "transport",
                f"response id {response.get('id')!r} does not match "
                f"request id {request_id!r}", address=self.address)
        return response

    def call(self, op: str,
             params: Optional[dict[str, Any]] = None, *,
             timeout: Optional[float] = None) -> Any:
        """One round trip; returns ``result`` or raises ServiceError."""
        response = self.request(op, params, timeout=timeout)
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServiceError(error.get("code", "internal"),
                               error.get("message", "unknown error"),
                               address=self.address)
        return response["result"]

    # -- operations --------------------------------------------------
    def analyze(self, source: str, **options: Any) -> dict[str, Any]:
        return self.call("analyze", {"source": source, **options})

    def classify(self, source: str, **options: Any) -> dict[str, Any]:
        return self.call("classify", {"source": source, **options})

    def simulate(self, source: str, **options: Any) -> dict[str, Any]:
        return self.call("simulate", {"source": source, **options})

    def predict(self, source: str, **options: Any) -> dict[str, Any]:
        return self.call("predict", {"source": source, **options})

    def tlb(self, source: str, **options: Any) -> dict[str, Any]:
        return self.call("tlb", {"source": source, **options})

    def redundancy(self, source: str, **options: Any) -> dict[str, Any]:
        return self.call("redundancy", {"source": source, **options})

    def health(self) -> dict[str, Any]:
        return self.call("health")

    def metrics(self) -> dict[str, Any]:
        return self.call("metrics")

    def shutdown(self) -> dict[str, Any]:
        return self.call("shutdown")

    # -- lifecycle ---------------------------------------------------
    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
