"""Small blocking client for the analysis service.

Used by the test suite, the benchmarks, the CI smoke probe, and
``python -m repro analyze --remote HOST:PORT``.  One persistent TCP
connection, JSON-lines framing, sequential request/response::

    with ServiceClient("127.0.0.1", 8642) as client:
        payload = client.analyze(source)          # export schema
        print(client.health()["status"])

Failures come back as :class:`ServiceError` carrying the server's error
code (``overloaded``, ``timeout``, ``bad_request``, ...).
"""

from __future__ import annotations

import json
import socket
from typing import Any, Optional

from repro.service.protocol import PROTOCOL_VERSION


class ServiceError(Exception):
    """An error response from the service (or a transport failure)."""

    def __init__(self, code: str, message: str):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message


def parse_address(address: str) -> tuple[str, int]:
    """``"host:port"`` -> ``(host, port)`` (IPv6 hosts in brackets)."""
    host, sep, port = address.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"expected HOST:PORT, got {address!r}")
    return host.strip("[]") or "127.0.0.1", int(port)


class ServiceClient:
    """Blocking JSON-lines client over one TCP connection."""

    def __init__(self, host: str, port: int, *,
                 timeout: float = 300.0):
        self.timeout = timeout
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._next_id = 0

    @classmethod
    def connect(cls, address: str, *,
                timeout: float = 300.0) -> "ServiceClient":
        host, port = parse_address(address)
        return cls(host, port, timeout=timeout)

    # -- plumbing ----------------------------------------------------
    def request(self, op: str,
                params: Optional[dict[str, Any]] = None, *,
                timeout: Optional[float] = None) -> dict[str, Any]:
        """One round trip; returns the full response envelope."""
        self._next_id += 1
        request_id = self._next_id
        message: dict[str, Any] = {
            "id": request_id,
            "version": PROTOCOL_VERSION,
            "op": op,
        }
        if params:
            message["params"] = params
        if timeout is not None:
            message["timeout"] = timeout
        try:
            self._file.write((json.dumps(message) + "\n").encode())
            self._file.flush()
            line = self._file.readline()
        except (OSError, ValueError) as exc:
            raise ServiceError("transport", str(exc))
        if not line:
            raise ServiceError("transport",
                               "server closed the connection")
        response = json.loads(line.decode("utf-8"))
        if response.get("id") not in (request_id, None):
            raise ServiceError(
                "transport",
                f"response id {response.get('id')!r} does not match "
                f"request id {request_id!r}")
        return response

    def call(self, op: str,
             params: Optional[dict[str, Any]] = None, *,
             timeout: Optional[float] = None) -> Any:
        """One round trip; returns ``result`` or raises ServiceError."""
        response = self.request(op, params, timeout=timeout)
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServiceError(error.get("code", "internal"),
                               error.get("message", "unknown error"))
        return response["result"]

    # -- operations --------------------------------------------------
    def analyze(self, source: str, **options: Any) -> dict[str, Any]:
        return self.call("analyze", {"source": source, **options})

    def classify(self, source: str, **options: Any) -> dict[str, Any]:
        return self.call("classify", {"source": source, **options})

    def simulate(self, source: str, **options: Any) -> dict[str, Any]:
        return self.call("simulate", {"source": source, **options})

    def health(self) -> dict[str, Any]:
        return self.call("health")

    def metrics(self) -> dict[str, Any]:
        return self.call("metrics")

    def shutdown(self) -> dict[str, Any]:
        return self.call("shutdown")

    # -- lifecycle ---------------------------------------------------
    def close(self) -> None:
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
