"""The asyncio TCP front end.

``AnalysisServer`` accepts JSON-lines connections, parses and validates
each request (:mod:`repro.service.protocol`), answers control ops
(``health`` / ``metrics`` / ``shutdown``) inline, and hands compute ops
to the :class:`~repro.service.scheduler.BatchScheduler`.  Entry points:

* :func:`run_server` — blocking; behind ``python -m repro serve``;
* :func:`serve_in_thread` — background server for tests, benchmarks and
  embedding; returns a handle with the bound address and ``stop()``.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional

from repro import __version__
from repro.service import protocol
from repro.service.cache import TieredResultCache
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import (MAX_REQUEST_BYTES, ProtocolError,
                                    Request, encode, error_response,
                                    ok_response)
from repro.service.scheduler import BatchScheduler, OverloadedError


@dataclass
class ServerConfig:
    """Everything tunable about one server instance."""

    host: str = "127.0.0.1"
    port: int = 8642            # 0: pick an ephemeral port
    workers: Optional[int] = None   # None: CPU count; 0: one thread
    queue_size: int = 64
    batch_window: float = 0.002     # seconds the dispatcher waits
    batch_max: int = 8              # max requests per batch
    timeout: float = 120.0          # default per-request seconds
    cache_entries: int = 256        # memory-tier LRU capacity
    cache_dir: Optional[Path] = None    # disk tier (None: shared dir)
    use_disk_cache: bool = True


class AnalysisServer:
    """One long-lived analysis service."""

    def __init__(self, config: Optional[ServerConfig] = None):
        self.config = config or ServerConfig()
        self.metrics = ServiceMetrics()
        self.cache = TieredResultCache(
            capacity=self.config.cache_entries,
            disk_dir=self.config.cache_dir,
            use_disk=self.config.use_disk_cache)
        self.scheduler = BatchScheduler(
            workers=self.config.workers,
            queue_size=self.config.queue_size,
            batch_window=self.config.batch_window,
            batch_max=self.config.batch_max,
            default_timeout=self.config.timeout,
            cache=self.cache,
            metrics=self.metrics)
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._shutdown = None
        self._connections: set = set()

    # -- lifecycle ---------------------------------------------------
    async def start(self) -> None:
        self._shutdown = asyncio.Event()
        self.scheduler.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port,
            limit=MAX_REQUEST_BYTES + 2)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]

    async def serve_until_shutdown(self) -> None:
        """Serve until the ``shutdown`` op (or :meth:`request_stop`)."""
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._shutdown.wait()
            # let in-flight handlers flush their final responses, then
            # reap lingering connections before the loop goes away
            await asyncio.sleep(0.05)
            for task in list(self._connections):
                task.cancel()
            if self._connections:
                await asyncio.gather(*self._connections,
                                     return_exceptions=True)
        await self.scheduler.stop()

    def request_stop(self) -> None:
        if self._shutdown is not None:
            self._shutdown.set()

    # -- one connection ----------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            while not self._shutdown.is_set():
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(encode(error_response(
                        None, protocol.BAD_REQUEST,
                        "request exceeds size limit")))
                    await writer.drain()
                    break
                if not line:
                    break           # client closed the connection
                if not line.strip():
                    continue        # blank keep-alive line
                response = await self._handle_line(line)
                writer.write(encode(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError,
                asyncio.CancelledError):
            pass                    # client went away mid-request
        finally:
            self._connections.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError,
                    RuntimeError):
                pass

    async def _handle_line(self, line: bytes) -> dict[str, Any]:
        started = time.perf_counter()
        try:
            request = protocol.parse_request(line)
        except ProtocolError as exc:
            self.metrics.record_error(exc.code)
            return error_response(None, exc.code, exc.message)
        self.metrics.record_request(request.op)
        try:
            result, cached = await self._dispatch(request)
        except OverloadedError as exc:
            self.metrics.record_error(protocol.OVERLOADED)
            return error_response(request.id, protocol.OVERLOADED,
                                  str(exc))
        except ProtocolError as exc:
            self.metrics.record_error(exc.code)
            return error_response(request.id, exc.code, exc.message)
        except Exception as exc:    # defensive: never kill the reader
            self.metrics.record_error(protocol.INTERNAL)
            return error_response(request.id, protocol.INTERNAL,
                                  f"{type(exc).__name__}: {exc}")
        self.metrics.record_ok(request.op,
                               time.perf_counter() - started)
        return ok_response(request.id, result, cached)

    async def _dispatch(self, request: Request
                        ) -> tuple[Any, Optional[str]]:
        if request.op == "health":
            return self._health(), None
        if request.op == "metrics":
            # The profile-store counters are exact under the thread
            # pool; under a process pool they cover only lookups made
            # in this process (each worker owns its own store).
            from repro.service import ops
            return self.metrics.snapshot(
                cache_stats=self.cache.stats(),
                queue_depth=self.scheduler.queue_depth,
                queue_capacity=self.config.queue_size,
                workers=self.scheduler.workers,
                pool_mode=self.scheduler.pool_mode,
                profile_store=ops._PROFILE_STORE.stats()), None
        if request.op == "shutdown":
            self.request_stop()
            return {"stopping": True}, None
        # the in-flight gauge counts scheduled work only, so a metrics
        # or health probe never observes itself
        self.metrics.begin_request()
        try:
            return await self.scheduler.submit(request)
        finally:
            self.metrics.end_request()

    def _health(self) -> dict[str, Any]:
        return {
            "status": "ok",
            "version": __version__,
            "protocol_version": protocol.PROTOCOL_VERSION,
            "uptime_s": round(time.time() - self.metrics.started_at, 3),
            "queue_depth": self.scheduler.queue_depth,
            "in_flight": self.metrics.in_flight,
            "workers": self.scheduler.workers,
            "pool_mode": self.scheduler.pool_mode,
        }


# -- entry points ----------------------------------------------------

def run_server(config: Optional[ServerConfig] = None,
               stats: bool = False) -> dict[str, Any]:
    """Blocking server loop; returns the final metrics snapshot."""
    config = config or ServerConfig()
    holder: dict[str, Any] = {}

    async def main() -> None:
        server = AnalysisServer(config)
        await server.start()
        # parsed by scripts/service_smoke.py — keep the format stable
        print(f"repro service listening on "
              f"{server.host}:{server.port}", flush=True)
        try:
            await server.serve_until_shutdown()
        finally:
            from repro.service import ops
            holder["snapshot"] = server.metrics.snapshot(
                cache_stats=server.cache.stats(),
                queue_capacity=config.queue_size,
                workers=server.scheduler.workers,
                pool_mode=server.scheduler.pool_mode,
                profile_store=ops._PROFILE_STORE.stats())

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    snapshot = holder.get("snapshot", {})
    if stats and snapshot:
        import json as _json
        print(_json.dumps(snapshot, indent=2))
    return snapshot


class ServerHandle:
    """A server running on a background thread (tests/benchmarks)."""

    def __init__(self, server: AnalysisServer, loop, thread):
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def address(self) -> str:
        return f"{self.server.host}:{self.server.port}"

    def stop(self, timeout: float = 10.0) -> None:
        try:
            self._loop.call_soon_threadsafe(self.server.request_stop)
        except RuntimeError:
            pass    # loop already closed (e.g. via the shutdown op)
        self._thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_in_thread(config: Optional[ServerConfig] = None
                    ) -> ServerHandle:
    """Start a server on a daemon thread; block until it is listening."""
    config = config or ServerConfig(port=0, workers=0)
    ready = threading.Event()
    box: dict[str, Any] = {}

    def runner() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        server = AnalysisServer(config)
        box["loop"] = loop
        box["server"] = server

        async def main() -> None:
            await server.start()
            ready.set()
            await server.serve_until_shutdown()

        try:
            loop.run_until_complete(main())
        except Exception as exc:    # startup failure: unblock the caller
            box["error"] = exc
            ready.set()
        finally:
            loop.close()

    thread = threading.Thread(target=runner,
                              name="repro-service", daemon=True)
    thread.start()
    ready.wait(30.0)
    if "error" in box:
        raise box["error"]
    if not ready.is_set():
        raise RuntimeError("service failed to start within 30s")
    return ServerHandle(box["server"], box["loop"], thread)
