"""JSON export of analysis results.

Downstream tools (a prefetch-insertion pass, a report generator, an IDE
plugin) consume delinquency analysis as data.  ``report_to_dict``
serializes an :class:`~repro.api.AnalysisReport` into a stable,
versioned JSON structure; ``load_report_json`` round-trips the parts
that do not require the compiled program.
"""

from __future__ import annotations

import json
from typing import Any

from repro.api import AnalysisReport

SCHEMA_VERSION = 1


def canonical_json(payload: Any) -> str:
    """Deterministic compact JSON (sorted keys, no whitespace).

    The canonical form under content hashing: the service keys its
    tiered result cache and request coalescing on
    ``sha256(canonical_json(...))``, so two requests that spell the
    same parameters differently share one cache entry.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def report_to_dict(report: AnalysisReport) -> dict[str, Any]:
    """Serialize an analysis report (stable, versioned schema)."""
    program = report.program
    exec_counts = report.profile.load_exec_counts() \
        if report.profile is not None else None
    loads = []
    for address in sorted(report.load_infos):
        info = report.load_infos[address]
        verdict = report.heuristic.loads[address]
        entry: dict[str, Any] = {
            "address": f"{address:#x}",
            "function": info.function,
            "instruction": info.instruction.text(),
            "phi": round(verdict.score, 4),
            "delinquent": verdict.is_delinquent,
            "classes": sorted(verdict.classes),
            "patterns": [str(p) for p in info.patterns],
        }
        if report.cache_stats is not None:
            entry["misses"] = report.cache_stats.load_misses.get(
                address, 0)
            entry["accesses"] = report.cache_stats.load_accesses.get(
                address, 0)
        if exec_counts is not None:
            entry["exec_count"] = exec_counts.get(address, 0)
        loads.append(entry)

    payload: dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "summary": {
            "num_loads": program.num_loads(),
            "num_delinquent": len(report.delinquent_loads),
            "pi": round(report.pi, 4),
            "delta": report.heuristic.delta,
            "weights": report.heuristic.weights.as_dict(),
        },
        "loads": loads,
    }
    if report.rho is not None:
        payload["summary"]["rho"] = round(report.rho, 4)
    if report.execution is not None:
        payload["summary"]["instructions_executed"] = \
            report.execution.steps
    if report.cache_stats is not None:
        payload["summary"]["cache"] = \
            report.cache_stats.config.describe()
        payload["summary"]["total_load_misses"] = \
            report.cache_stats.total_load_misses
    return payload


def report_to_json(report: AnalysisReport, indent: int = 2) -> str:
    return json.dumps(report_to_dict(report), indent=indent,
                      sort_keys=False)


def write_report_json(report: AnalysisReport, path: str) -> None:
    with open(path, "w") as handle:
        handle.write(report_to_json(report))


def load_report_json(path: str) -> dict[str, Any]:
    """Load and validate a previously exported report."""
    with open(path) as handle:
        payload = json.load(handle)
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(f"unsupported schema version: {version}")
    for key in ("summary", "loads"):
        if key not in payload:
            raise ValueError(f"malformed report: missing {key!r}")
    return payload
