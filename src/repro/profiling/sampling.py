"""Sampled basic-block profiling (Section 4's practicality caveat).

The paper profiles inside the simulator with the same input — "a high
level of fidelity ... generally not reproducible in practice" — and cites
Sastry et al.'s stratified sampling as the realistic alternative.  This
module models that reality: a sampled profile keeps each block-entry
event with probability ``rate`` (deterministic per seed), and the
downstream hotspot/frequency machinery runs on the thinned counts.

Used by the ablation bench to show the combined scheme of Section 9
degrades gracefully as profile fidelity drops.
"""

from __future__ import annotations

import random

from repro.profiling.profile import BlockProfile


def sampled_profile(profile: BlockProfile, rate: float,
                    seed: int = 0x5A17) -> BlockProfile:
    """A statistically thinned copy of ``profile``.

    Each of a block's entries survives independently with probability
    ``rate`` (binomial thinning, deterministic in ``seed``) — the count
    distribution a timer/stratified sampler would observe, scaled back
    up by ``1/rate`` so thresholds remain comparable.
    """
    if not 0.0 < rate <= 1.0:
        raise ValueError(f"sampling rate out of (0, 1]: {rate}")
    if rate == 1.0:
        return profile
    rng = random.Random(seed)
    thinned: dict[int, int] = {}
    scale = 1.0 / rate
    for leader, count in profile.block_counts.items():
        if count == 0:
            thinned[leader] = 0
            continue
        if count > 10_000:
            # normal approximation keeps thinning O(1) per block
            mean = count * rate
            std = (count * rate * (1 - rate)) ** 0.5
            observed = max(0, round(rng.gauss(mean, std)))
        else:
            observed = sum(1 for _ in range(count)
                           if rng.random() < rate)
        thinned[leader] = round(observed * scale)
    return BlockProfile(program=profile.program,
                        block_counts=thinned,
                        block_sizes=dict(profile.block_sizes))
