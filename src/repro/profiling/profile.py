"""Basic-block profiling (Section 4 of the paper).

The paper profiles inside the simulator with the same input as the
experimental run ("a high level of fidelity between the profile and the
actual run") and defines the profiling delinquent set Delta_P as all loads
in the basic blocks that cumulatively account for 90% of the compute
cycles.  Cycles are approximated by executed instructions (every
instruction in a block executes once per block entry), the same
approximation that makes 124.m88ksim's coverage poor in the paper —
block-entry frequency is not cache-stall time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.asm.program import Program
from repro.machine.simulator import ExecutionResult

HOTSPOT_CYCLE_SHARE = 0.90


@dataclass
class BlockProfile:
    """Execution profile of one run at basic-block granularity."""

    program: Program
    block_counts: dict[int, int]
    block_sizes: dict[int, int]

    @classmethod
    def from_execution(cls, program: Program,
                       result: ExecutionResult) -> "BlockProfile":
        return cls.from_block_counts(program, result.block_counts)

    @classmethod
    def from_block_counts(cls, program: Program,
                          block_counts: Mapping[int, int]
                          ) -> "BlockProfile":
        """Rebuild a profile from bare block-entry counts.

        Block sizes are derived from the sorted leaders (every leader
        runs to the next leader, the last to ``text_end``), so entry
        counts alone — an execution result, a cache payload, a trace
        store meta record — fully determine the profile.
        """
        leaders = sorted(block_counts)
        sizes: dict[int, int] = {}
        for position, leader in enumerate(leaders):
            end = leaders[position + 1] if position + 1 < len(leaders) \
                else program.text_end
            sizes[leader] = (end - leader) // 4
        return cls(program=program,
                   block_counts=dict(block_counts),
                   block_sizes=sizes)

    # ------------------------------------------------------------------
    @property
    def block_cycles(self) -> dict[int, int]:
        return {leader: count * self.block_sizes.get(leader, 1)
                for leader, count in self.block_counts.items()}

    @property
    def total_cycles(self) -> int:
        return sum(self.block_cycles.values())

    def hotspot_blocks(self,
                       share: float = HOTSPOT_CYCLE_SHARE) -> set[int]:
        """Leaders of the blocks cumulatively covering ``share`` cycles."""
        cycles = self.block_cycles
        total = self.total_cycles
        if total == 0:
            return set()
        chosen: set[int] = set()
        covered = 0
        for leader, weight in sorted(cycles.items(),
                                     key=lambda item: (-item[1], item[0])):
            if weight == 0 or covered >= share * total:
                break
            chosen.add(leader)
            covered += weight
        return chosen

    # -- stall-aware cycle model (extension) ---------------------------
    def stall_aware_cycles(self, load_misses: Mapping[int, int],
                           penalty: int = 20) -> dict[int, int]:
        """Block cycles including modelled miss stalls.

        The paper observes that block-entry counting "is not necessary
        the same as the blocks that account for most of the execution
        cycles" and blames m88ksim's poor profiling coverage on exactly
        that.  This model charges ``penalty`` extra cycles per load miss
        to the block containing the load, which pulls miss-heavy blocks
        into the hotspot set even when they are entered rarely.
        """
        cycles = dict(self.block_cycles)
        leaders = sorted(self.block_sizes)
        if not leaders:
            return cycles
        import bisect
        for pc, misses in load_misses.items():
            position = bisect.bisect_right(leaders, pc) - 1
            if position < 0:
                continue
            leader = leaders[position]
            if pc < leader + 4 * self.block_sizes[leader]:
                cycles[leader] = cycles.get(leader, 0) \
                    + penalty * misses
        return cycles

    def hotspot_blocks_stall_aware(self, load_misses: Mapping[int, int],
                                   penalty: int = 20,
                                   share: float = HOTSPOT_CYCLE_SHARE
                                   ) -> set[int]:
        """Hotspot set under the stall-aware cycle model."""
        cycles = self.stall_aware_cycles(load_misses, penalty)
        total = sum(cycles.values())
        if total == 0:
            return set()
        chosen: set[int] = set()
        covered = 0
        for leader, weight in sorted(cycles.items(),
                                     key=lambda item: (-item[1],
                                                       item[0])):
            if weight == 0 or covered >= share * total:
                break
            chosen.add(leader)
            covered += weight
        return chosen

    def hotspot_loads_stall_aware(self, load_misses: Mapping[int, int],
                                  penalty: int = 20,
                                  share: float = HOTSPOT_CYCLE_SHARE
                                  ) -> set[int]:
        """Delta_P under the stall-aware model."""
        hot = self.hotspot_blocks_stall_aware(load_misses, penalty,
                                              share)
        return self._loads_in_blocks(hot)

    def hotspot_loads(self,
                      share: float = HOTSPOT_CYCLE_SHARE) -> set[int]:
        """Delta_P: every static load inside a hotspot block."""
        hot = self.hotspot_blocks(share)
        return self._loads_in_blocks(hot)

    def _loads_in_blocks(self, hot: set[int]) -> set[int]:
        if not hot:
            return set()
        leaders = sorted(self.block_sizes)
        loads: set[int] = set()
        for leader in hot:
            size = self.block_sizes[leader]
            for address in range(leader, leader + 4 * size, 4):
                try:
                    if self.program.instruction_at(address).is_load:
                        loads.add(address)
                except ValueError:
                    break
        return loads

    def load_exec_counts(self) -> dict[int, int]:
        """E(i) for every static load (block-entry count of its block)."""
        counts: dict[int, int] = {}
        for leader, count in self.block_counts.items():
            size = self.block_sizes.get(leader, 0)
            for address in range(leader, leader + 4 * size, 4):
                try:
                    instr = self.program.instruction_at(address)
                except ValueError:
                    break
                if instr.is_load:
                    counts[address] = count
        for address, _ in self.program.loads():
            counts.setdefault(address, 0)
        return counts


def observed_load_exec_counts(source) -> dict[int, int]:
    """E(i) measured from a memory trace instead of block counts.

    ``BlockProfile.load_exec_counts`` derives execution counts from
    block-entry frequency (the paper's profiling model); this variant
    counts actual trace records.  Accepts a materialized
    :class:`~repro.machine.trace.MemoryTrace` (load-column fast path:
    one C-speed pass over the packed pc column) or any chunk source,
    tallied chunk by chunk with the same per-chunk fast path.
    """
    from collections import Counter
    from repro.machine.trace import LOAD, MemoryTrace
    if isinstance(source, MemoryTrace):
        return dict(Counter(source.load_pcs()))
    from itertools import compress
    counts: Counter = Counter()
    for chunk in source:
        counts.update(compress(chunk.pcs, map(LOAD.__eq__, chunk.kinds)))
    return dict(counts)
