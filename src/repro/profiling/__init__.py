"""Basic-block profiling and sampling."""

from repro.profiling.profile import (HOTSPOT_CYCLE_SHARE, BlockProfile,
                                     observed_load_exec_counts)

__all__ = ["BlockProfile", "HOTSPOT_CYCLE_SHARE",
           "observed_load_exec_counts"]
