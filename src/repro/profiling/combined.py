"""Combining the heuristic with basic-block profiling (Section 9).

With Delta_P the profiling set and Delta_H the heuristic set, the combined
scheme reports::

    (Delta_P intersect Delta_H)  union  Delta_eps

where Delta_eps holds the ``eps * |Delta_d|`` highest-scoring loads of
``Delta_d = Delta_H - (Delta_P intersect Delta_H)`` — the heuristic both
sharpens the profile (intersection) and re-adds a small fraction of
high-scoring loads living outside the hotspots.

``random_hotspot_coverage`` computes the paper's rho* control: the
coverage achieved by randomly labelling the same number of hotspot loads,
averaged over three sampling runs.
"""

from __future__ import annotations

import random
from typing import Mapping

from repro.heuristic.classifier import HeuristicResult
from repro.metrics.measures import coverage


def combined_delta(profile_delta: set[int],
                   heuristic: HeuristicResult,
                   epsilon: float = 0.0) -> set[int]:
    """The Section 9 combined delinquent set for one epsilon factor."""
    heuristic_delta = heuristic.delinquent_set
    intersection = profile_delta & heuristic_delta
    leftovers = heuristic_delta - intersection
    if epsilon <= 0.0 or not leftovers:
        return intersection
    scores = heuristic.scores()
    ranked = sorted(leftovers, key=lambda a: (-scores.get(a, 0.0), a))
    take = int(epsilon * len(ranked))
    return intersection | set(ranked[:take])


def random_hotspot_coverage(profile_delta: set[int],
                            size: int,
                            load_misses: Mapping[int, int],
                            runs: int = 3,
                            seed: int = 0xC60) -> float:
    """rho*: mean coverage of ``runs`` random same-size hotspot samples."""
    pool = sorted(profile_delta)
    if not pool or size <= 0:
        return 0.0
    size = min(size, len(pool))
    rng = random.Random(seed)
    total = 0.0
    for _ in range(runs):
        sample = rng.sample(pool, size)
        total += coverage(sample, load_misses)
    return total / runs
