"""Address-flow analysis: which loads feed later address computations.

Both baselines need the inference the paper states for its static BDH
implementation — "if a value loaded from memory is used as part of the
address in a subsequent load, the first load is assumed to be a pointer
reference".  This module computes, per program:

* ``address_source_loads`` — static loads whose loaded value flows
  (through register arithmetic) into the address of some later memory
  access;
* ``feeds`` — the edges themselves: source load -> memory instructions
  whose address it feeds.

Selection schemes built for prefetching (OKN, BDH) tag whole dereference
chains — prefetching ``p->next->val`` requires the loads producing the
address too — so the baselines use these edges to include chain members,
which is what drives their characteristically high precision-measure
(pi around 50%) in the paper's Table 12.
"""

from __future__ import annotations

from typing import Optional

from repro.asm.program import Program
from repro.cfg.blocks import BlockMap
from repro.cfg.graph import build_function_cfgs
from repro.dataflow.reachdefs import ENTRY, ReachingDefinitions
from repro.isa.registers import GP, SP, ZERO

_MAX_DEPTH = 8


def _is_slot_load(instr) -> bool:
    """A reload of a named sp/gp stack slot (spilled scalar), as opposed
    to a load of actual program data."""
    return instr.rs in (SP, GP)


class AddressFlow:
    """Load-to-address def-use edges over a whole program."""

    def __init__(self, program: Program,
                 block_map: Optional[BlockMap] = None):
        #: load address -> memory-access addresses it feeds
        self.feeds: dict[int, set[int]] = {}
        #: same edges, restricted to *data* loads (non-slot addresses):
        #: the consumers here compute an address from loaded program data,
        #: which is exactly where static address prediction breaks down.
        self.data_feeds: dict[int, set[int]] = {}
        block_map = block_map or BlockMap(program)
        for cfg in build_function_cfgs(program, block_map).values():
            rd = ReachingDefinitions(cfg)
            for block in cfg:
                for offset, instr in enumerate(block.instructions):
                    if not (instr.is_load or instr.is_store):
                        continue
                    site = block.start + 4 * offset
                    self._trace(rd, instr.rs, site, site, 0, ())
        self.address_source_loads: set[int] = set(self.feeds)

    @property
    def data_address_consumers(self) -> set[int]:
        """Memory accesses whose address depends on loaded data."""
        out: set[int] = set()
        for consumers in self.data_feeds.values():
            out.update(consumers)
        return out

    def _trace(self, rd: ReachingDefinitions, reg: int, use_site: int,
               consumer: int, depth: int, stack: tuple) -> None:
        if reg in (ZERO, SP, GP) or depth > _MAX_DEPTH:
            return
        for def_site in rd.reaching(use_site, reg):
            if def_site == ENTRY or (def_site, reg) in stack:
                continue
            instr = rd.instruction_at(def_site)
            if instr.is_call:
                continue
            frame = stack + ((def_site, reg),)
            if instr.is_load:
                self.feeds.setdefault(def_site, set()).add(consumer)
                if not _is_slot_load(instr):
                    self.data_feeds.setdefault(def_site, set()).add(consumer)
                self._trace(rd, instr.rs, def_site, consumer, depth + 1,
                            frame)
                continue
            for used in instr.uses():
                self._trace(rd, used, def_site, consumer, depth + 1, frame)

    def chain_members(self, targets: set[int]) -> set[int]:
        """Loads feeding the address of any memory access in ``targets``."""
        return {source for source, consumers in self.feeds.items()
                if consumers & targets}
