"""Register reaching definitions over a function CFG.

The address-pattern builder asks, for a register use at some instruction,
"which instructions' definitions of this register can reach here?" — the
classic reaching-definitions dataflow problem, computed per function on the
reconstructed CFG (the paper: "If a load's address computation is dependent
on values computed outside the basic block it is in, we perform a data flow
analysis to obtain all reaching definitions for the temporaries involved").

Definition sites are instruction addresses; the pseudo-site ``ENTRY`` marks
values live into the function (parameters in ``$a0-$a3``, the stack/global
pointers, caller state).  Calls define ``$v0``/``$v1`` (return values) and
kill every caller-saved register.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cfg.graph import FunctionCFG
from repro.isa.instructions import Instruction
from repro.isa.registers import CALL_CLOBBERED, ZERO

#: Pseudo definition site: value is live into the function.
ENTRY = -1


def dataflow_defs(instr: Instruction) -> frozenset[int]:
    """Registers (re)defined at this instruction for dataflow purposes.

    Calls clobber the whole caller-saved set; ``$v0``/``$v1`` carry the
    callee's return value whose definition site *is* the call.
    """
    if instr.is_call:
        return frozenset(CALL_CLOBBERED)
    return instr.defs()


class ReachingDefinitions:
    """Reaching definitions for one function."""

    def __init__(self, cfg: FunctionCFG):
        self.cfg = cfg
        # block leader -> register -> frozenset of def sites (addresses)
        self._block_in: dict[int, dict[int, frozenset[int]]] = {}
        self._compute()

    # ------------------------------------------------------------------
    def _block_gen(self, leader: int) -> dict[int, int]:
        """Last definition site of each register within the block."""
        gen: dict[int, int] = {}
        block = self.cfg.block(leader)
        for offset, instr in enumerate(block.instructions):
            address = block.start + 4 * offset
            for reg in dataflow_defs(instr):
                gen[reg] = address
        return gen

    def _compute(self) -> None:
        cfg = self.cfg
        order = cfg.reverse_postorder()
        gens = {leader: self._block_gen(leader) for leader in order}

        # OUT[b] = (IN[b] - KILL[b]) | GEN[b]; registers not in the map
        # implicitly reach via {ENTRY}.
        block_out: dict[int, dict[int, frozenset[int]]] = {
            leader: {reg: frozenset((site,))
                     for reg, site in gens[leader].items()}
            for leader in order
        }
        block_in: dict[int, dict[int, frozenset[int]]] = {
            leader: {} for leader in order
        }

        changed = True
        while changed:
            changed = False
            for leader in order:
                preds = cfg.predecessors(leader)
                merged: dict[int, frozenset[int]] = {}
                if preds:
                    keys: set[int] = set()
                    for pred in preds:
                        keys.update(block_out[pred])
                    for reg in keys:
                        union: set[int] = set()
                        for pred in preds:
                            union.update(block_out[pred].get(
                                reg, frozenset((ENTRY,))))
                        merged[reg] = frozenset(union)
                if merged != block_in[leader]:
                    block_in[leader] = merged
                    changed = True
                    out = dict(merged)
                    for reg, site in gens[leader].items():
                        out[reg] = frozenset((site,))
                    if out != block_out[leader]:
                        block_out[leader] = out

        self._block_in = block_in

    # ------------------------------------------------------------------
    def reaching(self, address: int, reg: int) -> frozenset[int]:
        """Definition sites of ``reg`` reaching ``address`` (a use site).

        Returns ``{ENTRY}`` when the value can be live-in.
        """
        if reg == ZERO:
            return frozenset((ENTRY,))
        block = self.cfg.block_of(address)
        if block is None:
            return frozenset((ENTRY,))
        # Walk the block up to (not including) `address`.
        local: Optional[int] = None
        for offset, instr in enumerate(block.instructions):
            current = block.start + 4 * offset
            if current >= address:
                break
            if reg in dataflow_defs(instr):
                local = current
        if local is not None:
            return frozenset((local,))
        incoming = self._block_in.get(block.start, {})
        return incoming.get(reg, frozenset((ENTRY,)))

    def instruction_at(self, address: int) -> Instruction:
        block = self.cfg.block_of(address)
        assert block is not None
        index = (address - block.start) // 4
        return block.instructions[index]
