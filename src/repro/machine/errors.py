"""Machine-level exceptions."""

from __future__ import annotations


class MachineError(Exception):
    """Raised on invalid execution (bad PC, unmapped jump, ...)."""


class StepLimitExceeded(MachineError):
    """The execution budget was exhausted before the program exited."""
