"""Compact memory-access traces and the chunk-streaming protocol.

One program execution produces one access stream; the cache model
replays it under any number of cache configurations.  Two shapes carry
that stream:

* :class:`MemoryTrace` — the fully materialized form.  Storage is three
  parallel ``array`` columns (program counter, effective address, kind)
  to keep multi-million-access traces small, and the column layout
  gives the hot consumers C-speed bulk paths: the block execution
  engine appends whole basic blocks of accesses at a time
  (:meth:`MemoryTrace.extend`), and load-only analyses slice the load
  rows out of the columns without a Python-level loop
  (:meth:`MemoryTrace.load_pcs` / :meth:`MemoryTrace.load_addresses`).

* :class:`TraceChunk` / :class:`ChunkStream` — the out-of-core form.
  A chunk is a fixed-size slice of the same three columns plus its
  running row offset; a stream is a *re-openable* iterator of chunks
  with optional identity metadata (row count, content digest, per-PC
  access counts) so consumers that would otherwise rescan the trace —
  the profile store key, :func:`~repro.cache.model.shared_access_counts`
  — can be answered without touching the columns.  Every replay
  consumer in :mod:`repro.cache` accepts either shape and produces
  bit-identical results; the trace store (:mod:`repro.store`) persists
  chunks so a workload is executed at most once.
"""

from __future__ import annotations

import hashlib
from array import array
from dataclasses import dataclass, field
from itertools import compress
from typing import Callable, Iterable, Iterator, Optional

LOAD = 0
STORE = 1
PREFETCH = 2

#: Default rows per streamed chunk: 64 Ki accesses = 9 B/row packed,
#: ~576 KiB of column data — small enough that a handful of in-flight
#: chunks bound RSS, large enough that per-chunk overhead (generator
#: resumption, frame headers, digest updates) vanishes.
DEFAULT_CHUNK_ACCESSES = 1 << 16


class TraceChunk:
    """One fixed-size run of accesses: a slice of the three columns.

    ``start`` is the global index of the chunk's first row, so a chunk
    sequence carries its own running count and consumers can assert
    contiguity.  Chunks are plain value objects — producing one never
    mutates the source trace.
    """

    __slots__ = ("pcs", "addresses", "kinds", "start")

    def __init__(self, pcs: array, addresses: array, kinds: array,
                 start: int = 0):
        self.pcs = pcs
        self.addresses = addresses
        self.kinds = kinds
        self.start = start

    def __len__(self) -> int:
        return len(self.pcs)

    def columns(self) -> tuple[array, array, array]:
        return self.pcs, self.addresses, self.kinds

    @property
    def load_count(self) -> int:
        return self.kinds.count(LOAD)

    @property
    def store_count(self) -> int:
        return self.kinds.count(STORE)

    @property
    def prefetch_count(self) -> int:
        return self.kinds.count(PREFETCH)


class RollingTraceDigest:
    """Chunk-incremental content hash of an access stream.

    Hashes the three columns independently (one rolling hasher each) and
    combines them with the row count, so the digest of a chunked stream
    equals the digest of the materialized trace regardless of chunk
    boundaries.  This is the canonical trace identity used by the
    stack-distance profile store and the trace store.
    """

    __slots__ = ("_pcs", "_addresses", "_kinds", "rows")

    def __init__(self):
        self._pcs = hashlib.sha1()
        self._addresses = hashlib.sha1()
        self._kinds = hashlib.sha1()
        self.rows = 0

    def update(self, chunk: TraceChunk) -> None:
        self._pcs.update(chunk.pcs.tobytes())
        self._addresses.update(chunk.addresses.tobytes())
        self._kinds.update(chunk.kinds.tobytes())
        self.rows += len(chunk)

    def hexdigest(self) -> str:
        combined = hashlib.sha1()
        combined.update(str(self.rows).encode())
        combined.update(self._pcs.digest())
        combined.update(self._addresses.digest())
        combined.update(self._kinds.digest())
        return combined.hexdigest()


class ChunkStream:
    """A re-openable stream of :class:`TraceChunk` with identity metadata.

    ``factory`` returns a *fresh* chunk iterator per call, so one stream
    object can serve multi-pass consumers (the dispatching sweep may
    profile LRU configs in one pass and replay FIFO/random fallbacks in
    another).  Metadata is optional; a store-backed stream knows its
    digest and counts from the write-time meta record, while an ad-hoc
    stream computes them lazily on demand (one extra column pass).
    """

    def __init__(self, factory: Callable[[], Iterable[TraceChunk]], *,
                 length: Optional[int] = None,
                 digest: Optional[str] = None,
                 prefetch_count: Optional[int] = None,
                 load_accesses: Optional[dict[int, int]] = None,
                 store_accesses: Optional[dict[int, int]] = None):
        self._factory = factory
        self.length = length
        self._digest = digest
        self._prefetch_count = prefetch_count
        self._load_accesses = load_accesses
        self._store_accesses = store_accesses

    def __iter__(self) -> Iterator[TraceChunk]:
        return iter(self._factory())

    @property
    def digest(self) -> str:
        """The canonical content digest, scanning once if unknown."""
        if self._digest is None:
            rolling = RollingTraceDigest()
            for chunk in self:
                rolling.update(chunk)
            self._digest = rolling.hexdigest()
            if self.length is None:
                self.length = rolling.rows
        return self._digest

    def access_counts(self) -> tuple[dict[int, int], dict[int, int], int]:
        """Per-PC (load, store) access counts plus the prefetch total.

        Served from metadata when the producer recorded it; otherwise
        computed in one C-speed counting pass and memoized.  Like
        :func:`~repro.cache.model.shared_access_counts`, relies on the
        one-instruction-one-kind invariant: a static PC has a single
        access kind, so a Counter over the pc column plus a kind lookup
        table reproduces the per-kind tallies exactly.
        """
        if self._load_accesses is None:
            from collections import Counter
            counts: Counter = Counter()
            kind_of: dict[int, int] = {}
            prefetches = 0
            rows = 0
            for chunk in self:
                counts.update(chunk.pcs)
                kind_of.update(zip(chunk.pcs, chunk.kinds))
                prefetches += chunk.kinds.count(PREFETCH)
                rows += len(chunk)
            loads: dict[int, int] = {}
            stores: dict[int, int] = {}
            for pc, count in counts.items():
                kind = kind_of[pc]
                if kind == LOAD:
                    loads[pc] = count
                elif kind != PREFETCH:
                    stores[pc] = count
            self._load_accesses = loads
            self._store_accesses = stores
            self._prefetch_count = prefetches
            if self.length is None:
                self.length = rows
        return (self._load_accesses, self._store_accesses,
                self._prefetch_count)

    @property
    def prefetch_count(self) -> int:
        if self._prefetch_count is None:
            self.access_counts()
        return self._prefetch_count


@dataclass
class MemoryTrace:
    """Sequence of data-memory accesses in execution order."""

    pcs: array = field(default_factory=lambda: array("I"))
    addresses: array = field(default_factory=lambda: array("I"))
    kinds: array = field(default_factory=lambda: array("B"))

    def __len__(self) -> int:
        return len(self.pcs)

    def append(self, pc: int, address: int, kind: int) -> None:
        self.pcs.append(pc)
        self.addresses.append(address)
        self.kinds.append(kind)

    def extend(self, pcs: Iterable[int], addresses: Iterable[int],
               kinds: Iterable[int]) -> None:
        """Bulk-append one run of accesses to all three columns.

        The block execution engine records a whole basic block per call:
        the (pc, kind) runs are compile-time constant ``array``s, so
        both extends are C-level copies, and only the address column is
        built per execution.
        """
        self.pcs.extend(pcs)
        self.addresses.extend(addresses)
        self.kinds.extend(kinds)

    def __iter__(self) -> Iterator[tuple[int, int, int]]:
        return zip(self.pcs, self.addresses, self.kinds)

    def loads(self) -> Iterator[tuple[int, int]]:
        """Yield ``(pc, address)`` for load accesses only.

        Pure-Python row iteration; hot callers should prefer the
        column fast paths :meth:`load_pcs` / :meth:`load_addresses`.
        """
        for pc, address, kind in self:
            if kind == LOAD:
                yield pc, address

    def _load_column(self, column: array) -> array:
        # compress + map(int.__eq__) keeps the selection entirely in C.
        return array("I", compress(column, map(LOAD.__eq__, self.kinds)))

    def load_pcs(self) -> array:
        """The pc column restricted to load rows, as a packed array."""
        return self._load_column(self.pcs)

    def load_addresses(self) -> array:
        """The address column restricted to load rows."""
        return self._load_column(self.addresses)

    # -- kind counts ----------------------------------------------------
    def _kind_counts(self) -> tuple[int, int, int]:
        """(loads, stores, prefetches), all tallied from one snapshot.

        The three counts are taken together over a single ``tobytes``
        snapshot of the kind column (``bytes.count`` runs at C speed)
        and memoized against the trace length, so hot consumers that
        query them per chunk — the streaming pipeline, the store writer
        — pay the column scan once instead of once per property.  Any
        growth of the trace (``append``/``extend``, or the engines'
        direct column appends) changes the length and invalidates the
        memo; so does the streaming drain's column truncation.
        """
        memo = getattr(self, "_kind_counts_memo", None)
        if memo is not None and memo[0] == len(self.kinds):
            return memo[1]
        data = self.kinds.tobytes()
        counts = (data.count(LOAD), data.count(STORE),
                  data.count(PREFETCH))
        self._kind_counts_memo = (len(data), counts)
        return counts

    @property
    def load_count(self) -> int:
        return self._kind_counts()[0]

    @property
    def store_count(self) -> int:
        # Counted directly: ``len(self) - load_count`` would misclassify
        # PREFETCH records as stores.
        return self._kind_counts()[1]

    @property
    def prefetch_count(self) -> int:
        return self._kind_counts()[2]

    # -- chunk protocol -------------------------------------------------
    def chunks(self, chunk_accesses: int = DEFAULT_CHUNK_ACCESSES
               ) -> Iterator[TraceChunk]:
        """Slice the trace into fixed-size :class:`TraceChunk` runs.

        Every chunk holds exactly ``chunk_accesses`` rows except the
        last; slicing copies the columns, so the chunks stay valid even
        if the trace keeps growing.
        """
        if chunk_accesses <= 0:
            raise ValueError("chunk_accesses must be positive")
        for start in range(0, len(self), chunk_accesses):
            stop = start + chunk_accesses
            yield TraceChunk(self.pcs[start:stop],
                             self.addresses[start:stop],
                             self.kinds[start:stop], start)

    def chunk_stream(self, chunk_accesses: int = DEFAULT_CHUNK_ACCESSES
                     ) -> ChunkStream:
        """A re-openable chunked view of this trace."""
        return ChunkStream(lambda: self.chunks(chunk_accesses),
                           length=len(self))

    def digest(self) -> str:
        """Canonical content digest, memoized on the trace object."""
        memo = getattr(self, "_digest_memo", None)
        if memo is not None and memo[0] == len(self):
            return memo[1]
        rolling = RollingTraceDigest()
        rolling.update(TraceChunk(self.pcs, self.addresses, self.kinds))
        digest = rolling.hexdigest()
        self._digest_memo = (len(self), digest)
        return digest
