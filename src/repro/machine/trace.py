"""Compact memory-access traces.

One program execution produces one :class:`MemoryTrace`; the cache model
replays it under any number of cache configurations.  Storage is three
parallel ``array`` columns (program counter, effective address, kind) to
keep multi-million-access traces small.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Iterator

LOAD = 0
STORE = 1
PREFETCH = 2


@dataclass
class MemoryTrace:
    """Sequence of data-memory accesses in execution order."""

    pcs: array = field(default_factory=lambda: array("I"))
    addresses: array = field(default_factory=lambda: array("I"))
    kinds: array = field(default_factory=lambda: array("B"))

    def __len__(self) -> int:
        return len(self.pcs)

    def append(self, pc: int, address: int, kind: int) -> None:
        self.pcs.append(pc)
        self.addresses.append(address)
        self.kinds.append(kind)

    def __iter__(self) -> Iterator[tuple[int, int, int]]:
        return zip(self.pcs, self.addresses, self.kinds)

    def loads(self) -> Iterator[tuple[int, int]]:
        """Yield ``(pc, address)`` for load accesses only."""
        for pc, address, kind in self:
            if kind == LOAD:
                yield pc, address

    @property
    def load_count(self) -> int:
        return self.kinds.count(LOAD)

    @property
    def store_count(self) -> int:
        return len(self) - self.load_count
