"""Compact memory-access traces.

One program execution produces one :class:`MemoryTrace`; the cache model
replays it under any number of cache configurations.  Storage is three
parallel ``array`` columns (program counter, effective address, kind) to
keep multi-million-access traces small.

The column layout also gives the hot consumers C-speed bulk paths:
the block execution engine appends whole basic blocks of accesses at a
time (:meth:`MemoryTrace.extend`), and load-only analyses slice the
load rows out of the columns without a Python-level loop
(:meth:`MemoryTrace.load_pcs` / :meth:`MemoryTrace.load_addresses`).
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from itertools import compress
from typing import Iterable, Iterator

LOAD = 0
STORE = 1
PREFETCH = 2


@dataclass
class MemoryTrace:
    """Sequence of data-memory accesses in execution order."""

    pcs: array = field(default_factory=lambda: array("I"))
    addresses: array = field(default_factory=lambda: array("I"))
    kinds: array = field(default_factory=lambda: array("B"))

    def __len__(self) -> int:
        return len(self.pcs)

    def append(self, pc: int, address: int, kind: int) -> None:
        self.pcs.append(pc)
        self.addresses.append(address)
        self.kinds.append(kind)

    def extend(self, pcs: Iterable[int], addresses: Iterable[int],
               kinds: Iterable[int]) -> None:
        """Bulk-append one run of accesses to all three columns.

        The block execution engine records a whole basic block per call:
        the (pc, kind) runs are compile-time constant ``array``s, so
        both extends are C-level copies, and only the address column is
        built per execution.
        """
        self.pcs.extend(pcs)
        self.addresses.extend(addresses)
        self.kinds.extend(kinds)

    def __iter__(self) -> Iterator[tuple[int, int, int]]:
        return zip(self.pcs, self.addresses, self.kinds)

    def loads(self) -> Iterator[tuple[int, int]]:
        """Yield ``(pc, address)`` for load accesses only.

        Pure-Python row iteration; hot callers should prefer the
        column fast paths :meth:`load_pcs` / :meth:`load_addresses`.
        """
        for pc, address, kind in self:
            if kind == LOAD:
                yield pc, address

    def _load_column(self, column: array) -> array:
        # compress + map(int.__eq__) keeps the selection entirely in C.
        return array("I", compress(column, map(LOAD.__eq__, self.kinds)))

    def load_pcs(self) -> array:
        """The pc column restricted to load rows, as a packed array."""
        return self._load_column(self.pcs)

    def load_addresses(self) -> array:
        """The address column restricted to load rows."""
        return self._load_column(self.addresses)

    @property
    def load_count(self) -> int:
        return self.kinds.count(LOAD)

    @property
    def store_count(self) -> int:
        # Counted directly: ``len(self) - load_count`` would misclassify
        # PREFETCH records as stores.
        return self.kinds.count(STORE)

    @property
    def prefetch_count(self) -> int:
        return self.kinds.count(PREFETCH)
