"""Interactive-grade debugging support for the simulator.

A :class:`Debugger` wraps a machine with single-stepping, breakpoints,
watchpoints on memory words, and register/memory inspection — the tooling
one needs when a workload misbehaves or a codegen bug must be localized.
Unlike :class:`~repro.machine.simulator.Machine`'s compiled fast path,
the debugger interprets one instruction at a time, so it is slow and
meant for small reproductions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.asm.program import STACK_TOP, Program
from repro.isa.registers import A0, GP, SP, register_name
from repro.machine.simulator import Machine, _Exit


@dataclass
class StopReason:
    kind: str                  # "breakpoint" | "watchpoint" | "step" |
    #                            "exit" | "limit"
    pc: int
    detail: str = ""


class Debugger:
    """Single-stepping wrapper around a :class:`Machine`."""

    def __init__(self, program: Program, *, args=(),
                 trace_memory: bool = False):  # noqa: D401
        self.program = program
        # The closure engine is pinned: single-stepping needs one op per
        # instruction, not one per basic block.  This deliberately
        # overrides $REPRO_ENGINE — a blocks-engine session degrades to
        # closures the moment it opens a debugger.  ``trace_memory``
        # records the data-memory trace while stepping (off by default;
        # debugging sessions rarely need it and it grows with runtime).
        self.machine = Machine(program, trace_memory=trace_memory,
                               engine="closures")
        self.machine.write_data_segment()
        self.machine.regs[SP] = STACK_TOP
        self.machine.regs[GP] = program.gp_value
        for position, value in enumerate(tuple(args)[:4]):
            self.machine.regs[A0 + position] = value & 0xFFFF_FFFF
        self._index = program.index_of(program.entry)
        self.breakpoints: set[int] = set()
        self.watchpoints: set[int] = set()     # word-aligned addresses
        self.exited = False
        self.exit_code: Optional[int] = None
        self.steps = 0

    # -- state inspection ------------------------------------------------
    @property
    def pc(self) -> int:
        return self.program.address_of(self._index)

    def register(self, name: str) -> int:
        from repro.isa.registers import register_number
        return self.machine.regs[register_number(name)]

    def read_word(self, address: int) -> int:
        return self.machine._load_word(address)

    def registers_dump(self) -> str:
        lines = []
        for row in range(8):
            cells = []
            for col in range(4):
                number = row * 4 + col
                cells.append(f"{register_name(number):>5}="
                             f"{self.machine.regs[number]:08x}")
            lines.append("  ".join(cells))
        return "\n".join(lines)

    def current_instruction(self) -> str:
        return self.program.instructions[self._index].text()

    def where(self) -> str:
        function = self.program.function_containing(self.pc) or "?"
        return (f"{self.pc:#010x} in {function}: "
                f"{self.current_instruction()}")

    # -- breakpoints ------------------------------------------------------
    def break_at(self, location) -> int:
        """Set a breakpoint at an address or function name."""
        if isinstance(location, str):
            if location not in self.program.symbols:
                raise KeyError(f"unknown symbol {location!r}")
            address = self.program.symbols[location]
        else:
            address = int(location)
        self.program.index_of(address)     # validates
        self.breakpoints.add(address)
        return address

    def watch(self, address: int) -> None:
        """Break when the word at ``address`` changes."""
        self.watchpoints.add(address & ~3)

    # -- execution -----------------------------------------------------
    def step(self) -> StopReason:
        """Execute exactly one instruction."""
        if self.exited:
            return StopReason("exit", self.pc, "already exited")
        watched = {a: self.machine._load_word(a)
                   for a in self.watchpoints}
        op = self.machine._ops[self._index]
        pc_before = self.pc
        try:
            self._index = op()
        except _Exit as stop:
            self.exited = True
            self.exit_code = stop.code
            return StopReason("exit", pc_before,
                              f"exit code {stop.code}")
        self.steps += 1
        for address, old in watched.items():
            new = self.machine._load_word(address)
            if new != old:
                return StopReason(
                    "watchpoint", self.pc,
                    f"[{address:#x}] {old:#x} -> {new:#x}")
        return StopReason("step", self.pc)

    def run(self, max_steps: int = 10_000_000) -> StopReason:
        """Run until a breakpoint/watchpoint/exit, or the step budget."""
        for _ in range(max_steps):
            reason = self.step()
            if reason.kind in ("exit", "watchpoint"):
                return reason
            if self.pc in self.breakpoints:
                return StopReason("breakpoint", self.pc, self.where())
        return StopReason("limit", self.pc,
                          f"step budget {max_steps} exhausted")

    def run_to_return(self, max_steps: int = 10_000_000) -> StopReason:
        """Run until the current function is left (sp back above entry
        value and control outside the function)."""
        function = self.program.function_containing(self.pc)
        info = self.program.symtab.functions.get(function or "")
        for _ in range(max_steps):
            reason = self.step()
            if reason.kind == "exit":
                return reason
            if info is None or not info.start <= self.pc < info.end:
                return StopReason("step", self.pc, "returned")
        return StopReason("limit", self.pc, "step budget exhausted")
