"""Instruction-level execution: simulator engines, traces, debugger."""

from repro.machine.errors import MachineError, StepLimitExceeded
from repro.machine.simulator import (ENGINE_BLOCKS, ENGINE_CLOSURES,
                                     ExecutionResult, Machine,
                                     resolve_engine, run_program)
from repro.machine.trace import LOAD, PREFETCH, STORE, MemoryTrace

__all__ = [
    "ENGINE_BLOCKS", "ENGINE_CLOSURES", "ExecutionResult", "LOAD",
    "Machine", "MachineError", "MemoryTrace", "PREFETCH", "STORE",
    "StepLimitExceeded", "resolve_engine", "run_program",
]
