"""Instruction-level simulator for assembled programs.

This is the reproduction's stand-in for SimpleScalar: it executes a
:class:`~repro.asm.program.Program` at instruction granularity, counts
basic-block entries (the paper's basic-block profiling, Section 4) and
records the data-memory trace that the cache model replays.

Implementation notes
--------------------
* Two interchangeable execution engines share the ``index = ops[index]()``
  dispatch loop:

  - ``"closures"`` — every instruction pre-compiled to a Python closure
    returning the index of the next instruction (the reference engine;
    the debugger single-steps it);
  - ``"blocks"`` (default) — every basic block compiled to one
    ``exec``-generated superinstruction function with constants folded
    into the source and trace columns appended in bulk
    (:mod:`repro.machine.codegen`).

  Results are bit-identical by contract; pick with the ``engine``
  keyword or the ``REPRO_ENGINE`` environment variable.
* Registers hold unsigned 32-bit integers; float instructions reinterpret
  the bits as IEEE-754 single precision.
* Memory is a sparse ``dict`` of word-aligned address -> 32-bit word.
* Instruction counts are reconstructed from block-entry counts (every
  instruction in a single-entry block executes exactly as often as its
  block is entered), so the hot loop carries no per-instruction counter.

Syscall convention (code in ``$v0``):

====  =====================================
   1  print integer in ``$a0``
   5  read integer into ``$v0`` (from the machine's input queue)
  10  exit with status ``$a0``
  11  print character code in ``$a0``
====  =====================================
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.asm.program import STACK_TOP, Program
from repro.cfg.blocks import leader_addresses
from repro.isa.instructions import Format, Instruction
from repro.isa.registers import A0, GP, RA, SP, V0, ZERO
from repro.machine.errors import MachineError, StepLimitExceeded
from repro.machine.trace import (DEFAULT_CHUNK_ACCESSES, LOAD, PREFETCH,
                                 STORE, MemoryTrace, TraceChunk)

_MASK = 0xFFFF_FFFF

#: Column-length threshold no trace can reach: the disarmed state of
#: the streaming spill cell (see Machine._stream / run_streaming).
_NO_SPILL = 1 << 62
_PACK_I = struct.Struct("<I").pack
_UNPACK_I = struct.Struct("<I").unpack
_PACK_F = struct.Struct("<f").pack
_UNPACK_F = struct.Struct("<f").unpack

SYS_PRINT_INT = 1
SYS_READ_INT = 5
SYS_EXIT = 10
SYS_PRINT_CHAR = 11

ENGINE_BLOCKS = "blocks"
ENGINE_CLOSURES = "closures"


def resolve_engine(engine: Optional[str] = None) -> str:
    """Pick the execution engine: argument > ``$REPRO_ENGINE`` > blocks."""
    if engine is None:
        engine = os.environ.get("REPRO_ENGINE", "").strip() or ENGINE_BLOCKS
    if engine not in (ENGINE_BLOCKS, ENGINE_CLOSURES):
        raise ValueError(
            f"unknown execution engine {engine!r} "
            f"(expected {ENGINE_BLOCKS!r} or {ENGINE_CLOSURES!r})")
    return engine


def bits_to_float(bits: int) -> float:
    return _UNPACK_F(_PACK_I(bits & _MASK))[0]


def float_to_bits(value: float) -> int:
    try:
        return _UNPACK_I(_PACK_F(value))[0]
    except OverflowError:
        return _UNPACK_I(_PACK_F(float("inf") if value > 0 else
                                 float("-inf")))[0]


def _signed(value: int) -> int:
    return value - ((value & 0x8000_0000) << 1)


class _Exit(Exception):
    def __init__(self, code: int):
        self.code = code


@dataclass
class ExecutionResult:
    """Everything one execution yields for downstream analyses."""

    steps: int
    exit_code: int
    block_counts: dict[int, int]            # leader address -> entry count
    trace: Optional[MemoryTrace]
    output: list[int] = field(default_factory=list)

    def instruction_counts(self, program: Program) -> dict[int, int]:
        """Per-instruction execution counts E(i), keyed by address."""
        leaders = sorted(self.block_counts)
        counts: dict[int, int] = {}
        for pos, leader in enumerate(leaders):
            end = (leaders[pos + 1] if pos + 1 < len(leaders)
                   else program.text_end)
            count = self.block_counts[leader]
            if count == 0:
                continue
            for addr in range(leader, end, 4):
                counts[addr] = count
        return counts

    def load_exec_counts(self, program: Program) -> dict[int, int]:
        """E(i) restricted to static load instructions."""
        counts = self.instruction_counts(program)
        return {addr: counts.get(addr, 0) for addr, _ in program.loads()}


class Machine:
    """Executes one program; reusable across runs via :meth:`run`."""

    def __init__(self, program: Program, *,
                 trace_memory: bool = True,
                 max_steps: int = 500_000_000,
                 inputs: Sequence[int] = (),
                 engine: Optional[str] = None):
        self.program = program
        self.trace_memory = trace_memory
        self.max_steps = max_steps
        self.inputs = list(inputs)
        self.regs: list[int] = [0] * 32
        self.memory: dict[int, int] = {}
        self.output: list[int] = []
        self.trace = MemoryTrace() if trace_memory else None
        self._leaders = leader_addresses(program)
        self._block_counts: dict[int, int] = {}
        self._entry_budget = [0, max_steps]
        # Streaming spill cell, shared with the block engine's fused
        # loops: [column-length threshold, drain callable].  run() never
        # trips the sentinel; run_streaming arms it for its duration.
        self._stream: list = [_NO_SPILL, None]
        self.engine = resolve_engine(engine)
        self._block_engine = None
        self._ops: Optional[list[Callable[[], int]]] = None
        if self.engine == ENGINE_BLOCKS:
            try:
                from repro.machine.codegen import BlockEngine
                self._block_engine = BlockEngine(self)
            except Exception:
                # Hardening: any program the block compiler cannot
                # handle falls back to the reference engine, so errors
                # (if the program is genuinely bad) surface exactly as
                # they always have.
                self._block_engine = None
                self._block_counts.clear()
                self.engine = ENGINE_CLOSURES
        if self._block_engine is None:
            self._ops = self._compile()

    # -- memory helpers (byte-granular, little-endian) -----------------
    def _load_word(self, address: int) -> int:
        return self.memory.get(address & ~3, 0)

    def _store_word(self, address: int, value: int) -> None:
        self.memory[address & ~3] = value & _MASK

    def _load_bytes(self, address: int, width: int, signed: bool) -> int:
        word = self.memory.get(address & ~3, 0)
        shift = (address & 3) * 8
        if width == 1:
            value = (word >> shift) & 0xFF
            if signed and value >= 0x80:
                value -= 0x100
        else:  # width == 2
            value = (word >> shift) & 0xFFFF
            if signed and value >= 0x8000:
                value -= 0x10000
        return value & _MASK

    def _store_bytes(self, address: int, width: int, value: int) -> None:
        aligned = address & ~3
        word = self.memory.get(aligned, 0)
        shift = (address & 3) * 8
        mask = (0xFF if width == 1 else 0xFFFF) << shift
        word = (word & ~mask) | ((value << shift) & mask)
        self.memory[aligned] = word & _MASK

    def write_data_segment(self) -> None:
        data = self.program.data
        base = self.program.data_base
        for offset in range(0, len(data) & ~3, 4):
            word = int.from_bytes(data[offset:offset + 4], "little")
            if word:
                self.memory[base + offset] = word
        tail = len(data) & ~3
        for offset in range(tail, len(data)):
            if data[offset]:
                self._store_bytes(base + offset, 1, data[offset])

    # -- compilation -----------------------------------------------------
    def _compile(self) -> list[Callable[[], int]]:
        program = self.program
        ops: list[Callable[[], int]] = []
        leader_set = set(self._leaders)
        for index, instr in enumerate(program.instructions):
            address = program.address_of(index)
            op = self._compile_one(index, address, instr)
            if address in leader_set:
                op = self._instrument_leader(address, op)
            ops.append(op)
        return ops

    def _instrument_leader(self, address: int,
                           op: Callable[[], int]) -> Callable[[], int]:
        counts = self._block_counts
        counts[address] = 0
        budget = self._entry_budget
        limit = budget[1]  # never mutated after construction

        def leader() -> int:
            counts[address] += 1
            budget[0] = entries = budget[0] + 1
            if entries > limit:
                raise StepLimitExceeded(
                    f"block-entry budget exceeded at {address:#x}")
            return op()

        return leader

    # The per-mnemonic compilers below close over `regs` / `memory`
    # directly; the hot loop never touches `self`.
    def _compile_one(self, index: int, address: int,
                     instr: Instruction) -> Callable[[], int]:
        regs = self.regs
        memory = self.memory
        nxt = index + 1
        m = instr.mnemonic
        rd, rs, rt = instr.rd, instr.rs, instr.rt
        imm, shamt = instr.imm, instr.shamt
        spec = instr.spec

        if spec.is_load or spec.is_store or spec.is_prefetch:
            return self._compile_mem(index, address, instr)

        if m == "addiu":
            def op() -> int:
                regs[rt] = (regs[rs] + imm) & _MASK
                return nxt
        elif m == "addu":
            def op() -> int:
                regs[rd] = (regs[rs] + regs[rt]) & _MASK
                return nxt
        elif m == "subu":
            def op() -> int:
                regs[rd] = (regs[rs] - regs[rt]) & _MASK
                return nxt
        elif m == "mul":
            def op() -> int:
                regs[rd] = (_signed(regs[rs]) * _signed(regs[rt])) & _MASK
                return nxt
        elif m == "div":
            def op() -> int:
                denominator = _signed(regs[rt])
                if denominator == 0:
                    regs[rd] = 0
                else:
                    quotient = int(_signed(regs[rs]) / denominator)
                    regs[rd] = quotient & _MASK
                return nxt
        elif m == "rem":
            def op() -> int:
                denominator = _signed(regs[rt])
                if denominator == 0:
                    regs[rd] = 0
                else:
                    numerator = _signed(regs[rs])
                    regs[rd] = (numerator
                                - int(numerator / denominator) * denominator
                                ) & _MASK
                return nxt
        elif m == "and":
            def op() -> int:
                regs[rd] = regs[rs] & regs[rt]
                return nxt
        elif m == "or":
            def op() -> int:
                regs[rd] = regs[rs] | regs[rt]
                return nxt
        elif m == "xor":
            def op() -> int:
                regs[rd] = regs[rs] ^ regs[rt]
                return nxt
        elif m == "nor":
            def op() -> int:
                regs[rd] = ~(regs[rs] | regs[rt]) & _MASK
                return nxt
        elif m == "slt":
            def op() -> int:
                regs[rd] = 1 if _signed(regs[rs]) < _signed(regs[rt]) else 0
                return nxt
        elif m == "sltu":
            def op() -> int:
                regs[rd] = 1 if regs[rs] < regs[rt] else 0
                return nxt
        elif m == "slti":
            def op() -> int:
                regs[rt] = 1 if _signed(regs[rs]) < imm else 0
                return nxt
        elif m == "sltiu":
            def op() -> int:
                regs[rt] = 1 if regs[rs] < (imm & _MASK) else 0
                return nxt
        elif m == "andi":
            def op() -> int:
                regs[rt] = regs[rs] & imm
                return nxt
        elif m == "ori":
            def op() -> int:
                regs[rt] = regs[rs] | imm
                return nxt
        elif m == "xori":
            def op() -> int:
                regs[rt] = regs[rs] ^ imm
                return nxt
        elif m == "lui":
            value = (imm << 16) & _MASK

            def op() -> int:
                regs[rt] = value
                return nxt
        elif m == "sll":
            def op() -> int:
                regs[rd] = (regs[rt] << shamt) & _MASK
                return nxt
        elif m == "srl":
            def op() -> int:
                regs[rd] = regs[rt] >> shamt
                return nxt
        elif m == "sra":
            def op() -> int:
                regs[rd] = (_signed(regs[rt]) >> shamt) & _MASK
                return nxt
        elif m == "sllv":
            def op() -> int:
                regs[rd] = (regs[rt] << (regs[rs] & 31)) & _MASK
                return nxt
        elif m == "srlv":
            def op() -> int:
                regs[rd] = regs[rt] >> (regs[rs] & 31)
                return nxt
        elif m == "srav":
            def op() -> int:
                regs[rd] = (_signed(regs[rt]) >> (regs[rs] & 31)) & _MASK
                return nxt
        elif m in ("fadd", "fsub", "fmul", "fdiv"):
            arith = {"fadd": lambda a, b: a + b,
                     "fsub": lambda a, b: a - b,
                     "fmul": lambda a, b: a * b,
                     "fdiv": lambda a, b: a / b if b else float("inf")}[m]

            def op() -> int:
                result = arith(bits_to_float(regs[rs]),
                               bits_to_float(regs[rt]))
                regs[rd] = float_to_bits(result)
                return nxt
        elif m == "fneg":
            def op() -> int:
                regs[rd] = float_to_bits(-bits_to_float(regs[rs]))
                return nxt
        elif m == "fcvt":
            def op() -> int:
                regs[rd] = float_to_bits(float(_signed(regs[rs])))
                return nxt
        elif m == "ftrunc":
            def op() -> int:
                value = bits_to_float(regs[rs])
                if value != value or value in (float("inf"), float("-inf")):
                    regs[rd] = 0
                else:
                    regs[rd] = int(value) & _MASK
                return nxt
        elif m in ("feq", "flt", "fle"):
            compare = {"feq": lambda a, b: a == b,
                       "flt": lambda a, b: a < b,
                       "fle": lambda a, b: a <= b}[m]

            def op() -> int:
                regs[rd] = 1 if compare(bits_to_float(regs[rs]),
                                        bits_to_float(regs[rt])) else 0
                return nxt
        elif m == "beq":
            target = self.program.index_of(imm)

            def op() -> int:
                return target if regs[rs] == regs[rt] else nxt
        elif m == "bne":
            target = self.program.index_of(imm)

            def op() -> int:
                return target if regs[rs] != regs[rt] else nxt
        elif m == "blez":
            target = self.program.index_of(imm)

            def op() -> int:
                return target if _signed(regs[rs]) <= 0 else nxt
        elif m == "bgtz":
            target = self.program.index_of(imm)

            def op() -> int:
                return target if _signed(regs[rs]) > 0 else nxt
        elif m == "bltz":
            target = self.program.index_of(imm)

            def op() -> int:
                return target if _signed(regs[rs]) < 0 else nxt
        elif m == "bgez":
            target = self.program.index_of(imm)

            def op() -> int:
                return target if _signed(regs[rs]) >= 0 else nxt
        elif m == "j":
            target = self.program.index_of(imm)

            def op() -> int:
                return target
        elif m == "jal":
            target = self.program.index_of(imm)
            return_address = address + 4  # no delay slots in this ISA

            def op() -> int:
                regs[RA] = return_address
                return target
        elif m == "jr":
            program = self.program
            text_base, text_end = program.text_base, program.text_end

            def op() -> int:
                destination = regs[rs]
                if not text_base <= destination < text_end:
                    raise MachineError(
                        f"jr to non-text address {destination:#x} "
                        f"at {address:#x}")
                return (destination - text_base) >> 2
        elif m == "jalr":
            program = self.program
            text_base, text_end = program.text_base, program.text_end
            return_address = address + 4

            def op() -> int:
                destination = regs[rs]
                if not text_base <= destination < text_end:
                    raise MachineError(
                        f"jalr to non-text address {destination:#x} "
                        f"at {address:#x}")
                regs[rd] = return_address
                return (destination - text_base) >> 2
        elif m == "syscall":
            machine = self

            def op() -> int:
                machine._syscall()
                return nxt
        else:  # pragma: no cover - exhaustive over SPECS
            raise MachineError(f"cannot compile mnemonic {m!r}")

        return self._guard_zero(instr, op)

    def _guard_zero(self, instr: Instruction,
                    op: Callable[[], int]) -> Callable[[], int]:
        """Ensure writes to $zero are discarded (rare; wrap only then)."""
        written = set()
        fmt = instr.spec.fmt
        if fmt in (Format.R3, Format.R2, Format.SHIFT, Format.JALR):
            written.add(instr.rd)
        elif fmt in (Format.I_ARITH, Format.LUI):
            written.add(instr.rt)
        elif fmt is Format.MEM and instr.spec.is_load:
            written.add(instr.rt)
        if ZERO not in written:
            return op
        regs = self.regs

        def guarded() -> int:
            result = op()
            regs[ZERO] = 0
            return result

        return guarded

    def _compile_mem(self, index: int, address: int,
                     instr: Instruction) -> Callable[[], int]:
        regs = self.regs
        memory = self.memory
        nxt = index + 1
        rs, rt, offset = instr.rs, instr.rt, instr.imm
        spec = instr.spec
        width, signed = spec.width, spec.signed
        trace = self.trace

        if spec.is_prefetch:
            if trace is not None:
                t_pc, t_addr, t_kind = (trace.pcs, trace.addresses,
                                        trace.kinds)

                def op() -> int:
                    effective = (regs[rs] + offset) & _MASK
                    t_pc.append(address)
                    t_addr.append(effective)
                    t_kind.append(PREFETCH)
                    return nxt
            else:
                def op() -> int:
                    return nxt
            return op

        if spec.is_load:
            if width == 4:
                if trace is not None:
                    t_pc, t_addr, t_kind = (trace.pcs, trace.addresses,
                                            trace.kinds)

                    def op() -> int:
                        effective = (regs[rs] + offset) & _MASK
                        t_pc.append(address)
                        t_addr.append(effective)
                        t_kind.append(LOAD)
                        regs[rt] = memory.get(effective & ~3, 0)
                        return nxt
                else:
                    def op() -> int:
                        effective = (regs[rs] + offset) & _MASK
                        regs[rt] = memory.get(effective & ~3, 0)
                        return nxt
            else:
                loader = self._load_bytes
                if trace is not None:
                    t_pc, t_addr, t_kind = (trace.pcs, trace.addresses,
                                            trace.kinds)

                    def op() -> int:
                        effective = (regs[rs] + offset) & _MASK
                        t_pc.append(address)
                        t_addr.append(effective)
                        t_kind.append(LOAD)
                        regs[rt] = loader(effective, width, signed)
                        return nxt
                else:
                    def op() -> int:
                        effective = (regs[rs] + offset) & _MASK
                        regs[rt] = loader(effective, width, signed)
                        return nxt
            return self._guard_zero(instr, op)

        # stores
        if width == 4:
            if trace is not None:
                t_pc, t_addr, t_kind = (trace.pcs, trace.addresses,
                                        trace.kinds)

                def op() -> int:
                    effective = (regs[rs] + offset) & _MASK
                    t_pc.append(address)
                    t_addr.append(effective)
                    t_kind.append(STORE)
                    memory[effective & ~3] = regs[rt]
                    return nxt
            else:
                def op() -> int:
                    effective = (regs[rs] + offset) & _MASK
                    memory[effective & ~3] = regs[rt]
                    return nxt
        else:
            storer = self._store_bytes
            if trace is not None:
                t_pc, t_addr, t_kind = (trace.pcs, trace.addresses,
                                        trace.kinds)

                def op() -> int:
                    effective = (regs[rs] + offset) & _MASK
                    t_pc.append(address)
                    t_addr.append(effective)
                    t_kind.append(STORE)
                    storer(effective, width, regs[rt])
                    return nxt
            else:
                def op() -> int:
                    effective = (regs[rs] + offset) & _MASK
                    storer(effective, width, regs[rt])
                    return nxt
        return op

    # -- syscalls -----------------------------------------------------
    def _syscall(self) -> None:
        code = self.regs[V0]
        if code == SYS_PRINT_INT:
            self.output.append(_signed(self.regs[A0]))
        elif code == SYS_PRINT_CHAR:
            self.output.append(self.regs[A0] & 0xFF)
        elif code == SYS_READ_INT:
            self.regs[V0] = (self.inputs.pop(0) & _MASK) if self.inputs else 0
        elif code == SYS_EXIT:
            raise _Exit(_signed(self.regs[A0]))
        else:
            raise MachineError(f"unknown syscall code {code}")

    # -- execution -----------------------------------------------------
    def run(self, args: Sequence[int] = ()) -> ExecutionResult:
        """Execute from the program entry point until exit."""
        self.write_data_segment()
        self.regs[SP] = STACK_TOP
        self.regs[GP] = self.program.gp_value
        for position, value in enumerate(args[:4]):
            self.regs[A0 + position] = value & _MASK
        index = self.program.index_of(self.program.entry)
        ops = (self._block_engine.funcs if self._block_engine is not None
               else self._ops)
        exit_code = 0
        try:
            # Unrolled dispatch: four ops per backward jump.  Each op
            # (a per-instruction closure or a whole-block function —
            # both engines share this loop) returns the next index, so
            # chaining is semantics-preserving; exits/errors surface
            # through exceptions exactly as before.
            while True:
                index = ops[ops[ops[ops[index]()]()]()]()
        except _Exit as stop:
            exit_code = stop.code
        except IndexError:
            raise MachineError("fell off the text segment")
        steps = self._count_steps()
        return ExecutionResult(
            steps=steps,
            exit_code=exit_code,
            block_counts=dict(self._block_counts),
            trace=self.trace,
            output=list(self.output),
        )

    def run_streaming(self, sink: Callable[[TraceChunk], None],
                      args: Sequence[int] = (), *,
                      chunk_accesses: int = DEFAULT_CHUNK_ACCESSES
                      ) -> ExecutionResult:
        """Execute like :meth:`run`, emitting the trace as chunks.

        The engines keep appending to the machine's trace columns
        through the bound column methods they captured at compile time;
        this loop interleaves dispatch quanta with drains that slice
        full ``chunk_accesses``-row :class:`TraceChunk`\\ s off the
        front and truncate the columns in place (``del col[:n]``
        preserves the array objects, so the bound methods stay valid).
        Every emitted chunk except the last holds exactly
        ``chunk_accesses`` rows, and the in-RAM buffer stays near that
        budget: the block engine's fused in-function loops spill
        through the machine's stream cell at each backedge (see
        ``_Emitter._spill_check``), so even a loop that never returns
        to this dispatch loop drains on schedule, and the buffer can
        overshoot only by what one dispatch quantum or one loop
        iteration appends.  Peak RSS is thus bounded by a constant
        independent of trace length.

        Returns an :class:`ExecutionResult` with ``trace=None`` — the
        access stream lives only in the chunks handed to ``sink``.
        Exceptions from execution (or from the sink) propagate without
        a final drain, so a failed run never emits a truncated tail
        chunk that could be mistaken for a complete trace.
        """
        if self.trace is None:
            raise MachineError(
                "run_streaming requires trace_memory=True")
        if chunk_accesses <= 0:
            raise ValueError("chunk_accesses must be positive")
        self.write_data_segment()
        self.regs[SP] = STACK_TOP
        self.regs[GP] = self.program.gp_value
        for position, value in enumerate(args[:4]):
            self.regs[A0 + position] = value & _MASK
        index = self.program.index_of(self.program.entry)
        ops = (self._block_engine.funcs if self._block_engine is not None
               else self._ops)
        pcs = self.trace.pcs
        addresses = self.trace.addresses
        kinds = self.trace.kinds
        emitted = 0

        def drain() -> None:
            nonlocal emitted
            while len(pcs) >= chunk_accesses:
                sink(TraceChunk(pcs[:chunk_accesses],
                                addresses[:chunk_accesses],
                                kinds[:chunk_accesses], emitted))
                del pcs[:chunk_accesses]
                del addresses[:chunk_accesses]
                del kinds[:chunk_accesses]
                emitted += chunk_accesses

        exit_code = 0
        # Arm the spill cell: the block engine's fused loops call the
        # drain from their backedges (after each flush), so even a loop
        # that never returns to this dispatch loop keeps the columns
        # near the chunk budget.
        self._stream[0] = chunk_accesses
        self._stream[1] = drain
        try:
            while True:
                # One dispatch quantum (4096 op chain steps), then a
                # drain check — frequent enough to keep the buffer near
                # the chunk budget, rare enough to stay off the hot
                # path.
                for _ in range(1024):
                    index = ops[ops[ops[ops[index]()]()]()]()
                drain()
        except _Exit as stop:
            exit_code = stop.code
        except IndexError:
            raise MachineError("fell off the text segment")
        finally:
            self._stream[0] = _NO_SPILL
            self._stream[1] = None
        drain()
        if pcs:
            sink(TraceChunk(pcs[:], addresses[:], kinds[:], emitted))
            del pcs[:]
            del addresses[:]
            del kinds[:]
        # Drains shrink and regrow the columns, so length-keyed memos
        # on the trace object could go stale — drop them.
        self.trace._kind_counts_memo = None
        self.trace._digest_memo = None
        steps = self._count_steps()
        return ExecutionResult(
            steps=steps,
            exit_code=exit_code,
            block_counts=dict(self._block_counts),
            trace=None,
            output=list(self.output),
        )

    def _count_steps(self) -> int:
        leaders = self._leaders
        total = 0
        text_end = self.program.text_end
        for pos, leader in enumerate(leaders):
            end = leaders[pos + 1] if pos + 1 < len(leaders) else text_end
            count = self._block_counts.get(leader, 0)
            if count:
                total += count * ((end - leader) // 4)
        return total


def run_program(program: Program, *, args: Sequence[int] = (),
                trace_memory: bool = True,
                max_steps: int = 500_000_000,
                inputs: Sequence[int] = (),
                engine: Optional[str] = None) -> ExecutionResult:
    """Convenience wrapper: build a machine and run ``program`` once."""
    machine = Machine(program, trace_memory=trace_memory,
                      max_steps=max_steps, inputs=inputs, engine=engine)
    return machine.run(args)
